"""Tests of the disjoint-set forest."""

import pytest
from hypothesis import given, strategies as st

from repro.mst.union_find import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.component_count == 5
        assert all(uf.find(x) == x for x in range(5))
        assert all(uf.size(x) == 1 for x in range(5))

    def test_union_and_find(self):
        uf = UnionFind(6)
        assert uf.union(0, 1)
        assert uf.union(2, 3)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.component_count == 4
        uf.union(1, 2)
        assert uf.connected(0, 3)
        assert uf.size(3) == 4

    def test_components(self):
        uf = UnionFind(5)
        uf.union(0, 4)
        uf.union(1, 2)
        comps = uf.components()
        assert sorted(map(tuple, comps)) == [(0, 4), (1, 2), (3,)]

    def test_from_groups(self):
        uf = UnionFind.from_groups(6, [[0, 1, 2], [4, 5], []])
        assert uf.connected(0, 2)
        assert uf.connected(4, 5)
        assert not uf.connected(2, 4)
        assert uf.component_count == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(0)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    def test_matches_naive_partition(self, unions):
        uf = UnionFind(20)
        naive = {x: {x} for x in range(20)}
        for a, b in unions:
            uf.union(a, b)
            if naive[a] is not naive[b]:
                merged = naive[a] | naive[b]
                for x in merged:
                    naive[x] = merged
        for a in range(20):
            for b in range(20):
                assert uf.connected(a, b) == (naive[a] is naive[b])
        assert uf.component_count == len({id(s) for s in naive.values()})

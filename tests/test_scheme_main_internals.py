"""White-box tests of the Theorem-3 oracle's bit-packing and schedule.

The correctness of the decoder hinges on one invariant of the oracle's
capacity-constrained DFS packing (DESIGN.md, D6): at every phase, the
concatenation — in DFS-preorder order of the active fragment — of the
*not yet consumed* data bits of its nodes starts with exactly that
phase's fragment advice ``A(F)``.  These tests check the invariant
directly against the Borůvka trace, phase by phase, without running the
simulator, and also pin down the decoder's round-window arithmetic.
"""

import math

import pytest

from repro.core.bits import BitReader, BitString
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import (
    ShortAdviceScheme,
    _MainProgram,
    num_boruvka_phases,
    phase_window_rounds,
    schedule_prefix_rounds,
)
from repro.graphs.generators import complete_graph, random_connected_graph
from repro.mst.boruvka import boruvka_trace


def _check_packing_invariant(graph, root=0, cap=10):
    """Replay the consumption of the packed advice against the trace."""
    scheme = ShortAdviceScheme(capacity_candidates=(cap,))
    phases = num_boruvka_phases(graph.n)
    trace = boruvka_trace(graph, root=root)
    data = scheme._pack_phase_advice(graph, trace, phases, cap)

    # capacity respected everywhere
    assert all(len(bits) <= cap for bits in data.values())

    consumed = {u: 0 for u in range(graph.n)}
    for phase in trace.phases[:phases]:
        partition = phase.partition
        for sel in phase.selections:
            preorder = partition.dfs_preorder(sel.fragment)
            stream = BitString.empty()
            for u in preorder:
                stream = stream + data[u][consumed[u]:]
            reader = BitReader(stream)
            assert bool(reader.read_bit()) == sel.is_up
            assert reader.read_gamma() == sel.rank_at_choosing
            assert reader.read_gamma() == sel.choosing_dfs_index
            # emulate the decoder's prefix consumption
            to_consume = reader.position
            for u in preorder:
                if to_consume == 0:
                    break
                available = len(data[u]) - consumed[u]
                take = min(available, to_consume)
                consumed[u] += take
                to_consume -= take
            assert to_consume == 0
    # after the last packed phase everything that was written has been consumed
    assert all(consumed[u] == len(data[u]) for u in range(graph.n))


class TestPackingInvariant:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs(self, seed):
        graph = random_connected_graph(90, 0.06, seed=seed)
        _check_packing_invariant(graph, root=seed)

    def test_complete_graph(self):
        _check_packing_invariant(complete_graph(48, seed=5), root=7)

    def test_duplicate_weights(self):
        graph = random_connected_graph(70, 0.08, seed=6, weight_mode="integer", weight_range=4)
        # duplicated weights can push ranks above 2^i, which the γ code absorbs;
        # a very small capacity may legitimately fail, so use the scheme default
        scheme = ShortAdviceScheme()
        advice = scheme.compute_advice(graph, root=0)
        assert advice.stats().max_bits <= scheme.advice_bound_bits(graph.n) + 10

    def test_tight_capacity_raises_cleanly(self):
        from repro.core.scheme_main import CapacityError

        graph = random_connected_graph(60, 0.05, seed=7)
        scheme = ShortAdviceScheme(capacity_candidates=(1,))
        with pytest.raises(CapacityError):
            scheme.compute_advice(graph, root=0)


class TestSchedule:
    def test_windows_partition_the_round_axis(self):
        program = _MainProgram()
        program.num_phases = 4
        boundaries = []
        start = 1
        for i in range(1, 5):
            w = phase_window_rounds(i)
            boundaries.append((start, start + w - 1, i))
            start += w
        for lo, hi, phase in boundaries:
            assert program._segment_of_round(lo) == ("phase", phase)
            assert program._segment_of_round(hi) == ("phase", phase)
            assert program._relative_round(lo) == 1
            assert program._relative_round(hi) == hi - lo + 1
        assert program._segment_of_round(start) == ("final", 0)
        assert program._segment_of_round(start + 100) == ("final", 0)

    def test_schedule_total_is_o_log_n(self):
        for n in (64, 1024, 2**16, 2**20):
            phases = num_boruvka_phases(n)
            total = schedule_prefix_rounds(phases)
            assert total <= 8 * math.ceil(math.log2(n))

    def test_num_phases_monotone(self):
        values = [num_boruvka_phases(n) for n in range(2, 5000, 37)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestLevelOracleInternals:
    def test_node_levels_match_the_fragment_tree(self):
        graph = random_connected_graph(80, 0.06, seed=8)
        phases = num_boruvka_phases(graph.n)
        trace = boruvka_trace(graph, root=3)
        levels = LevelAdviceScheme._node_levels(graph, trace, phases)
        for i in range(1, min(phases, len(trace.phases)) + 1):
            ftree = trace.phases[i - 1].fragment_tree
            for u in range(graph.n):
                assert levels[u][i - 1] == ftree.level_of_node(u)

    def test_level_advice_layout_parses(self):
        graph = random_connected_graph(50, 0.08, seed=9)
        scheme = LevelAdviceScheme()
        advice = scheme.compute_advice(graph, root=0)
        phases = num_boruvka_phases(graph.n)
        for u in range(graph.n):
            reader = BitReader(advice.get(u))
            assert reader.read_uint(4) == phases
            reader.read_bit()  # collect flag
            if reader.read_bit() == 1:
                reader.read_bit()  # the final bit
            level_bits = [reader.read_bit() for _ in range(phases)]
            assert all(b in (0, 1) for b in level_bits)

"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import SCHEMES, BASELINES, GRAPH_FAMILIES, build_parser, main, _make_graph


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("info", "run", "tradeoff", "sweep", "lowerbound"):
            args = parser.parse_args([command] if command != "lowerbound" else [command, "--h", "8"])
            assert args.command == command

    def test_scheme_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--scheme", "theorem2"])
        assert args.scheme == "theorem2"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--scheme", "not-a-scheme"])


class TestGraphFactory:
    @pytest.mark.parametrize("kind", GRAPH_FAMILIES)
    def test_every_kind_builds_a_connected_graph(self, kind):
        graph = _make_graph(kind, 24, seed=1, density=0.1)
        graph.validate()
        assert graph.is_connected()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            _make_graph("moebius", 16, 0, 0.1)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "theorem3" in out and "trivial" in out

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_info_json(self, capsys):
        import repro
        from repro.runner import DEFAULT_CACHE_BACKEND, STORE_SCHEMA_VERSION

        assert main(["info", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == repro.__version__
        assert payload["backends"] == ["engine", "analytic"]
        # the active cache backend and store schema are machine-readable
        assert payload["cache"]["backend"] == DEFAULT_CACHE_BACKEND
        assert payload["cache"]["backends"] == ["json", "sqlite"]
        assert payload["cache"]["store_schema_version"] == STORE_SCHEMA_VERSION
        assert set(payload["graph_families"]) == set(GRAPH_FAMILIES)
        schemes = {row["name"] for row in payload["schemes"]}
        assert schemes == set(SCHEMES)
        baselines = {row["name"] for row in payload["baselines"]}
        assert baselines == set(BASELINES)
        assert payload["theorem2_average_constant_bits"] == pytest.approx(12.0)
        # bounds are numbers, usable by tooling without parsing tables
        for row in payload["schemes"]:
            assert isinstance(row["advice_bound_bits_n1024"], (int, float))

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_run_each_scheme(self, scheme, capsys):
        code = main(["run", "--scheme", scheme, "--n", "32", "--seed", "1", "--graph", "random"])
        assert code == 0
        out = capsys.readouterr().out
        assert scheme.split("-")[0] in out or "theorem3" in out

    def test_run_baseline(self, capsys):
        assert main(["run", "--scheme", "full-info", "--n", "20", "--graph", "cycle"]) == 0
        assert "local-full-info" in capsys.readouterr().out

    def test_run_json_output(self, capsys):
        assert main(["run", "--scheme", "trivial", "--n", "24", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["correct"] is True
        assert payload["rounds"] == 0

    def test_tradeoff_without_baselines(self, capsys):
        code = main(["tradeoff", "--n", "40", "--no-baselines", "--no-level"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trivial-rank" in out and "theorem3-main" in out
        assert "sync-boruvka" not in out

    def test_sweep_json(self, capsys):
        code = main(
            ["sweep", "--scheme", "trivial", "--sizes", "16,32", "--repeats", "1", "--json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["n"] for r in rows] == [16, 32]
        assert all(r["correct"] for r in rows)

    def test_sweep_rejects_empty_sizes(self, capsys):
        assert main(["sweep", "--scheme", "trivial", "--sizes", ","]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_jobs_output_is_byte_identical(self, capsys):
        argv = ["sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "2", "--json"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_sweep_cache_dir_sqlite_default(self, tmp_path, capsys):
        argv = [
            "sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "1",
            "--json", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # the default backend is the sharded SQLite store, not JSON files
        assert list(tmp_path.glob("*.json")) == []
        assert len(list(tmp_path.glob("shard-*.sqlite"))) > 0
        assert main(argv) == 0  # second run is served from the store
        assert capsys.readouterr().out == first

    def test_sweep_cache_dir_json_backend(self, tmp_path, capsys):
        argv = [
            "sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "1",
            "--json", "--cache-dir", str(tmp_path), "--cache-backend", "json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert main(argv) == 0  # second run is served from the cache
        assert capsys.readouterr().out == first

    def test_sweep_backends_and_resume_byte_identical(self, tmp_path, capsys):
        argv = ["sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "1", "--json"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--cache-dir", str(tmp_path / "s")]) == 0
        assert capsys.readouterr().out == bare
        assert main(argv + ["--cache-dir", str(tmp_path / "j"), "--cache-backend", "json"]) == 0
        assert capsys.readouterr().out == bare
        # fresh vs resumed runs: same bytes on stdout, progress on stderr
        resumed = argv + ["--cache-dir", str(tmp_path / "r"), "--resume"]
        assert main(resumed) == 0
        cold = capsys.readouterr()
        assert cold.out == bare
        assert "done" in cold.err  # --resume implies progress reporting
        assert main(resumed) == 0
        warm = capsys.readouterr()
        assert warm.out == bare
        assert "2 cached, 2 resumed" in warm.err  # zero tasks re-executed
        manifests = list((tmp_path / "r" / "manifests").glob("run-*.json"))
        assert len(manifests) == 1
        assert json.loads(manifests[0].read_text())["finished"] is True

    def test_sweep_resume_requires_cache_dir(self, capsys):
        assert main(["sweep", "--scheme", "trivial", "--sizes", "8", "--resume"]) == 2
        assert "resume requires" in capsys.readouterr().err

    def test_bench(self, capsys):
        code = main(["bench", "--scheme", "trivial", "--n", "16", "--repeats", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 3
        assert payload["correct"] is True
        assert payload["runs_per_second"] > 0
        assert payload["cache_hits"] == 0

    def test_bench_reports_cache_hits(self, tmp_path, capsys):
        argv = [
            "bench", "--scheme", "trivial", "--n", "16", "--repeats", "3",
            "--json", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["cache_hits"] == 0
        assert main(argv) == 0
        # warm cache: the timing measured reads, and the summary says so
        assert json.loads(capsys.readouterr().out)["cache_hits"] == 3

    def test_bench_baseline_table(self, capsys):
        code = main(["bench", "--scheme", "full-info", "--n", "12", "--repeats", "2"])
        assert code == 0
        assert "runs_per_second" in capsys.readouterr().out

    def test_lowerbound(self, capsys):
        assert main(["lowerbound", "--h", "10", "--i", "3"]) == 0
        out = capsys.readouterr().out
        assert "fooling variants" in out
        assert "guaranteed_failures" in out

    def test_lowerbound_json(self, capsys):
        assert main(["lowerbound", "--h", "8", "--i", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["variants"] == 6
        assert payload["views_identical"] is True

    def test_lowerbound_invalid_target(self, capsys):
        assert main(["lowerbound", "--h", "8", "--i", "1"]) == 2


class TestBackendFlag:
    def test_run_analytic_backend(self, capsys):
        argv = ["run", "--scheme", "theorem3", "--n", "32", "--json"]
        assert main(argv + ["--backend", "engine"]) == 0
        engine_row = json.loads(capsys.readouterr().out)
        assert main(argv + ["--backend", "analytic"]) == 0
        analytic_row = json.loads(capsys.readouterr().out)
        # identical measured rows: the backends are interchangeable
        assert engine_row == analytic_row

    def test_run_baseline_rejects_analytic(self, capsys):
        assert main(["run", "--scheme", "ghs", "--n", "16", "--backend", "analytic"]) == 2
        assert "analytic" in capsys.readouterr().err

    def test_sweep_backends_byte_identical(self, capsys):
        argv = ["sweep", "--scheme", "theorem3", "--sizes", "16,32", "--repeats", "2", "--json"]
        assert main(argv + ["--backend", "engine"]) == 0
        engine_out = capsys.readouterr().out
        assert main(argv + ["--backend", "analytic"]) == 0
        assert capsys.readouterr().out == engine_out

    def test_bench_both_backends(self, capsys):
        argv = [
            "bench", "--scheme", "theorem3", "--n", "24", "--repeats", "2",
            "--backend", "both", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["backend"] for row in payload["results"]] == ["engine", "analytic"]
        assert payload["speedup_analytic_vs_engine"] is not None
        engine_row, analytic_row = payload["results"]
        # the backends measured the same runs: only the timings may differ
        for key in ("max_rounds", "max_edge_bits", "total_messages", "correct"):
            assert engine_row[key] == analytic_row[key]

    def test_bench_snapshot_and_baseline(self, tmp_path, capsys):
        snapshot = tmp_path / "BENCH_test.json"
        argv = [
            "bench", "--scheme", "trivial", "--n", "16", "--repeats", "2", "--json",
            "--snapshot", str(snapshot),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "perf snapshot written" in captured.err
        stored = json.loads(snapshot.read_text())
        assert stored["kind"] == "bench-snapshot"
        assert stored["payload"]["runs_per_second"] > 0

        # doctor the baseline to an absurd throughput: a >30% loss is now
        # a hard failure (non-zero exit), not just a warning
        stored["payload"]["runs_per_second"] = 10 ** 9
        snapshot.write_text(json.dumps(stored))
        assert main(argv[:-2] + ["--baseline", str(snapshot)]) == 1
        assert "perf regression" in capsys.readouterr().err

        # a baseline measured under another execution configuration is
        # never compared (apples-to-oranges): skipped with a warning
        stored["payload"]["jobs"] = 64
        snapshot.write_text(json.dumps(stored))
        assert main(argv[:-2] + ["--baseline", str(snapshot)]) == 0
        assert "skipping" in capsys.readouterr().err

    def test_bench_baseline_missing_file_warns_not_fails(self, tmp_path, capsys):
        argv = [
            "bench", "--scheme", "trivial", "--n", "16", "--repeats", "1", "--json",
            "--baseline", str(tmp_path / "nope.json"),
        ]
        assert main(argv) == 0
        assert "cannot read baseline" in capsys.readouterr().err


class TestStoreCommand:
    def _populate(self, tmp_path, backend="sqlite"):
        directory = tmp_path / backend
        argv = [
            "sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "1",
            "--json", "--cache-dir", str(directory), "--cache-backend", backend,
        ]
        assert main(argv) == 0
        return directory

    def test_stats(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "stats", "--cache-dir", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "sqlite"
        assert payload["rows"] == 2
        assert len(payload["per_shard"]) == payload["shards"]
        assert sum(row["rows"] for row in payload["per_shard"]) == 2
        # the human rendering mentions the same totals
        assert main(["store", "stats", "--cache-dir", str(directory)]) == 0
        assert "2 row(s)" in capsys.readouterr().out

    def test_gc_keeps_current_rows(self, tmp_path, capsys):
        directory = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "gc", "--cache-dir", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"removed": 0, "kept": 2}

    def test_migrate_then_serve(self, tmp_path, capsys):
        json_dir = self._populate(tmp_path, backend="json")
        store_dir = tmp_path / "migrated"
        capsys.readouterr()
        argv = [
            "store", "migrate", "--cache-dir", str(store_dir),
            "--from-json", str(json_dir), "--json",
        ]
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == {"imported": 2, "skipped": 0}
        # the migrated store serves the sweep without recomputation
        sweep = [
            "sweep", "--scheme", "trivial", "--sizes", "8,16", "--repeats", "1",
            "--json", "--cache-dir", str(store_dir), "--resume",
        ]
        assert main(sweep) == 0
        captured = capsys.readouterr()
        assert "2 cached" in captured.err

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    @pytest.mark.parametrize("command", ["stats", "gc"])
    def test_read_commands_refuse_missing_store(self, tmp_path, command, capsys):
        """A typo'd --cache-dir must error, not conjure an empty store."""
        missing = tmp_path / "no-such-store"
        assert main(["store", command, "--cache-dir", str(missing)]) == 2
        assert "no result store" in capsys.readouterr().err
        assert not missing.exists()

    def test_gc_with_queue_dir_prunes_terminal_jobs(self, tmp_path, capsys):
        from repro.service.queue import LeaseQueue

        queue_dir = tmp_path / "svc"
        queue = LeaseQueue(queue_dir)
        queue.submit_job("stale", {"t": 1})
        queue.set_job_state("stale", LeaseQueue.JOB_DONE)
        queue.submit_job("live", {"t": 2})
        capsys.readouterr()
        # no shard store needed when a queue directory is given
        argv = [
            "store", "gc", "--cache-dir", str(tmp_path / "no-store"),
            "--queue-dir", str(queue_dir),
            "--job-ttl", "0", "--keep-last", "0", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["jobs_removed"] == 1
        assert payload["queue"]["jobs"] == ["stale"]
        assert queue.job_record("stale") is None
        assert queue.job_record("live")["state"] == LeaseQueue.JOB_RUNNING


class TestServeCli:
    def _seed_queue(self, tmp_path):
        from repro.service.queue import LeaseQueue

        queue_dir = tmp_path / "svc"
        queue = LeaseQueue(queue_dir)
        queue.submit_job("job", {"t": 1})
        queue.enqueue("job", [("k1", {"i": 1}), ("k2", {"i": 2})])
        return queue_dir

    def test_serve_without_queue_dir_errors(self, capsys):
        assert main(["serve"]) == 2
        assert "requires --queue-dir" in capsys.readouterr().err

    def test_serve_events_prints_the_log(self, tmp_path, capsys):
        queue_dir = self._seed_queue(tmp_path)
        assert main(["serve", "events", "--queue-dir", str(queue_dir)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["kind"] for event in events] == [
            "job-submit", "enqueue", "enqueue",
        ]

    def test_serve_events_kind_filter(self, tmp_path, capsys):
        queue_dir = self._seed_queue(tmp_path)
        argv = ["serve", "events", "--queue-dir", str(queue_dir), "--kind", "enqueue"]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "enqueue" for line in lines)

    def test_serve_events_missing_log(self, tmp_path, capsys):
        argv = ["serve", "events", "--queue-dir", str(tmp_path / "empty")]
        assert main(argv) == 1
        assert "no event log" in capsys.readouterr().err

    def test_serve_submit_unreachable_daemon(self, tmp_path, capsys):
        spec = tmp_path / "spec.toml"
        spec.write_text("[report]\ntitle = 'x'\n", encoding="utf-8")
        argv = [
            "serve", "submit", "--url", "http://127.0.0.1:9",
            "--spec", str(spec), "--timeout", "0.5",
        ]
        assert main(argv) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestBenchHistoryHelpers:
    def test_markdown_renders_one_row_per_entry(self, tmp_path):
        from repro.cli import bench_history_entries, bench_history_markdown

        snapshot = {
            "kind": "bench-snapshot",
            "rev": "abc1234",
            "payload": {
                "results": [
                    {
                        "scheme": "theorem3", "graph": "random", "n": 256,
                        "backend": "analytic", "grouping": "none",
                        "tier": "standard", "runs_per_second": 123.456,
                    }
                ]
            },
        }
        (tmp_path / "BENCH_abc1234.json").write_text(
            json.dumps(snapshot), encoding="utf-8"
        )
        entries = bench_history_entries(tmp_path)
        assert len(entries) == 1
        page = bench_history_markdown(entries)
        assert "abc1234" in page and "theorem3" in page
        assert page.count("\n| ") >= 1 or page.startswith("| ")

    def test_committed_history_page_is_fresh(self):
        """The CI freshness gate, exercised in-process."""
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, str(repo / "scripts" / "update_bench_history.py"), "--check"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr

"""Tests of the port-numbered weighted graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.weighted_graph import LocalView, PortNumberedGraph, canonical_edge_key


def triangle():
    return PortNumberedGraph(3, [(0, 1, 5.0), (1, 2, 3.0), (0, 2, 4.0)])


class TestConstruction:
    def test_basic_shape(self):
        g = triangle()
        assert g.n == 3 and g.m == 3
        assert [g.degree(u) for u in range(3)] == [2, 2, 2]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            PortNumberedGraph(2, [(0, 0, 1.0)])

    def test_rejects_parallel_edge(self):
        with pytest.raises(ValueError):
            PortNumberedGraph(2, [(0, 1, 1.0), (1, 0, 2.0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PortNumberedGraph(2, [(0, 2, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PortNumberedGraph(0, [])

    def test_node_ids_default_and_custom(self):
        g = triangle()
        assert [g.node_id(u) for u in range(3)] == [0, 1, 2]
        g2 = PortNumberedGraph(3, [(0, 1, 1.0), (1, 2, 2.0)], node_ids=[7, 7, 9])
        assert g2.node_id(0) == 7 and g2.node_id(1) == 7  # duplicates are allowed

    def test_port_permutation(self):
        g = PortNumberedGraph(
            3, [(0, 1, 1.0), (0, 2, 2.0)], port_permutations={0: [1, 0]}
        )
        # the first input edge of node 0 is on port 1, the second on port 0
        assert g.neighbor(0, 1) == 1
        assert g.neighbor(0, 0) == 2
        g.validate()

    def test_invalid_port_permutation(self):
        with pytest.raises(ValueError):
            PortNumberedGraph(3, [(0, 1, 1.0), (0, 2, 2.0)], port_permutations={0: [0, 0]})


class TestQueries:
    def test_wiring_consistency(self):
        g = triangle()
        g.validate()
        for u in range(g.n):
            for p in g.ports(u):
                v = g.neighbor(u, p)
                q = g.reverse_port(u, p)
                assert g.neighbor(v, q) == u
                assert g.weight(u, p) == g.weight(v, q)

    def test_edge_lookup(self):
        g = triangle()
        ref = g.edge_between(0, 2)
        assert ref is not None and ref.weight == 4.0
        assert ref.other_endpoint(0) == 2
        assert g.edge_between(0, 1).edge_id == 0
        assert PortNumberedGraph(3, [(0, 1, 1.0), (1, 2, 1.0)]).edge_between(0, 2) is None

    def test_edge_ref_errors(self):
        ref = triangle().edge(0)
        with pytest.raises(ValueError):
            ref.endpoint_port(2)
        with pytest.raises(ValueError):
            ref.other_endpoint(2)

    def test_total_weight(self):
        g = triangle()
        assert g.total_weight() == 12.0
        assert g.total_weight([0, 1]) == 8.0
        assert g.total_weight([]) == 0.0

    def test_has_distinct_weights(self):
        assert triangle().has_distinct_weights()
        g = PortNumberedGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert not g.has_distinct_weights()

    def test_is_connected(self):
        assert triangle().is_connected()
        assert not PortNumberedGraph(3, [(0, 1, 1.0)]).is_connected()
        assert PortNumberedGraph(1, []).is_connected()

    def test_canonical_edge_key_orders_ties_by_id(self):
        assert canonical_edge_key(1.0, 3) < canonical_edge_key(1.0, 5)
        assert canonical_edge_key(1.0, 9) < canonical_edge_key(2.0, 0)


class TestIndexOrder:
    def test_rank_round_trip(self):
        g = PortNumberedGraph(4, [(0, 1, 5.0), (0, 2, 2.0), (0, 3, 5.0)])
        # ports of node 0: 0 -> w5, 1 -> w2, 2 -> w5; index order = [1, 0, 2]
        assert g.ports_by_index(0) == (1, 0, 2)
        for p in g.ports(0):
            assert g.port_of_rank(0, g.rank_of_port(0, p)) == p

    def test_index_pair_definition(self):
        g = PortNumberedGraph(4, [(0, 1, 5.0), (0, 2, 2.0), (0, 3, 5.0)])
        assert g.index_pair(0, 1) == (1, 1)  # unique lightest edge
        assert g.index_pair(0, 0) == (2, 1)  # first of the two weight-5 edges
        assert g.index_pair(0, 2) == (2, 2)  # second of the two weight-5 edges
        for p in g.ports(0):
            x, y = g.index_pair(0, p)
            assert g.port_of_index_pair(0, x, y) == p

    def test_port_of_rank_out_of_range(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.port_of_rank(0, 0)
        with pytest.raises(ValueError):
            g.port_of_rank(0, 3)

    def test_local_view_consistency(self):
        g = PortNumberedGraph(4, [(0, 1, 5.0), (0, 2, 2.0), (0, 3, 5.0)])
        view = g.local_view(0)
        assert view.degree == 3
        assert view.ports_by_weight_then_port() == g.ports_by_index(0)
        for p in range(view.degree):
            assert view.rank_of_port(p) == g.rank_of_port(0, p)
            assert view.index_pair_of_port(p) == g.index_pair(0, p)
            assert view.port_of_index_pair(*view.index_pair_of_port(p)) == p

    def test_local_view_is_hashable(self):
        g = triangle()
        assert g.local_view(0) == g.local_view(0)
        assert len({g.local_view(0), g.local_view(0)}) == 1


class TestTransforms:
    def test_reweight_preserves_structure(self):
        g = triangle()
        g2 = g.reweight([10.0, 20.0, 30.0])
        assert g2.n == g.n and g2.m == g.m
        for u in range(g.n):
            for p in g.ports(u):
                assert g2.neighbor(u, p) == g.neighbor(u, p)
        assert g2.edge(0).weight == 10.0
        with pytest.raises(ValueError):
            g.reweight([1.0])

    def test_relabel_ports(self):
        g = triangle()
        g2 = g.relabel_ports({0: [1, 0]})
        g2.validate()
        assert {g2.neighbor(0, 0), g2.neighbor(0, 1)} == {1, 2}
        assert g2.neighbor(0, 0) != g.neighbor(0, 0)

    def test_edge_list_round_trip(self):
        g = triangle()
        g2 = PortNumberedGraph(g.n, g.edge_list())
        assert g2.edge_list() == g.edge_list()


@st.composite
def random_graph_edges(draw):
    """A random connected simple weighted graph as (n, edges)."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = []
    seen = set()
    # spanning tree first (guarantees connectivity)
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        seen.add((u, v))
        edges.append((u, v, float(draw(st.integers(min_value=1, max_value=50)))))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 2))
        b = draw(st.integers(min_value=a + 1, max_value=n - 1))
        if (a, b) not in seen:
            seen.add((a, b))
            edges.append((a, b, float(draw(st.integers(min_value=1, max_value=50)))))
    return n, edges


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(random_graph_edges())
    def test_structural_invariants(self, data):
        n, edges = data
        g = PortNumberedGraph(n, edges)
        g.validate()
        assert g.is_connected()
        # handshake lemma
        assert int(g.degrees().sum()) == 2 * g.m
        # every port resolves to a unique incident edge
        for u in range(n):
            ids = [g.edge_id(u, p) for p in g.ports(u)]
            assert len(set(ids)) == len(ids)

    @settings(max_examples=40, deadline=None)
    @given(random_graph_edges())
    def test_rank_is_a_bijection(self, data):
        n, edges = data
        g = PortNumberedGraph(n, edges)
        for u in range(n):
            ranks = sorted(g.rank_of_port(u, p) for p in g.ports(u))
            assert ranks == list(range(1, g.degree(u) + 1))

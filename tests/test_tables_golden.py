"""Golden-output tests for the table renderers and the trade-off module.

The renderers feed committed report artifacts, so their exact output
bytes are contract, not presentation: these tests pin them down to the
character, including the float formatting, ``None`` placeholders and
column-subset behaviour.
"""

import math

import pytest

from repro.analysis.tables import format_markdown_table, format_table
from repro.analysis.tradeoff import theoretical_tradeoff_rows, tradeoff_rows
from repro.graphs.generators import path_graph
from repro.graphs.weighted_graph import PortNumberedGraph

ROWS = [
    {"scheme": "trivial", "n": 8, "avg": 1.6875, "correct": True, "bound": None},
    {"scheme": "theorem3", "n": 128, "avg": 10.5, "correct": False, "bound": 21},
]


class TestFormatTable:
    def test_golden_text_table(self):
        expected = (
            "title\n"
            "scheme    n    avg    correct  bound\n"
            "--------  ---  -----  -------  -----\n"
            "trivial   8    1.688  True     -    \n"
            "theorem3  128  10.5   False    21   "
        )
        assert format_table(ROWS, title="title") == expected

    def test_column_subset_and_order(self):
        out = format_table(ROWS, columns=["n", "scheme"])
        assert out.splitlines()[0] == "n    scheme  "
        assert out.splitlines()[2] == "8    trivial "

    def test_missing_column_renders_dash(self):
        out = format_table([{"a": 1}], columns=["a", "zzz"])
        assert out.splitlines()[-1] == "1  -  "

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="t") == "t\n(no rows)"

    def test_nan_renders_as_nan(self):
        assert format_table([{"x": float("nan")}]).splitlines()[-1] == "nan"

    def test_float_formatting_strips_trailing_zeros(self):
        out = format_table([{"x": 2.0, "y": 0.125, "z": 1.23456}])
        assert out.splitlines()[-1] == "2  0.125  1.235"


class TestFormatMarkdownTable:
    def test_golden_markdown_table(self):
        expected = (
            "| scheme | n | avg | correct | bound |\n"
            "|---|---|---|---|---|\n"
            "| trivial | 8 | 1.688 | True | - |\n"
            "| theorem3 | 128 | 10.5 | False | 21 |"
        )
        assert format_markdown_table(ROWS) == expected

    def test_empty_rows(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_column_subset(self):
        out = format_markdown_table(ROWS, columns=["scheme"])
        assert out == "| scheme |\n|---|\n| trivial |\n| theorem3 |"


class TestTradeoffRows:
    def test_degenerate_single_node_instance(self):
        rows = tradeoff_rows(path_graph(1, seed=0))
        # every scheme and baseline solves the empty problem correctly
        assert len(rows) == 6
        assert all(row["correct"] for row in rows)
        # nothing to communicate about: 0 advice bits beyond headers for
        # the 0-round schemes, and the trivial scheme stays at 0 rounds
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["trivial-rank"]["rounds"] == 0

    def test_disconnected_input_raises(self):
        disconnected = PortNumberedGraph(4, [(0, 1, 1.0), (2, 3, 2.0)])
        with pytest.raises(ValueError, match="disconnected"):
            tradeoff_rows(disconnected)

    def test_include_flags(self):
        graph = path_graph(6, seed=1)
        full = tradeoff_rows(graph)
        assert len(full) == 6
        no_level = tradeoff_rows(graph, include_level_variant=False)
        assert len(no_level) == 5
        assert all(row["scheme"] != "theorem3-level" for row in no_level)
        no_baselines = tradeoff_rows(graph, include_baselines=False)
        assert len(no_baselines) == 4
        assert all("advice_bound" in row for row in no_baselines)


class TestTheoreticalRows:
    def test_values_at_n_64(self):
        rows = {row["scheme"]: row for row in theoretical_tradeoff_rows(64)}
        log_n = math.ceil(math.log2(64))
        assert rows["trivial (Section 1)"]["max_advice_bits"] == log_n
        assert rows["trivial (Section 1)"]["rounds"] == 0
        assert rows["Theorem 2"]["rounds"] == 1
        assert rows["Theorem 3"]["rounds"] == f"<= 9 log n = {9 * log_n}"
        assert rows["no advice (LOCAL)"]["max_advice_bits"] == 0

    def test_five_rows_for_any_n(self):
        assert len(theoretical_tradeoff_rows(2)) == 5
        assert len(theoretical_tradeoff_rows(10**6)) == 5

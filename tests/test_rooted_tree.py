"""Tests of the rooted spanning-tree representation."""

import pytest

from repro.graphs.generators import path_graph, random_connected_graph, star_graph
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree


class TestBuild:
    def test_path_rooted_at_end(self):
        g = path_graph(5, seed=1)
        tree = build_rooted_tree(g, range(4), root=0)
        assert tree.depth == (0, 1, 2, 3, 4)
        assert tree.parent == (-1, 0, 1, 2, 3)
        assert tree.is_root(0) and not tree.is_root(3)

    def test_path_rooted_in_middle(self):
        g = path_graph(5, seed=1)
        tree = build_rooted_tree(g, range(4), root=2)
        assert tree.depth[0] == 2 and tree.depth[4] == 2
        assert tree.parent[1] == 2 and tree.parent[3] == 2

    def test_parent_ports_point_at_parents(self):
        g = random_connected_graph(30, 0.1, seed=5)
        tree = build_rooted_tree(g, kruskal_mst(g), root=7)
        for u in range(g.n):
            if u == 7:
                continue
            assert g.neighbor(u, tree.parent_port[u]) == tree.parent[u]
            assert g.edge_id(u, tree.parent_port[u]) == tree.parent_edge[u]

    def test_rejects_wrong_edge_count(self):
        g = path_graph(5, seed=1)
        with pytest.raises(ValueError):
            build_rooted_tree(g, range(3), root=0)

    def test_rejects_non_spanning_edge_set(self):
        g = PortNumberedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)])
        with pytest.raises(ValueError):
            build_rooted_tree(g, [0, 1, 2], root=0)  # a triangle misses node 3

    def test_rejects_duplicate_edges(self):
        g = path_graph(4, seed=1)
        with pytest.raises(ValueError):
            build_rooted_tree(g, [0, 0, 1], root=0)


class TestQueries:
    def test_children_ordered_by_index(self):
        g = star_graph(6, seed=3)
        tree = build_rooted_tree(g, range(5), root=0)
        kids = tree.children(0)
        assert sorted(kids) == [1, 2, 3, 4, 5]
        # children come in increasing (weight, port) order of the connecting edge
        weights = [g.edge(tree.parent_edge[c]).weight for c in kids]
        assert weights == sorted(weights)

    def test_subtree_and_paths(self):
        g = path_graph(6, seed=1)
        tree = build_rooted_tree(g, range(5), root=0)
        assert tree.subtree_nodes(3) == [3, 4, 5]
        assert tree.subtree_size(0) == 6
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_up_edge_orientation(self):
        g = path_graph(4, seed=1)
        tree = build_rooted_tree(g, range(3), root=0)
        # edge 1 joins nodes 1 and 2; it is up at 2 (towards the root) and down at 1
        assert tree.is_up_edge_at(2, 1)
        assert not tree.is_up_edge_at(1, 1)

    def test_expected_outputs(self):
        g = random_connected_graph(20, 0.1, seed=8)
        tree = build_rooted_tree(g, kruskal_mst(g), root=4)
        outputs = tree.expected_outputs()
        assert outputs[4] == ROOT_OUTPUT
        assert sum(1 for v in outputs.values() if v == ROOT_OUTPUT) == 1
        for u, port in outputs.items():
            if port != ROOT_OUTPUT:
                assert g.neighbor(u, port) == tree.parent[u]

    def test_nodes_by_depth_and_total_weight(self):
        g = path_graph(4, seed=1)
        tree = build_rooted_tree(g, range(3), root=0)
        assert tree.nodes_by_depth() == [[0], [1], [2], [3]]
        assert abs(tree.total_weight() - g.total_weight(range(3))) < 1e-9
        assert tree.contains_edge(0) and not tree.contains_edge(99)

"""Cross-module integration tests: every scheme against every substrate."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oracle import run_scheme
from repro.core.scheme_average import AverageConstantScheme
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.graphs.generators import random_connected_graph
from repro.graphs.lowerbound_family import build_gn
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst


ALL_SCHEMES = [TrivialRankScheme, AverageConstantScheme, ShortAdviceScheme, LevelAdviceScheme]


class TestAllSchemesAgree:
    def test_all_schemes_output_the_same_reference_tree(self):
        """Every scheme must decode exactly the reference MST, not just *an* MST."""
        graph = random_connected_graph(60, 0.07, seed=21)
        reference = tuple(kruskal_mst(graph))
        for scheme_cls in ALL_SCHEMES:
            report = run_scheme(scheme_cls(), graph, root=11)
            assert report.correct, f"{scheme_cls.__name__}: {report.check.reason}"
            assert report.check.tree_edge_ids == reference

    def test_schemes_on_the_lower_bound_family(self):
        """The Theorem-1 family is also a perfectly ordinary input for the schemes."""
        inst = build_gn(12)
        expected = tuple(inst.expected_mst_edge_ids())
        for scheme_cls in ALL_SCHEMES:
            report = run_scheme(scheme_cls(), inst.graph, root=inst.u(1))
            assert report.correct
            assert report.check.tree_edge_ids == expected

    def test_tradeoff_ordering_on_one_instance(self):
        """Rounds: trivial < average < main; advice growth behaves the opposite way."""
        graph = random_connected_graph(256, 0.02, seed=22)
        trivial = run_scheme(TrivialRankScheme(), graph, root=0)
        average = run_scheme(AverageConstantScheme(), graph, root=0)
        main = run_scheme(ShortAdviceScheme(), graph, root=0)
        assert trivial.rounds == 0 < average.rounds == 1 < main.rounds
        assert main.rounds <= 9 * math.ceil(math.log2(graph.n))
        # Theorem 2's average advice and Theorem 3's max advice are both constants
        assert average.advice.average_bits <= 12
        assert main.advice.max_bits <= ShortAdviceScheme().advice_bound_bits(graph.n)


@st.composite
def connected_instance(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    distinct = draw(st.booleans())
    mode = "distinct" if distinct else "integer"
    prob = draw(st.sampled_from([0.0, 0.1, 0.3]))
    graph = random_connected_graph(n, prob, seed=seed, weight_mode=mode, weight_range=6)
    root = draw(st.integers(min_value=0, max_value=n - 1))
    return graph, root


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(connected_instance())
    def test_main_scheme_always_decodes_an_mst(self, instance):
        graph, root = instance
        report = run_scheme(ShortAdviceScheme(), graph, root=root)
        assert report.correct, report.check.reason
        assert report.check.tree_edge_ids == tuple(kruskal_mst(graph))

    @settings(max_examples=25, deadline=None)
    @given(connected_instance())
    def test_average_scheme_always_decodes_an_mst_in_one_round(self, instance):
        graph, root = instance
        report = run_scheme(AverageConstantScheme(), graph, root=root)
        assert report.correct, report.check.reason
        assert report.rounds <= 1

    @settings(max_examples=25, deadline=None)
    @given(connected_instance())
    def test_trivial_scheme_always_decodes_an_mst_in_zero_rounds(self, instance):
        graph, root = instance
        report = run_scheme(TrivialRankScheme(), graph, root=root)
        assert report.correct, report.check.reason
        assert report.rounds == 0

"""Tests of the level-based Theorem-3 variant (the D1 ablation)."""

import pytest

from repro.core.oracle import run_scheme
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import ShortAdviceScheme, num_boruvka_phases
from repro.graphs.generators import complete_graph, cycle_graph, random_connected_graph


class TestLevelScheme:
    def test_correct_on_distinct_weight_zoo(self, distinct_weight_zoo):
        scheme = LevelAdviceScheme()
        for name, graph, root in distinct_weight_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.correct, f"{name}: {report.check.reason}"
            assert report.check.root == root

    def test_rejects_duplicate_weights(self):
        graph = random_connected_graph(30, 0.1, seed=1, weight_mode="integer", weight_range=3)
        assert not graph.has_distinct_weights()
        with pytest.raises(ValueError):
            LevelAdviceScheme().compute_advice(graph, root=0)

    def test_same_tree_as_primary_variant(self):
        """Both Theorem-3 variants must decode the same rooted MST."""
        for seed in range(3):
            graph = random_connected_graph(70, 0.06, seed=seed)
            main = run_scheme(ShortAdviceScheme(), graph, root=3)
            level = run_scheme(LevelAdviceScheme(), graph, root=3)
            assert main.correct and level.correct
            assert main.check.tree_edge_ids == level.check.tree_edge_ids

    def test_advice_contains_level_bitmap(self):
        """The level variant pays ⌈log log n⌉ extra bits per node for the bitmap."""
        graph = random_connected_graph(200, 0.03, seed=2)
        phases = num_boruvka_phases(graph.n)
        level_advice = LevelAdviceScheme().compute_advice(graph, root=0)
        main_advice = ShortAdviceScheme().compute_advice(graph, root=0)
        # every node carries at least the extra bitmap bits compared to the header floor
        for u in range(graph.n):
            assert level_advice.bits_of(u) >= 6 + phases
        assert level_advice.stats().average_bits > main_advice.stats().average_bits

    def test_rounds_slightly_larger_than_primary(self):
        """The level exchange costs a constant number of extra rounds per phase."""
        graph = random_connected_graph(150, 0.04, seed=3)
        main = run_scheme(ShortAdviceScheme(), graph, root=0)
        level = run_scheme(LevelAdviceScheme(), graph, root=0)
        phases = num_boruvka_phases(graph.n)
        assert main.rounds < level.rounds <= main.rounds + 2 * phases + 4

    def test_structured_graphs(self):
        for graph, root in [(complete_graph(24, seed=4), 0), (cycle_graph(60, seed=5), 30)]:
            report = run_scheme(LevelAdviceScheme(), graph, root=root)
            assert report.correct, report.check.reason

    def test_declared_bounds_grow_with_log_log_n(self):
        scheme = LevelAdviceScheme()
        assert scheme.advice_bound_bits(2**16) > scheme.advice_bound_bits(16)
        assert scheme.round_bound(1024) > ShortAdviceScheme().round_bound(1024)

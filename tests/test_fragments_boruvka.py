"""Tests of fragment partitions, fragment trees and the Borůvka trace.

These check the structural lemmas the advising schemes rely on:
Lemma 1 (fragment growth), Lemma 2 (rank of the selected edge), the
parity of fragment levels across selected edges, and the consistency of
the choosing-node bookkeeping.
"""

import math

import pytest

from repro.graphs.generators import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    random_connected_graph,
)
from repro.mst.boruvka import boruvka_trace
from repro.mst.fragments import FragmentPartition
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import build_rooted_tree


TRACE_GRAPHS = [
    ("rand40", random_connected_graph(40, 0.1, seed=1), 0),
    ("rand40-root17", random_connected_graph(40, 0.1, seed=1), 17),
    ("complete20", complete_graph(20, seed=2), 3),
    ("cycle33", cycle_graph(33, seed=3), 5),
    ("caterpillar", caterpillar_graph(8, 2, seed=4), 0),
    ("duplicates", random_connected_graph(35, 0.1, seed=5, weight_mode="integer", weight_range=4), 2),
]


@pytest.fixture(scope="module", params=TRACE_GRAPHS, ids=[t[0] for t in TRACE_GRAPHS])
def traced(request):
    name, graph, root = request.param
    return name, graph, root, boruvka_trace(graph, root=root)


class TestTrace:
    def test_produces_the_reference_mst(self, traced):
        _, graph, _, trace = traced
        assert trace.mst_edge_ids() == kruskal_mst(graph)

    def test_phase_count_bound(self, traced):
        _, graph, _, trace = traced
        assert trace.num_phases <= math.ceil(math.log2(graph.n))

    def test_lemma1_fragment_growth(self, traced):
        """After phase i every fragment has at least 2^i nodes (Lemma 1)."""
        _, graph, _, trace = traced
        for phase in trace.phases:
            # at the *start* of phase i sizes are at least 2^(i-1)
            assert all(s >= 2 ** (phase.index - 1) for s in phase.partition.sizes())
            # active fragments are exactly those below 2^i
            for f in range(phase.partition.num_fragments):
                if f in phase.active:
                    assert phase.partition.size(f) < 2**phase.index
                else:
                    assert phase.partition.size(f) >= 2**phase.index

    def test_every_active_fragment_selects_until_done(self, traced):
        _, _, _, trace = traced
        for phase in trace.phases:
            if phase.partition.num_fragments == 1:
                continue
            selected_fragments = {sel.fragment for sel in phase.selections}
            assert selected_fragments == set(phase.active)

    def test_selected_edges_are_mst_edges(self, traced):
        _, _, _, trace = traced
        mst = set(trace.mst_edge_ids())
        for phase in trace.phases:
            for sel in phase.selections:
                assert sel.selected_edge in mst

    def test_selected_edges_leave_the_fragment(self, traced):
        _, _, _, trace = traced
        for phase in trace.phases:
            for sel in phase.selections:
                assert sel.target_fragment != sel.fragment

    def test_lemma2_rank_bound_for_distinct_weights(self, traced):
        """Lemma 2: the selected edge's rank at the choosing node is at most |F|."""
        _, graph, _, trace = traced
        if not graph.has_distinct_weights():
            pytest.skip("Lemma 2 is stated for the distinct-weight tie-breaking")
        for phase in trace.phases:
            for sel in phase.selections:
                assert sel.rank_at_choosing <= sel.fragment_size
                x, y = sel.index_pair
                assert x + y <= sel.fragment_size + 1

    def test_orientation_matches_rooted_tree(self, traced):
        _, _, root, trace = traced
        tree = trace.tree
        assert tree.root == root
        for phase in trace.phases:
            for sel in phase.selections:
                is_up = tree.parent_edge[sel.choosing_node] == sel.selected_edge
                assert sel.is_up == is_up

    def test_levels_differ_across_selected_edges(self, traced):
        """A selected edge joins fragments of different level parity."""
        _, _, _, trace = traced
        for phase in trace.phases:
            for sel in phase.selections:
                assert sel.level_of_fragment != sel.level_of_target_fragment

    def test_choosing_dfs_index_is_consistent(self, traced):
        _, _, _, trace = traced
        for phase in trace.phases:
            for sel in phase.selections:
                preorder = phase.partition.dfs_preorder(sel.fragment)
                assert preorder[sel.choosing_dfs_index - 1] == sel.choosing_node
                assert len(preorder) == sel.fragment_size

    def test_max_phases_truncation(self, traced):
        _, graph, root, trace = traced
        truncated = boruvka_trace(graph, root=root, max_phases=1)
        assert truncated.num_phases == 1
        assert truncated.mst_edge_ids() == trace.mst_edge_ids()
        # the partition after the only recorded phase is still available
        partition = truncated.partition_before_phase(2)
        assert sum(partition.sizes()) == graph.n


class TestFragmentPartition:
    def test_singletons(self):
        g = random_connected_graph(12, 0.2, seed=7)
        tree = build_rooted_tree(g, kruskal_mst(g), root=0)
        partition = FragmentPartition.singletons(tree)
        assert partition.num_fragments == g.n
        assert partition.sizes() == [1] * g.n
        assert partition.dfs_preorder(3) == [partition.members[3][0]]

    def test_partition_from_selected_edges(self):
        g = random_connected_graph(20, 0.15, seed=8)
        mst = kruskal_mst(g)
        tree = build_rooted_tree(g, mst, root=0)
        partition = FragmentPartition.from_selected_edges(tree, mst[:5])
        assert sum(partition.sizes()) == g.n
        # nodes joined by a selected edge share a fragment
        for eid in mst[:5]:
            ref = g.edge(eid)
            assert partition.fragment_of[ref.u] == partition.fragment_of[ref.v]

    def test_rejects_non_tree_edges(self):
        g = complete_graph(6, seed=9)
        mst = kruskal_mst(g)
        tree = build_rooted_tree(g, mst, root=0)
        non_tree = next(e for e in range(g.m) if e not in set(mst))
        with pytest.raises(ValueError):
            FragmentPartition.from_selected_edges(tree, [non_tree])

    def test_fragment_root_and_depths(self):
        g = random_connected_graph(25, 0.1, seed=10)
        trace = boruvka_trace(g, root=0)
        for phase in trace.phases:
            partition = phase.partition
            for f in range(partition.num_fragments):
                r_f = partition.root_of(f)
                # the fragment root is the member closest to the global root
                assert all(
                    trace.tree.depth[r_f] <= trace.tree.depth[u]
                    for u in partition.members[f]
                )
                assert partition.depth_in_fragment(r_f) == 0
                assert partition.parent_in_fragment(r_f) is None
                # DFS preorder visits each member exactly once, root first
                preorder = partition.dfs_preorder(f)
                assert sorted(preorder) == list(partition.members[f])
                assert preorder[0] == r_f
                # the k-th preorder node is at depth at most k-1
                for k, u in enumerate(preorder):
                    assert partition.depth_in_fragment(u) <= k

    def test_fragment_tree_levels(self):
        g = random_connected_graph(30, 0.1, seed=11)
        trace = boruvka_trace(g, root=4)
        for phase in trace.phases:
            ftree = phase.fragment_tree
            partition = phase.partition
            root_fragment = partition.fragment_of[4]
            assert ftree.root_fragment == root_fragment
            assert ftree.depth[root_fragment] == 0
            assert ftree.level(root_fragment) == 0
            for f in range(partition.num_fragments):
                parent = ftree.parent_fragment[f]
                if f == root_fragment:
                    assert parent == -1
                else:
                    assert ftree.depth[f] == ftree.depth[parent] + 1
                    assert ftree.are_adjacent(f, parent)
                    # the connecting edge joins the fragment's root to its parent fragment
                    eid = ftree.connecting_edge[f]
                    ref = g.edge(eid)
                    assert partition.fragment_of[ref.u] in (f, parent)
                    assert partition.fragment_of[ref.v] in (f, parent)

"""Tests of the instance-grouped batch executor (repro.runner.plan)."""

import json

import pytest

from repro.runner import (
    ExecutionStats,
    GraphSpec,
    SQLiteResultStore,
    SweepTask,
    execute_task,
    plan_groups,
    run_tasks,
)
from repro.runner.plan import instance_key
from repro.runner.registry import build_graph


def _mixed_grid():
    """Schemes on both backends plus a baseline, over a shared seed grid."""
    tasks = [
        SweepTask("scheme", target, GraphSpec("random", 0.1), n, seed, backend=backend)
        for n in (12, 20)
        for seed in (0, 1)
        for target in ("trivial", "theorem2", "theorem3", "theorem3-level")
        for backend in ("engine", "analytic")
    ]
    tasks += [
        SweepTask("baseline", name, GraphSpec("random", 0.1), n, seed)
        for n in (12, 20)
        for seed in (0, 1)
        for name in ("ghs", "full-info")
    ]
    return tasks


class TestPlanGroups:
    def test_groups_partition_the_task_list(self):
        tasks = _mixed_grid()
        groups = plan_groups(tasks)
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(len(tasks)))
        # 2 sizes x 2 seeds = 4 shared instances
        assert len(groups) == 4
        for group in groups:
            keys = {instance_key(task) for task in group.tasks}
            assert len(keys) == 1

    def test_groups_preserve_first_seen_order(self):
        tasks = _mixed_grid()
        groups = plan_groups(tasks)
        first_indices = [g.indices[0] for g in groups]
        assert first_indices == sorted(first_indices)
        # within a group, indices stay in task order
        for group in groups:
            assert list(group.indices) == sorted(group.indices)

    def test_closure_tasks_become_singleton_groups(self):
        factory = lambda n, seed: build_graph("cycle", n, seed)  # noqa: E731
        tasks = [
            SweepTask("scheme", "trivial", factory, 8, 0),
            SweepTask("scheme", "trivial", factory, 8, 0),
        ]
        groups = plan_groups(tasks)
        assert [g.indices for g in groups] == [(0,), (1,)]
        assert all(g.key is None for g in groups)

    def test_density_normalisation_matches_task_identity(self):
        # density shapes only the "random" family, so cycle specs with
        # different densities describe the same instance -> one group
        a = SweepTask("scheme", "trivial", GraphSpec("cycle", 0.05), 8, 0)
        b = SweepTask("scheme", "theorem2", GraphSpec("cycle", 0.9), 8, 0)
        assert instance_key(a) == instance_key(b)
        c = SweepTask("scheme", "trivial", GraphSpec("random", 0.05), 8, 0)
        d = SweepTask("scheme", "trivial", GraphSpec("random", 0.9), 8, 0)
        assert instance_key(c) != instance_key(d)


class TestGroupedExecution:
    def test_grouped_serial_parallel_and_ungrouped_are_byte_identical(self):
        tasks = _mixed_grid()
        grouped = run_tasks(tasks, grouping="instance")
        ungrouped = run_tasks(tasks, grouping="none")
        parallel = run_tasks(tasks, jobs=4, grouping="instance")
        assert json.dumps(grouped) == json.dumps(ungrouped)
        assert json.dumps(grouped) == json.dumps(parallel)

    def test_execute_task_matches_grouped_row(self):
        task = SweepTask("scheme", "theorem3", GraphSpec("random", 0.1), 16, 3)
        (grouped_row,) = run_tasks([task])
        assert json.dumps(execute_task(task)) == json.dumps(grouped_row)

    def test_invalid_grouping_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([SweepTask("scheme", "trivial", GraphSpec(), 8, 0)], grouping="wat")

    def test_stats_report_groups_and_stages(self):
        from repro.runner.tasks import clear_graph_memo

        clear_graph_memo()
        tasks = _mixed_grid()
        stats = ExecutionStats()
        run_tasks(tasks, stats=stats)
        assert stats.groups == 4
        assert stats.grouped_tasks == len(tasks)
        assert stats.cache_misses == len(tasks) and stats.cache_hits == 0
        stages = stats.stages_dict()
        assert set(stages) == {"graph", "trace", "advice", "execute"}
        assert stages["execute"] > 0.0

    def test_warm_cache_skips_group_construction_entirely(self, tmp_path):
        tasks = [
            SweepTask("scheme", target, GraphSpec("random", 0.1), 12, seed)
            for seed in (0, 1)
            for target in ("trivial", "theorem3")
        ]
        cold = ExecutionStats()
        first = run_tasks(tasks, cache_dir=tmp_path, stats=cold)
        assert cold.groups == 2 and cold.cache_misses == len(tasks)

        warm = ExecutionStats()
        cache = SQLiteResultStore(tmp_path)
        second = run_tasks(tasks, cache_dir=cache, stats=warm)
        assert cache.hits == len(tasks)
        assert warm.groups == 0  # no group was ever constructed
        assert warm.grouped_tasks == 0
        assert warm.stage_seconds == {}
        assert json.dumps(first) == json.dumps(second)

    def test_advice_shared_across_backends_of_one_scheme(self):
        # one instance, one scheme, both backends: the context computes
        # the advice once and both rows still agree with isolated runs
        tasks = [
            SweepTask("scheme", "theorem3", GraphSpec("random", 0.1), 24, 5, backend=b)
            for b in ("engine", "analytic")
        ]
        grouped = run_tasks(tasks)
        isolated = [execute_task(task) for task in tasks]
        assert json.dumps(grouped) == json.dumps(isolated)
        assert grouped[0] == grouped[1]  # backends agree row for row


hypothesis = pytest.importorskip("hypothesis")
given, settings, st = hypothesis.given, hypothesis.settings, hypothesis.strategies


_task_strategy = st.builds(
    SweepTask,
    kind=st.just("scheme"),
    target=st.sampled_from(["trivial", "theorem2", "theorem3"]),
    graph=st.builds(
        GraphSpec,
        family=st.sampled_from(["random", "cycle", "hypercube"]),
        density=st.sampled_from([0.05, 0.1]),
    ),
    n=st.integers(4, 64),
    seed=st.integers(0, 5),
    root=st.integers(0, 3),
    backend=st.sampled_from(["engine", "analytic"]),
)


class TestPlanGroupsProperty:
    @settings(max_examples=60, deadline=None)
    @given(tasks=st.lists(_task_strategy, max_size=40))
    def test_plan_groups_partitions_exactly(self, tasks):
        groups = plan_groups(tasks)
        covered = sorted(i for g in groups for i in g.indices)
        assert covered == list(range(len(tasks)))  # exact partition
        for group in groups:
            # group membership agrees with the shared-instance identity
            assert len({instance_key(task) for task in group.tasks}) == 1
            assert [tasks[i] for i in group.indices] == list(group.tasks)
        # distinct groups never share an identity
        keys = [instance_key(g.tasks[0]) for g in groups]
        assert len(keys) == len(set(keys))

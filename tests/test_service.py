"""Tests of the fault-tolerant sweep service (`repro.service`).

Four layers, in rising order of violence:

* unit tests of the retry policy and the lease queue's state machine
  (TTL expiry, heartbeats, dedup, backoff, quarantine) — all with an
  injected clock, no sleeping;
* the observability layer: the /metrics registry must agree with the
  queue tables it counts, the event log must replay to the same
  terminal state, the priority lanes must never starve the normal lane
  (a hypothesis bounded-wait property), and queue gc must never touch
  live or leased work;
* worker tests: poison payloads quarantine instead of wedging, hung
  executions hit the wall-clock timeout, drained items survive;
* the chaos test: a 12-task sweep over two real worker processes, one
  of which is SIGKILLed mid-lease.  The job must complete, no item may
  exceed its attempt budget, the artifacts must be byte-identical to a
  serial ``generate_report``, and both the metrics scrape and the event
  log replay must agree with the final queue state — the whole point of
  the service.

The ``--jobs N`` dead-worker regression test lives here too: it is the
same failure mode (a worker dying mid-task) on the in-process pool path.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.report.pipeline import generate_report
from repro.report.spec import parse_spec_text
from repro.runner.plan import InstanceContext, StackedGroup, TaskGroup, plan_groups
from repro.runner.runner import run_tasks
from repro.runner.store import SQLiteResultStore
from repro.runner.tasks import GraphSpec, SweepTask, task_from_wire, task_to_wire
from repro.service import metrics as service_metrics
from repro.service.daemon import SweepService
from repro.service.events import follow_events, read_events, replay
from repro.service.queue import (
    NORMAL_LANE_CREDIT,
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    LeaseQueue,
    QuarantinedTasksError,
    QueueExecutor,
    group_dedup_key,
    group_payload,
)
from repro.service.retry import RetryPolicy
from repro.service.worker import TEST_DELAY_ENV, run_worker

REPO = Path(__file__).resolve().parent.parent

#: 3 schemes x 2 sizes x 2 seeds = 12 tasks in 4 instance groups — the
#: chaos grid: big enough that both workers hold leases, small enough
#: to finish fast
CHAOS_SPEC = """
title = "chaos"

[[experiment]]
name = "curves"
kind = "sweep"
schemes = ["trivial", "theorem2", "theorem3"]
sizes = [8, 16]
seeds = 2
"""


def make_task(seed: int = 0, n: int = 8, target: str = "trivial") -> SweepTask:
    return SweepTask(
        kind="scheme", target=target, graph=GraphSpec("random", 0.3), n=n, seed=seed
    )


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# ------------------------------------------------------------------ #
# retry policy
# ------------------------------------------------------------------ #


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=4.0)
        delays = [policy.backoff_delay("key", attempt) for attempt in (1, 2, 3, 9)]
        assert delays == [policy.backoff_delay("key", a) for a in (1, 2, 3, 9)]
        assert 0.5 <= delays[0] < 1.0
        assert 1.0 <= delays[1] < 2.0
        assert all(delay < 4.0 for delay in delays)
        # different keys spread out
        assert policy.backoff_delay("other", 1) != delays[0]

    def test_item_timeout_scales_with_task_count(self):
        policy = RetryPolicy(task_timeout=10.0)
        assert policy.item_timeout(3) == 30.0
        assert policy.item_timeout(0) == 10.0  # never a zero budget

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0)


# ------------------------------------------------------------------ #
# task wire format
# ------------------------------------------------------------------ #


class TestWireFormat:
    def test_roundtrip_preserves_hash(self):
        task = make_task(seed=3, n=16, target="theorem3")
        rebuilt = task_from_wire(task_to_wire(task))
        assert rebuilt == task
        assert rebuilt.task_hash() == task.task_hash()

    def test_uncacheable_task_is_rejected(self):
        task = SweepTask(
            kind="scheme",
            target="trivial",
            graph=lambda n, seed: None,  # ad-hoc factory: no content hash
            n=8,
            seed=0,
        )
        with pytest.raises(ValueError):
            task_to_wire(task)

    def test_malformed_wire_payload_raises(self):
        wire = task_to_wire(make_task())
        wire["kind"] = "nonsense"
        with pytest.raises(ValueError):
            task_from_wire(wire)


# ------------------------------------------------------------------ #
# lease queue state machine (injected clock, no sleeping)
# ------------------------------------------------------------------ #


class TestLeaseQueue:
    def payload(self, seed: int) -> tuple:
        [group] = plan_groups([make_task(seed=seed)])
        hashes = [task.task_hash() for task in group.tasks]
        return group_dedup_key(hashes), group_payload(group, hashes)

    def test_enqueue_dedups_by_content(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        key, payload = self.payload(0)
        assert queue.enqueue("job-a", [(key, payload)]) == 1
        # same item again, other job: linked, not duplicated
        assert queue.enqueue("job-b", [(key, payload)]) == 0
        assert queue.job_progress("job-a")["total"] == 1
        assert queue.job_progress("job-b")["total"] == 1

    def test_lease_expiry_requeues_to_another_owner(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        key, payload = self.payload(0)
        queue.enqueue("job", [(key, payload)])
        item = queue.lease("worker-a", ttl=10.0, max_attempts=3)
        assert item.dedup_key == key and item.attempts == 1
        # still leased: nobody else can claim it
        assert queue.lease("worker-b", ttl=10.0, max_attempts=3) is None
        # heartbeat extends the lease
        clock.now += 8.0
        assert queue.heartbeat(key, "worker-a", ttl=10.0)
        clock.now += 8.0
        assert queue.lease("worker-b", ttl=10.0, max_attempts=3) is None
        # owner goes silent: the lease expires and worker-b takes over
        clock.now += 11.0
        item2 = queue.lease("worker-b", ttl=10.0, max_attempts=3)
        assert item2 is not None and item2.attempts == 2
        # the stale owner's completion is ignored, the live one's counts
        assert not queue.complete(key, "worker-a")
        assert queue.complete(key, "worker-b")
        assert queue.item_states([key])[key][0] == LeaseQueue.ITEM_DONE

    def test_crash_looping_item_is_quarantined_at_lease_time(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        key, payload = self.payload(0)
        queue.enqueue("job", [(key, payload)])
        for _ in range(2):  # two leases, both owners die silently
            assert queue.lease("doomed", ttl=1.0, max_attempts=2) is not None
            clock.now += 2.0
        # attempt budget burned: the next lease call quarantines instead
        assert queue.lease("survivor", ttl=1.0, max_attempts=2) is None
        assert queue.item_states([key])[key][0] == LeaseQueue.ITEM_QUARANTINED
        [row] = queue.quarantined()
        assert row["dedup_key"] == key and row["attempts"] == 2

    def test_fail_backs_off_then_quarantines(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        policy = RetryPolicy(max_attempts=2, backoff_base=5.0, backoff_cap=5.0)
        key, payload = self.payload(0)
        queue.enqueue("job", [(key, payload)])
        queue.lease("w", ttl=10.0, max_attempts=policy.max_attempts)
        assert queue.fail(key, "w", "boom", policy) == LeaseQueue.ITEM_PENDING
        # backoff holds the item out of rotation until not_before passes
        assert queue.lease("w", ttl=10.0, max_attempts=policy.max_attempts) is None
        clock.now += 6.0
        item = queue.lease("w", ttl=10.0, max_attempts=policy.max_attempts)
        assert item.attempts == 2
        assert queue.fail(key, "w", "boom again", policy) == LeaseQueue.ITEM_QUARANTINED
        state, error = queue.item_states([key])[key]
        assert state == LeaseQueue.ITEM_QUARANTINED and "boom again" in error
        # explicit requeue puts it back with a fresh budget
        assert queue.requeue_quarantined() == 1
        assert queue.lease("w", ttl=10.0, max_attempts=policy.max_attempts).attempts == 1

    def test_job_records_dedup_and_track_state(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        assert queue.submit_job("job-1", {"text": "t"})
        assert not queue.submit_job("job-1", {"text": "t"})
        queue.set_job_state("job-1", LeaseQueue.JOB_DONE)
        assert queue.job_record("job-1")["state"] == LeaseQueue.JOB_DONE
        assert queue.job_record("missing") is None
        assert [job["job_id"] for job in queue.list_jobs()] == ["job-1"]


# ------------------------------------------------------------------ #
# observability: metrics registry, event log, priority lanes, gc
# ------------------------------------------------------------------ #


def metric_value(text: str, name: str, labels: str = "") -> float:
    """One sample out of a rendered /metrics page."""
    needle = f"{name}{{{labels}}} " if labels else f"{name} "
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name}{{{labels}}} not in:\n{text}")


def synthetic_entries(count: int, start: int = 0):
    """Cheap (dedup_key, payload) pairs; no task compilation needed."""
    return [(f"item-{index:04d}", {"i": index}) for index in range(start, start + count)]


class TestMetrics:
    def test_counters_and_gauges_track_transitions(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        policy = RetryPolicy(max_attempts=2, backoff_base=1.0, backoff_cap=1.0)
        queue.submit_job("job", {"t": 1})
        queue.enqueue("job", synthetic_entries(3))
        # enqueueing the same items again is a dedup link, not a count
        queue.enqueue("job-b", synthetic_entries(3))

        item = queue.lease("w1", ttl=10.0, max_attempts=policy.max_attempts)
        queue.complete(item.dedup_key, "w1", duration=0.2)
        item = queue.lease("w1", ttl=10.0, max_attempts=policy.max_attempts)
        queue.heartbeat(item.dedup_key, "w1", ttl=10.0)
        queue.fail(item.dedup_key, "w1", "boom", policy, duration=2.0)
        # third item: lease it, let the lease expire
        item = queue.lease("w1", ttl=10.0, max_attempts=policy.max_attempts)
        clock.now += 11.0
        # oldest runnable first: w2 re-leases the requeued second item
        # (attempt budget now burned) and its fail quarantines it ...
        retried = queue.lease("w2", ttl=10.0, max_attempts=policy.max_attempts)
        assert retried is not None and retried.attempts == 2
        queue.fail(retried.dedup_key, "w2", "poison", policy)
        # ... then takes over the third item's expired lease
        takeover = queue.lease("w2", ttl=10.0, max_attempts=policy.max_attempts)
        assert takeover.dedup_key == item.dedup_key and takeover.attempts == 2

        text = service_metrics.render_metrics(queue)
        assert metric_value(text, "repro_queue_items_enqueued_total") == 3
        assert metric_value(text, "repro_queue_leases_total") == 5
        assert metric_value(text, "repro_queue_lease_expired_total") == 1
        assert metric_value(text, "repro_queue_heartbeats_total") == 1
        assert metric_value(text, "repro_queue_completes_total") == 1
        assert metric_value(text, "repro_queue_failures_total") == 2
        assert metric_value(text, "repro_queue_requeues_total") == 1
        assert metric_value(text, "repro_queue_quarantines_total") == 1
        assert metric_value(text, "repro_jobs_submitted_total") == 1
        # histogram: two observations (0.2s and 2.0s)
        assert metric_value(text, "repro_item_seconds_count") == 2
        assert metric_value(text, "repro_item_seconds_sum") == pytest.approx(2.2)
        assert metric_value(text, "repro_item_seconds_bucket", 'le="0.25"') == 1
        assert metric_value(text, "repro_item_seconds_bucket", 'le="+Inf"') == 2
        # gauges agree with the tables
        stats = queue.stats()
        for state in ("pending", "done", "quarantined"):
            both_lanes = sum(
                metric_value(text, "repro_queue_items", f'state="{state}",priority="{lane}"')
                for lane in ("high", "normal")
            )
            assert both_lanes == stats["items"].get(state, 0)
        # both workers heartbeated recently
        assert metric_value(text, "repro_workers_live") == 2
        assert metric_value(text, "repro_worker_items_processed_total", 'owner="w1"') == 2

    def test_scrape_is_consistent_with_queue_state(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        queue.submit_job("job", {"t": 1})
        queue.enqueue("job", synthetic_entries(5))
        held = queue.lease("w", ttl=100.0, max_attempts=3)
        clock.now += 7.0
        text = service_metrics.render_metrics(queue)
        assert metric_value(text, "repro_queue_items", 'state="leased",priority="normal"') == 1
        assert metric_value(text, "repro_queue_items", 'state="pending",priority="normal"') == 4
        assert metric_value(text, "repro_queue_oldest_lease_age_seconds") == 7
        assert metric_value(text, "repro_queue_jobs", 'state="running"') == 1
        # progress ratio: 0 done of 5
        assert metric_value(text, "repro_job_progress_ratio", 'job="job"') == 0
        queue.complete(held.dedup_key, "w")
        text = service_metrics.render_metrics(queue)
        assert metric_value(text, "repro_job_progress_ratio", 'job="job"') == pytest.approx(0.2)
        assert metric_value(text, "repro_queue_oldest_lease_age_seconds") == 0


class TestEventLog:
    def test_transitions_append_and_replay_to_terminal_state(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        policy = RetryPolicy(max_attempts=2, backoff_base=1.0, backoff_cap=1.0)
        queue.submit_job("job", {"t": 1}, priority=PRIORITY_HIGH)
        queue.enqueue("job", synthetic_entries(2), priority=PRIORITY_HIGH)
        first = queue.lease("w", ttl=10.0, max_attempts=2)
        queue.complete(first.dedup_key, "w", duration=0.1)
        second = queue.lease("w", ttl=10.0, max_attempts=2)
        queue.fail(second.dedup_key, "w", "boom", policy)
        clock.now += 2.0
        again = queue.lease("w", ttl=10.0, max_attempts=2)
        queue.fail(again.dedup_key, "w", "boom again", policy)
        queue.set_job_state("job", LeaseQueue.JOB_FAILED, error="quarantined")

        events = list(read_events(tmp_path / "events.jsonl"))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "job-submit" and kinds.count("enqueue") == 2
        assert "requeue" in kinds and "quarantine" in kinds
        # timestamps are non-decreasing in file order
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)

        final = replay(events)
        states = queue.item_states([key for key, _ in synthetic_entries(2)])
        for key, (state, _) in states.items():
            assert final["items"][key]["state"] == state
        assert final["jobs"]["job"]["state"] == LeaseQueue.JOB_FAILED
        assert final["jobs"]["job"]["priority"] == PRIORITY_HIGH

    def test_torn_lines_are_skipped_and_filters_apply(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        queue.submit_job("job", {"t": 1})
        clock.now = 2000.0
        queue.enqueue("job", synthetic_entries(1))
        log_path = tmp_path / "events.jsonl"
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 3000.0, "kind": "lea')  # torn mid-append
        assert [e["kind"] for e in read_events(log_path)] == ["job-submit", "enqueue"]
        assert [e["kind"] for e in read_events(log_path, since=1500.0)] == ["enqueue"]
        assert [e["kind"] for e in read_events(log_path, kinds=["enqueue"])] == ["enqueue"]

    def test_follow_events_streams_appended_lines(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.submit_job("job", {"t": 1})
        seen = []
        done = threading.Event()

        def tail() -> None:
            for event in follow_events(
                tmp_path / "events.jsonl",
                poll_interval=0.01,
                stop=lambda: done.is_set() and len(seen) >= 2,
            ):
                seen.append(event["kind"])
            # generator returns via stop()

        thread = threading.Thread(target=tail, daemon=True)
        thread.start()
        queue.enqueue("job", synthetic_entries(1))
        deadline = time.monotonic() + 10.0
        while len(seen) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        done.set()
        thread.join(timeout=10.0)
        assert seen[:2] == ["job-submit", "enqueue"]


class TestPriorityLanes:
    def test_high_job_submitted_behind_big_normal_job_leases_first(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.submit_job("big", {"t": 1})
        queue.enqueue("big", synthetic_entries(12))
        queue.submit_job("urgent", {"t": 2}, priority=PRIORITY_HIGH)
        queue.enqueue(
            "urgent", synthetic_entries(2, start=100), priority=PRIORITY_HIGH
        )
        first = queue.lease("w", ttl=10.0, max_attempts=3)
        second = queue.lease("w", ttl=10.0, max_attempts=3)
        assert {first.dedup_key, second.dedup_key} == {"item-0100", "item-0101"}

    def test_high_enqueue_upgrades_shared_pending_item(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        queue.enqueue("normal-job", synthetic_entries(1))
        queue.enqueue("high-job", synthetic_entries(1), priority=PRIORITY_HIGH)
        row = queue._conn().execute(
            "SELECT priority FROM items WHERE dedup_key = 'item-0000'"
        ).fetchone()
        assert row[0] == PRIORITY_HIGH

    def test_normal_lane_is_never_starved(self, tmp_path):
        # a continuous flood of high work: the normal lane must still get
        # one lease in every NORMAL_LANE_CREDIT + 1
        queue = LeaseQueue(tmp_path)
        queue.enqueue("n", synthetic_entries(4))
        queue.enqueue("h", synthetic_entries(60, start=1000), priority=PRIORITY_HIGH)
        lanes = []
        for _ in range(5 * (NORMAL_LANE_CREDIT + 1)):
            item = queue.lease("w", ttl=60.0, max_attempts=99)
            lanes.append("h" if item.dedup_key.startswith("item-1") else "n")
        assert lanes.count("n") == 4  # every normal item got through
        # and each was served within one credit window of the previous
        normal_positions = [i for i, lane in enumerate(lanes) if lane == "n"]
        assert normal_positions[0] <= NORMAL_LANE_CREDIT
        for before, after in zip(normal_positions, normal_positions[1:]):
            assert after - before <= NORMAL_LANE_CREDIT + 1

    def test_bounded_wait_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            n_high=st.integers(min_value=0, max_value=20),
            n_normal=st.integers(min_value=1, max_value=20),
        )
        def check(n_high: int, n_normal: int) -> None:
            with tempfile.TemporaryDirectory() as tmp:
                queue = LeaseQueue(Path(tmp))
                queue.enqueue("n", synthetic_entries(n_normal))
                queue.enqueue(
                    "h", synthetic_entries(n_high, start=1000), priority=PRIORITY_HIGH
                )
                lanes = []
                while (item := queue.lease("w", ttl=60.0, max_attempts=99)) is not None:
                    lanes.append("h" if item.dedup_key.startswith("item-1") else "n")
                assert len(lanes) == n_high + n_normal
                # bounded wait: while normal work was pending, no run of
                # consecutive high leases ever exceeded the credit
                normal_left = n_normal
                streak = 0
                for lane in lanes:
                    if lane == "n":
                        normal_left -= 1
                        streak = 0
                    else:
                        streak += 1
                        if normal_left > 0:
                            assert streak <= NORMAL_LANE_CREDIT

        check()


class TestQueueGC:
    def seeded_queue(self, tmp_path, clock):
        queue = LeaseQueue(tmp_path, clock=clock)
        queue.submit_job("old-done", {"t": 1})
        queue.enqueue("old-done", synthetic_entries(2))
        for _ in range(2):
            item = queue.lease("w", ttl=10.0, max_attempts=3)
            queue.complete(item.dedup_key, "w")
        queue.set_job_state("old-done", LeaseQueue.JOB_DONE)
        return queue

    def test_gc_reclaims_terminal_jobs_artifacts_and_orphans(self, tmp_path):
        clock = FakeClock()
        queue = self.seeded_queue(tmp_path, clock)
        artifacts = tmp_path / "artifacts" / "old-done"
        artifacts.mkdir(parents=True)
        (artifacts / "index.md").write_text("report", encoding="utf-8")
        manifests = tmp_path / "manifests"
        manifests.mkdir()
        (manifests / "run-old-done.json").write_text("{}", encoding="utf-8")

        clock.now += 100_000.0
        result = queue.gc(job_ttl=3600.0, keep_last=0)
        assert result["jobs"] == ["old-done"]
        assert sorted(result["items"]) == ["item-0000", "item-0001"]
        assert queue.job_record("old-done") is None
        assert queue.item_states(["item-0000", "item-0001"]) == {}
        assert not artifacts.exists()
        assert not (manifests / "run-old-done.json").exists()
        text = service_metrics.render_metrics(queue)
        assert metric_value(text, "repro_gc_jobs_removed_total") == 1
        assert metric_value(text, "repro_gc_items_removed_total") == 2

    def test_gc_never_touches_live_leased_or_recent_work(self, tmp_path):
        clock = FakeClock()
        queue = self.seeded_queue(tmp_path, clock)
        # a running job holding pending + leased items, sharing one done
        # item with the terminal job
        queue.submit_job("live", {"t": 2})
        queue.enqueue("live", synthetic_entries(3))  # item-0000/0001 shared, done
        queue.enqueue("live", synthetic_entries(2, start=10))
        leased = queue.lease("w", ttl=10_000.0, max_attempts=3)

        clock.now += 100_000.0
        result = queue.gc(job_ttl=3600.0, keep_last=0)
        # the terminal job goes; every item the live job references stays
        assert result["jobs"] == ["old-done"] and result["items"] == []
        states = queue.item_states(
            [key for key, _ in synthetic_entries(3)]
            + [key for key, _ in synthetic_entries(2, start=10)]
        )
        assert len(states) == 5
        assert states[leased.dedup_key][0] == LeaseQueue.ITEM_LEASED
        assert queue.job_record("live")["state"] == LeaseQueue.JOB_RUNNING

    def test_keep_last_and_ttl_are_both_safety_nets(self, tmp_path):
        clock = FakeClock()
        queue = LeaseQueue(tmp_path, clock=clock)
        for index in range(4):
            clock.now = 1000.0 + index  # distinct updated stamps
            queue.submit_job(f"job-{index}", {"i": index})
            queue.set_job_state(f"job-{index}", LeaseQueue.JOB_DONE)
        clock.now = 2000.0
        queue.submit_job("young", {"i": 9})
        queue.set_job_state("young", LeaseQueue.JOB_DONE)

        clock.now = 5000.0
        # ttl protects 'young'; keep_last protects the 2 newest of the rest
        result = queue.gc(job_ttl=3600.0, keep_last=3)
        assert result["jobs"] == ["job-0", "job-1"]
        survivors = {record["job_id"] for record in queue.list_jobs()}
        assert survivors == {"job-2", "job-3", "young"}
        # quarantine rows whose item is gone are dropped too
        assert queue.gc(job_ttl=0.0, keep_last=0)["jobs"] == ["job-2", "job-3", "young"]


# ------------------------------------------------------------------ #
# queue executor
# ------------------------------------------------------------------ #


class TestQueueExecutor:
    def test_rejects_stacked_groups_and_uncacheable_tasks(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        executor = QueueExecutor(queue, "job")
        [group] = plan_groups([make_task()])
        stacked = StackedGroup(key=("x",), groups=(group,))
        with pytest.raises(ValueError, match="seed-stacked"):
            executor.run_units([stacked], lambda batch: None)
        uncacheable = SweepTask(
            kind="scheme", target="trivial", graph=lambda n, seed: None, n=8, seed=0
        )
        bad = TaskGroup(key=None, indices=(0,), tasks=(uncacheable,))
        with pytest.raises(ValueError, match="cacheable"):
            executor.run_units([bad], lambda batch: None)

    def test_commits_done_items_and_raises_on_quarantine(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        store = SQLiteResultStore(tmp_path)
        good = plan_groups([make_task(seed=0)])[0]
        poison = plan_groups([make_task(seed=1)])[0]
        executor = QueueExecutor(queue, "job", poll_interval=0.01, store=store)

        def drain() -> None:
            # stand-in for a worker: execute the good group for real,
            # quarantine the poison one.  Like a real worker it opens
            # its own store — SQLite connections are thread-affine
            worker_store = SQLiteResultStore(tmp_path)
            deadline = time.monotonic() + 30.0
            served = 0
            while served < 2 and time.monotonic() < deadline:
                item = queue.lease("fake-worker", ttl=30.0, max_attempts=1)
                if item is None:
                    time.sleep(0.01)
                    continue
                good_key = group_dedup_key([t.task_hash() for t in good.tasks])
                if item.dedup_key == good_key:
                    context = InstanceContext()
                    worker_store.put_many(
                        [
                            (h, t.key_dict(), context.execute(t))
                            for h, t in zip(item.payload["hashes"], good.tasks)
                        ]
                    )
                    queue.complete(item.dedup_key, "fake-worker")
                else:
                    queue.fail(
                        item.dedup_key,
                        "fake-worker",
                        "synthetic poison",
                        RetryPolicy(max_attempts=1),
                    )
                served += 1

        committed = []
        thread = threading.Thread(target=drain, daemon=True)
        thread.start()
        with pytest.raises(QuarantinedTasksError, match="synthetic poison"):
            executor.run_units(
                [good, TaskGroup(key=poison.key, indices=(10,), tasks=poison.tasks)],
                committed.extend,
            )
        thread.join(timeout=30)
        # the good group was committed at its planner positions before
        # the quarantine surfaced — poison does not discard finished work
        assert sorted(index for index, _ in committed) == list(good.indices)
        assert all(row["correct"] for _, row in committed)


# ------------------------------------------------------------------ #
# worker behaviour
# ------------------------------------------------------------------ #


def enqueue_group(queue: LeaseQueue, job_id: str, tasks) -> str:
    [group] = plan_groups(list(tasks))
    hashes = [task.task_hash() for task in group.tasks]
    key = group_dedup_key(hashes)
    queue.enqueue(job_id, [(key, group_payload(group, hashes))])
    return key


class TestWorker:
    def test_worker_executes_and_commits(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        key = enqueue_group(queue, "job", [make_task(seed=0), make_task(seed=0, target="theorem3")])
        processed = run_worker(tmp_path, max_items=1, poll_interval=0.05)
        assert processed == 1
        assert queue.item_states([key])[key][0] == LeaseQueue.ITEM_DONE
        store = SQLiteResultStore(tmp_path)
        row = store.get(make_task(seed=0).task_hash())
        assert row is not None and row["correct"]

    def test_poison_payload_is_quarantined_not_retried_forever(self, tmp_path):
        queue = LeaseQueue(tmp_path)
        key = enqueue_group(queue, "job", [make_task()])
        # corrupt the stored payload: the worker child will fail to decode
        with queue._txn() as conn:
            conn.execute(
                "UPDATE items SET payload = ? WHERE dedup_key = ?",
                (json.dumps({"version": 1, "hashes": [], "tasks": [{"kind": "junk"}]}), key),
            )
        policy = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_cap=0.02)
        processed = run_worker(
            tmp_path, policy=policy, max_items=2, poll_interval=0.02
        )
        assert processed == 2
        state, error = queue.item_states([key])[key]
        assert state == LeaseQueue.ITEM_QUARANTINED
        assert "exited with code 1" in error

    def test_hung_execution_hits_wall_clock_timeout(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TEST_DELAY_ENV, "60")
        queue = LeaseQueue(tmp_path)
        key = enqueue_group(queue, "job", [make_task()])
        policy = RetryPolicy(max_attempts=1, task_timeout=0.3)
        start = time.monotonic()
        run_worker(tmp_path, policy=policy, max_items=1, poll_interval=0.02)
        assert time.monotonic() - start < 30.0  # killed, not joined for 60s
        state, error = queue.item_states([key])[key]
        assert state == LeaseQueue.ITEM_QUARANTINED
        assert "timed out" in error


# ------------------------------------------------------------------ #
# dead pool worker on the in-process --jobs path
# ------------------------------------------------------------------ #


class TestDeadPoolWorker:
    def test_jobs_pool_survives_a_killed_worker(self, tmp_path, monkeypatch, capfd):
        tasks = [make_task(seed=seed, target=target) for seed in range(4) for target in ("trivial", "theorem3")]
        reference = run_tasks(tasks)

        flag = tmp_path / "killed-once"
        original = InstanceContext.execute

        def kill_once(self, task):
            # first pool worker to get here nukes itself mid-chunk, once
            if not flag.exists():
                try:
                    flag.touch(exist_ok=False)
                except FileExistsError:
                    pass
                else:
                    os.kill(os.getpid(), signal.SIGKILL)
            return original(self, task)

        monkeypatch.setattr(InstanceContext, "execute", kill_once)
        rows = run_tasks(tasks, jobs=2)
        assert flag.exists()  # the kill really happened
        assert rows == reference
        assert "worker process died" in capfd.readouterr().err

    def test_chunk_lost_twice_raises_instead_of_spinning(self, tmp_path, monkeypatch):
        tasks = [make_task(seed=seed) for seed in range(2)]

        def always_kill(self, task):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(InstanceContext, "execute", always_kill)
        with pytest.raises(RuntimeError, match="died twice"):
            run_tasks(tasks, jobs=2)


# ------------------------------------------------------------------ #
# the chaos test: SIGKILL a real worker mid-sweep
# ------------------------------------------------------------------ #


def spawn_test_worker(queue_dir: Path, lease_ttl: float, delay: float) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env[TEST_DELAY_ENV] = str(delay)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--queue-dir",
            str(queue_dir),
            "--lease-ttl",
            str(lease_ttl),
            "--poll-interval",
            "0.1",
            "--max-attempts",
            "3",
            "--backoff-base",
            "0.05",
            "--backoff-cap",
            "0.2",
        ],
        env=env,
        stderr=subprocess.DEVNULL,
    )


class TestChaos:
    def test_sigkilled_worker_mid_sweep_job_still_byte_identical(self, tmp_path):
        spec = parse_spec_text(CHAOS_SPEC, fmt="toml", source="chaos.toml")
        serial_dir = tmp_path / "serial"
        generate_report(spec, serial_dir)

        queue_dir = tmp_path / "svc"
        lease_ttl = 2.0
        service = SweepService(queue_dir, lease_ttl=lease_ttl, poll_interval=0.1)
        job_id, created = service.submit_text(CHAOS_SPEC, "toml", name="chaos.toml")
        assert created

        workers = [spawn_test_worker(queue_dir, lease_ttl, delay=0.5) for _ in range(2)]
        victim, survivor = workers
        try:
            # wait until the victim provably holds a lease, then SIGKILL it
            victim_owner_suffix = f":{victim.pid}"
            deadline = time.monotonic() + 60.0
            held = False
            while time.monotonic() < deadline:
                owners = [
                    owner
                    for (owner,) in service.queue._conn().execute(
                        "SELECT owner FROM items WHERE state = 'leased'"
                    )
                ]
                if any(owner.endswith(victim_owner_suffix) for owner in owners):
                    held = True
                    break
                time.sleep(0.05)
            assert held, "victim worker never leased an item"
            victim.kill()
            victim.wait()

            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                record = service.queue.job_record(job_id)
                if record["state"] != LeaseQueue.JOB_RUNNING:
                    break
                time.sleep(0.25)
            assert record["state"] == LeaseQueue.JOB_DONE, record["error"]
        finally:
            for proc in workers:
                proc.kill()
                proc.wait()

        # nothing ran more than its attempt budget
        attempts = [
            count
            for (count,) in service.queue._conn().execute("SELECT attempts FROM items")
        ]
        assert attempts and all(1 <= count <= 3 for count in attempts)

        # byte-identity: the chaos-ridden service run == the serial run
        service_dir = service.artifacts_dir(job_id)
        serial_files = sorted(path.name for path in serial_dir.iterdir())
        service_files = sorted(path.name for path in service_dir.iterdir())
        assert service_files == serial_files
        for name in serial_files:
            assert (service_dir / name).read_bytes() == (serial_dir / name).read_bytes(), name

        # the metrics scrape agrees with the final queue state
        text = service_metrics.render_metrics(service.queue)
        stats = service.queue.stats()
        done_items = stats["items"].get(LeaseQueue.ITEM_DONE, 0)
        assert done_items == sum(
            metric_value(text, "repro_queue_items", f'state="done",priority="{lane}"')
            for lane in ("high", "normal")
        )
        assert metric_value(text, "repro_queue_jobs", 'state="done"') == 1
        assert metric_value(text, "repro_queue_completes_total") == done_items
        assert metric_value(text, "repro_queue_leases_total") == sum(attempts)
        # the SIGKILL showed up as at least one expired-lease takeover
        assert metric_value(text, "repro_queue_lease_expired_total") >= 1
        assert metric_value(text, "repro_item_seconds_count") >= done_items

        # the event log replays to the same terminal state (an append may
        # be lost at the SIGKILL instant; replay folds what landed, and
        # every completion is reported by a surviving worker afterwards)
        final = replay(read_events(queue_dir / "events.jsonl"))
        assert final["jobs"][job_id]["state"] == LeaseQueue.JOB_DONE
        states = {
            key: state
            for key, (state, _) in service.queue.item_states(
                list(final["items"])
            ).items()
        }
        assert len(final["items"]) == len(attempts)
        for key, folded in final["items"].items():
            assert folded["state"] == states[key] == LeaseQueue.ITEM_DONE


# ------------------------------------------------------------------ #
# daemon-level behaviour (in process, no HTTP)
# ------------------------------------------------------------------ #


class TestSweepServiceDrainAndResume:
    def test_drain_parks_job_and_restart_resumes_it(self, tmp_path):
        queue_dir = tmp_path / "svc"
        service = SweepService(queue_dir, lease_ttl=5.0, poll_interval=0.05)
        job_id, _ = service.submit_text(CHAOS_SPEC, "toml", name="chaos.toml")
        # drain immediately: no worker ever attached, nothing executed
        service.drain(timeout=30.0)
        assert service.queue.job_record(job_id)["state"] == LeaseQueue.JOB_RUNNING

        # "restart": a fresh service over the same directory resumes the
        # parked job, and an in-process worker drains the queue
        service2 = SweepService(queue_dir, lease_ttl=5.0, poll_interval=0.05)
        assert service2.resume_running_jobs() == [job_id]
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=queue_dir, idle_exit=5.0, poll_interval=0.05),
            daemon=True,
        )
        worker.start()
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            record = service2.queue.job_record(job_id)
            if record["state"] != LeaseQueue.JOB_RUNNING:
                break
            time.sleep(0.25)
        assert record["state"] == LeaseQueue.JOB_DONE, record["error"]
        worker.join(timeout=30)
        assert (service2.artifacts_dir(job_id) / "index.md").is_file()

    def test_identical_submissions_collapse(self, tmp_path):
        service = SweepService(tmp_path / "svc")
        job_a, created_a = service.submit_text(CHAOS_SPEC, "toml")
        job_b, created_b = service.submit_text(CHAOS_SPEC, "toml")
        assert job_a == job_b
        assert created_a and not created_b
        assert len(service.queue.list_jobs()) == 1

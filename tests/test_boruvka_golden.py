"""Golden-trace regression and MST tie-breaking equivalence.

The Borůvka kernel was vectorised (segmented NumPy reductions replacing
the per-phase Python scan of the canonical edge order); its contract is
that :class:`~repro.mst.boruvka.BoruvkaTrace` stays **byte-identical**
to the historical per-fragment implementation.  Two enforcement layers:

* the ``GOLDEN`` fingerprints below were captured from the original
  (pre-vectorisation) kernel on three fixed instances and pin every
  selection field, partition, fragment tree and phase structure;
* a straightforward per-phase reference Borůvka (a transliteration of
  the historical loop) is compared against Kruskal, Prim and both
  vectorised entry points on adversarial instances: many equal-weight
  edges, duplicated node identifiers, and permuted ports.
"""

from repro.graphs.generators import cycle_graph, grid_graph, random_connected_graph
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import boruvka_mst, boruvka_trace
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.union_find import UnionFind

# captured from the pre-vectorisation kernel; regenerate only if the
# *specified* trace semantics change, never for a performance refactor
GOLDEN = {
  'random_n24_s3': {'root': 2, 'tree_edges': (0, 2, 3, 7, 9, 13, 14, 15, 16, 19, 20, 21, 24, 25, 27, 30, 32, 36, 42, 45, 46, 48, 51), 'parent': (1, 2, -1, 7, 0, 9, 1, 4, 6, 7, 0, 17, 4, 5, 8, 7, 4, 2, 12, 13, 23, 2, 15, 2), 'phases': ({'index': 1, 'fragment_of': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23), 'active': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23), 'selected_edge_ids': (0, 3, 7, 14, 16, 20, 21, 24, 27, 30, 36, 42, 45, 46, 48, 51), 'ftree_parent': (1, 2, -1, 7, 0, 9, 1, 4, 6, 7, 0, 17, 4, 5, 8, 7, 4, 2, 12, 13, 23, 2, 15, 2), 'ftree_depth': (2, 1, 0, 5, 3, 6, 2, 4, 3, 5, 3, 2, 4, 7, 4, 5, 4, 1, 5, 8, 2, 1, 6, 1), 'selections': ((1, 0, 1, 0, 0, 5, 4.0, 1, (1, 1), True, 1, 1, 0, 1, 1), (1, 1, 1, 1, 0, 1, 4.0, 1, (1, 1), False, 0, 0, 1, 0, 1), (1, 2, 1, 2, 7, 1, 5.0, 1, (1, 1), False, 1, 1, 0, 1, 1), (1, 3, 1, 3, 16, 0, 31.0, 1, (1, 1), True, 7, 7, 1, 0, 1), (1, 4, 1, 4, 21, 3, 10.0, 1, (1, 1), False, 16, 16, 1, 0, 1), (1, 5, 1, 5, 24, 4, 26.0, 1, (1, 1), True, 9, 9, 0, 1, 1), (1, 6, 1, 6, 27, 1, 19.0, 1, (1, 1), False, 8, 8, 0, 1, 1), (1, 7, 1, 7, 30, 5, 6.0, 1, (1, 1), False, 9, 9, 0, 1, 1), (1, 8, 1, 8, 36, 3, 1.0, 1, (1, 1), False, 14, 14, 1, 0, 1), (1, 9, 1, 9, 30, 1, 6.0, 1, (1, 1), True, 7, 7, 1, 0, 1), (1, 10, 1, 10, 3, 2, 11.0, 1, (1, 1), True, 0, 0, 1, 0, 1), (1, 11, 1, 11, 42, 0, 7.0, 1, (1, 1), True, 17, 17, 0, 1, 1), (1, 12, 1, 12, 20, 2, 14.0, 1, (1, 1), True, 4, 4, 0, 1, 1), (1, 13, 1, 13, 46, 0, 22.0, 1, (1, 1), False, 19, 19, 1, 0, 1), (1, 14, 1, 14, 36, 1, 1.0, 1, (1, 1), True, 8, 8, 0, 1, 1), (1, 15, 1, 15, 48, 0, 2.0, 1, (1, 1), False, 22, 22, 1, 0, 1), (1, 16, 1, 16, 21, 0, 10.0, 1, (1, 1), True, 4, 4, 0, 1, 1), (1, 17, 1, 17, 42, 1, 7.0, 1, (1, 1), False, 11, 11, 1, 0, 1), (1, 18, 1, 18, 45, 0, 23.0, 1, (1, 1), True, 12, 12, 1, 0, 1), (1, 19, 1, 19, 46, 2, 22.0, 1, (1, 1), True, 13, 13, 0, 1, 1), (1, 20, 1, 20, 51, 1, 3.0, 1, (1, 1), True, 23, 23, 0, 1, 1), (1, 21, 1, 21, 14, 2, 8.0, 1, (1, 1), True, 2, 2, 1, 0, 1), (1, 22, 1, 22, 48, 1, 2.0, 1, (1, 1), True, 15, 15, 0, 1, 1), (1, 23, 1, 23, 51, 0, 3.0, 1, (1, 1), False, 20, 20, 1, 0, 1))}, {'index': 2, 'fragment_of': (0, 0, 0, 1, 2, 1, 3, 1, 3, 1, 0, 4, 2, 5, 3, 6, 2, 4, 2, 5, 7, 0, 6, 7), 'active': (3, 4, 5, 6, 7), 'selected_edge_ids': (9, 13, 15, 25, 32), 'ftree_parent': (-1, 2, 0, 0, 0, 1, 1, 0), 'ftree_depth': (0, 2, 1, 1, 1, 3, 3, 1), 'selections': ((2, 3, 3, 6, 9, 3, 21.0, 2, (2, 1), True, 1, 0, 1, 0, 1), (2, 4, 2, 17, 13, 3, 9.0, 2, (2, 1), True, 2, 0, 1, 0, 1), (2, 5, 2, 13, 25, 1, 27.0, 2, (2, 1), True, 5, 1, 1, 0, 1), (2, 6, 2, 15, 32, 1, 17.0, 2, (2, 1), True, 7, 1, 1, 0, 1), (2, 7, 2, 23, 15, 4, 12.0, 2, (2, 1), True, 2, 0, 1, 0, 1))}, {'index': 3, 'fragment_of': (0, 0, 0, 1, 2, 1, 0, 1, 0, 1, 0, 0, 2, 1, 0, 1, 2, 0, 2, 1, 0, 0, 1, 0), 'active': (2,), 'selected_edge_ids': (19,), 'ftree_parent': (-1, 2, 0), 'ftree_depth': (0, 2, 1), 'selections': ((3, 2, 4, 4, 19, 0, 15.0, 3, (3, 1), False, 7, 1, 1, 0, 1),)}, {'index': 4, 'fragment_of': (0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 0), 'active': (0, 1), 'selected_edge_ids': (2,), 'ftree_parent': (-1, 0), 'ftree_depth': (0, 1), 'selections': ((4, 0, 12, 0, 2, 6, 16.0, 4, (4, 1), False, 4, 1, 0, 1, 3), (4, 1, 12, 4, 2, 1, 16.0, 4, (4, 1), True, 0, 0, 1, 0, 1))})},
  'grid_4x4': {'root': 0, 'tree_edges': (0, 2, 3, 4, 7, 10, 12, 13, 14, 15, 16, 17, 18, 20, 22), 'parent': (-1, 0, 1, 2, 5, 1, 10, 11, 9, 5, 9, 10, 8, 9, 13, 11), 'phases': ({'index': 1, 'fragment_of': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15), 'active': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15), 'selected_edge_ids': (0, 2, 4, 7, 10, 12, 13, 14, 15, 16, 17, 20, 22), 'ftree_parent': (-1, 0, 1, 2, 5, 1, 10, 11, 9, 5, 9, 10, 8, 9, 13, 11), 'ftree_depth': (0, 1, 2, 3, 3, 2, 5, 6, 4, 3, 4, 5, 5, 4, 5, 6), 'selections': ((1, 0, 1, 0, 0, 0, 2.0, 1, (1, 1), False, 1, 1, 0, 1, 1), (1, 1, 1, 1, 0, 0, 2.0, 1, (1, 1), True, 0, 0, 1, 0, 1), (1, 2, 1, 2, 2, 0, 8.0, 1, (1, 1), True, 1, 1, 0, 1, 1), (1, 3, 1, 3, 4, 0, 17.0, 1, (1, 1), True, 2, 2, 1, 0, 1), (1, 4, 1, 4, 7, 1, 16.0, 1, (1, 1), True, 5, 5, 1, 0, 1), (1, 5, 1, 5, 10, 3, 3.0, 1, (1, 1), False, 9, 9, 0, 1, 1), (1, 6, 1, 6, 12, 3, 11.0, 1, (1, 1), True, 10, 10, 1, 0, 1), (1, 7, 1, 7, 13, 2, 4.0, 1, (1, 1), True, 11, 11, 0, 1, 1), (1, 8, 1, 8, 14, 1, 5.0, 1, (1, 1), True, 9, 9, 0, 1, 1), (1, 9, 1, 9, 17, 3, 1.0, 1, (1, 1), False, 13, 13, 1, 0, 1), (1, 10, 1, 10, 16, 1, 9.0, 1, (1, 1), True, 9, 9, 0, 1, 1), (1, 11, 1, 11, 13, 0, 4.0, 1, (1, 1), False, 7, 7, 1, 0, 1), (1, 12, 1, 12, 15, 0, 6.0, 1, (1, 1), True, 8, 8, 1, 0, 1), (1, 13, 1, 13, 17, 0, 1.0, 1, (1, 1), True, 9, 9, 0, 1, 1), (1, 14, 1, 14, 22, 1, 7.0, 1, (1, 1), True, 13, 13, 1, 0, 1), (1, 15, 1, 15, 20, 0, 19.0, 1, (1, 1), True, 11, 11, 0, 1, 1))}, {'index': 2, 'fragment_of': (0, 0, 0, 0, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2), 'active': (2,), 'selected_edge_ids': (18,), 'ftree_parent': (-1, 0, 1), 'ftree_depth': (0, 1, 2), 'selections': ((2, 2, 3, 11, 18, 1, 10.0, 2, (2, 1), True, 10, 1, 0, 1, 1),)}, {'index': 3, 'fragment_of': (0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1), 'active': (0,), 'selected_edge_ids': (3,), 'ftree_parent': (-1, 0), 'ftree_depth': (0, 1), 'selections': ((3, 0, 4, 1, 3, 2, 18.0, 3, (3, 1), False, 5, 1, 0, 1, 2),)})},
  'cycle_13': {'root': 0, 'tree_edges': (0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12), 'parent': (-1, 0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 0), 'phases': ({'index': 1, 'fragment_of': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12), 'active': (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12), 'selected_edge_ids': (0, 2, 3, 4, 5, 7, 8, 9, 10, 12), 'ftree_parent': (-1, 0, 1, 2, 3, 4, 5, 8, 9, 10, 11, 12, 0), 'ftree_depth': (0, 1, 2, 3, 4, 5, 6, 6, 5, 4, 3, 2, 1), 'selections': ((1, 0, 1, 0, 12, 1, 2.0, 1, (1, 1), False, 12, 12, 0, 1, 1), (1, 1, 1, 1, 0, 0, 3.0, 1, (1, 1), True, 0, 0, 1, 0, 1), (1, 2, 1, 2, 2, 1, 8.0, 1, (1, 1), False, 3, 3, 0, 1, 1), (1, 3, 1, 3, 3, 1, 1.0, 1, (1, 1), False, 4, 4, 1, 0, 1), (1, 4, 1, 4, 3, 0, 1.0, 1, (1, 1), True, 3, 3, 0, 1, 1), (1, 5, 1, 5, 4, 0, 7.0, 1, (1, 1), True, 4, 4, 1, 0, 1), (1, 6, 1, 6, 5, 0, 10.0, 1, (1, 1), True, 5, 5, 0, 1, 1), (1, 7, 1, 7, 7, 1, 12.0, 1, (1, 1), True, 8, 8, 0, 1, 1), (1, 8, 1, 8, 8, 1, 6.0, 1, (1, 1), True, 9, 9, 1, 0, 1), (1, 9, 1, 9, 9, 1, 4.0, 1, (1, 1), True, 10, 10, 0, 1, 1), (1, 10, 1, 10, 9, 0, 4.0, 1, (1, 1), False, 9, 9, 1, 0, 1), (1, 11, 1, 11, 10, 0, 5.0, 1, (1, 1), False, 10, 10, 0, 1, 1), (1, 12, 1, 12, 12, 1, 2.0, 1, (1, 1), True, 0, 0, 1, 0, 1))}, {'index': 2, 'fragment_of': (0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 0), 'active': (0,), 'selected_edge_ids': (11,), 'ftree_parent': (-1, 0, 0), 'ftree_depth': (0, 1, 1), 'selections': ((2, 0, 3, 12, 11, 0, 9.0, 2, (2, 1), False, 11, 2, 0, 1, 2),)}, {'index': 3, 'fragment_of': (0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0), 'active': (1,), 'selected_edge_ids': (1,), 'ftree_parent': (-1, 0), 'ftree_depth': (0, 1), 'selections': ((3, 1, 5, 2, 1, 0, 11.0, 2, (2, 1), True, 1, 0, 1, 0, 1),)})},
}
GOLDEN_MST = {
  'random_n24_s3': [0, 2, 3, 7, 9, 13, 14, 15, 16, 19, 20, 21, 24, 25, 27, 30, 32, 36, 42, 45, 46, 48, 51],
  'grid_4x4': [0, 2, 3, 4, 7, 10, 12, 13, 14, 15, 16, 17, 18, 20, 22],
  'cycle_13': [0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12],
}


def _fingerprint(trace):
    phases = []
    for ph in trace.phases:
        phases.append({
            "index": ph.index,
            "fragment_of": tuple(ph.partition.fragment_of),
            "active": ph.active,
            "selected_edge_ids": ph.selected_edge_ids,
            "ftree_parent": ph.fragment_tree.parent_fragment,
            "ftree_depth": ph.fragment_tree.depth,
            "selections": tuple(
                (s.phase, s.fragment, s.fragment_size, s.choosing_node, s.selected_edge,
                 s.port_at_choosing, s.weight, s.rank_at_choosing, s.index_pair, s.is_up,
                 s.target_node, s.target_fragment, s.level_of_fragment,
                 s.level_of_target_fragment, s.choosing_dfs_index)
                for s in ph.selections),
        })
    return {
        "root": trace.root,
        "tree_edges": tuple(trace.tree.edge_ids),
        "parent": tuple(trace.tree.parent),
        "phases": tuple(phases),
    }


def _cases():
    return {
        "random_n24_s3": (random_connected_graph(24, 0.15, seed=3), 2),
        "grid_4x4": (grid_graph(4, 4, seed=1), 0),
        "cycle_13": (cycle_graph(13, seed=2), 0),
    }


def test_trace_is_byte_identical_to_golden():
    for name, (graph, root) in _cases().items():
        assert _fingerprint(boruvka_trace(graph, root=root)) == GOLDEN[name], name


def test_mst_is_byte_identical_to_golden():
    for name, (graph, _root) in _cases().items():
        assert boruvka_mst(graph) == GOLDEN_MST[name], name


# --------------------------------------------------------------------- #
# tie-breaking equivalence on adversarial instances
# --------------------------------------------------------------------- #


def _reference_boruvka(graph):
    """The historical per-phase scan, kept as an executable specification."""
    import numpy as np

    uf = UnionFind(graph.n)
    tree = set()
    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    while uf.component_count > 1:
        best = {}
        for eid in order:
            eid = int(eid)
            ru = uf.find(int(graph.edge_u[eid]))
            rv = uf.find(int(graph.edge_v[eid]))
            if ru == rv:
                continue
            if ru not in best:
                best[ru] = eid
            if rv not in best:
                best[rv] = eid
        for eid in best.values():
            if uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid])):
                tree.add(eid)
    return sorted(tree)


def _equal_weight_graph(n, seed, weights=(1.0, 2.0), duplicate_ids=False):
    import random

    rng = random.Random(seed)
    edges = [(i, i + 1, rng.choice(weights)) for i in range(n - 1)]
    seen = {(min(u, v), max(u, v)) for u, v, _ in edges}
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        key = (min(u, v), max(u, v))
        if u != v and key not in seen:
            seen.add(key)
            edges.append((u, v, rng.choice(weights)))
    node_ids = [7] * n if duplicate_ids else None  # IDs need not be unique
    return PortNumberedGraph(n, edges, node_ids=node_ids)


def test_tiebreaking_equivalence_with_duplicate_weights():
    for seed in range(5):
        for n in (8, 21, 40):
            graph = _equal_weight_graph(n, seed, duplicate_ids=(seed % 2 == 0))
            reference = _reference_boruvka(graph)
            assert kruskal_mst(graph) == reference
            assert prim_mst(graph) == reference
            assert boruvka_mst(graph) == reference
            assert boruvka_trace(graph).mst_edge_ids() == reference


def test_tiebreaking_equivalence_all_weights_equal():
    # the hardest case: every edge weighs the same, so only the edge-id
    # tie-break decides; all algorithms must agree on one reference tree
    graph = _equal_weight_graph(24, seed=9, weights=(1.0,), duplicate_ids=True)
    reference = _reference_boruvka(graph)
    assert kruskal_mst(graph) == reference
    assert prim_mst(graph) == reference
    assert boruvka_mst(graph) == reference
    assert boruvka_trace(graph).mst_edge_ids() == reference


def test_tiebreaking_stable_under_port_relabelling():
    # port numbers must not influence the reference MST (the canonical
    # order is (weight, edge id), not (weight, port))
    graph = _equal_weight_graph(16, seed=4)
    relabelled = graph.relabel_ports(
        {u: list(reversed(range(graph.degree(u)))) for u in range(graph.n)}
    )
    assert boruvka_mst(relabelled) == boruvka_mst(graph)
    assert kruskal_mst(relabelled) == kruskal_mst(graph)


def test_selection_order_is_deterministic():
    # FragmentSelection records appear sorted by union-find representative,
    # twice the same run gives identical phases object-for-object
    graph, root = _cases()["random_n24_s3"]
    a = _fingerprint(boruvka_trace(graph, root=root))
    b = _fingerprint(boruvka_trace(graph, root=root))
    assert a == b

"""Tests of distributed-output verification and advice accounting."""

import pytest

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitString
from repro.core.verification import check_outputs
from repro.graphs.generators import path_graph, random_connected_graph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree


class TestCheckOutputs:
    def _good_outputs(self, g, root=0):
        tree = build_rooted_tree(g, kruskal_mst(g), root=root)
        return tree.expected_outputs()

    def test_accepts_correct_outputs(self):
        g = random_connected_graph(25, 0.15, seed=1)
        outputs = self._good_outputs(g, root=3)
        check = check_outputs(g, outputs, expected_root=3)
        assert check.ok and check.root == 3
        assert len(check.tree_edge_ids) == g.n - 1
        assert abs(check.tree_weight - check.mst_weight) < 1e-9

    def test_rejects_missing_outputs(self):
        g = path_graph(4, seed=0)
        outputs = self._good_outputs(g)
        del outputs[2]
        assert not check_outputs(g, outputs).ok
        outputs = self._good_outputs(g)
        outputs[2] = None
        assert not check_outputs(g, outputs).ok

    def test_rejects_wrong_root_count(self):
        g = path_graph(4, seed=0)
        outputs = self._good_outputs(g)
        outputs[2] = ROOT_OUTPUT  # two roots now
        assert "root" in check_outputs(g, outputs).reason
        outputs = self._good_outputs(g)
        outputs[0] = 0  # no root at all
        assert not check_outputs(g, outputs).ok

    def test_rejects_unexpected_root(self):
        g = path_graph(4, seed=0)
        outputs = self._good_outputs(g, root=0)
        assert not check_outputs(g, outputs, expected_root=2).ok

    def test_rejects_invalid_port(self):
        g = path_graph(4, seed=0)
        outputs = self._good_outputs(g)
        outputs[1] = 9
        assert "invalid port" in check_outputs(g, outputs).reason

    def test_rejects_parent_cycle(self):
        g = path_graph(4, seed=0)
        outputs = self._good_outputs(g, root=0)
        # make nodes 2 and 3 point at each other: a 2-cycle detached from the root
        outputs[2] = [p for p in g.ports(2) if g.neighbor(2, p) == 3][0]
        outputs[3] = [p for p in g.ports(3) if g.neighbor(3, p) == 2][0]
        check = check_outputs(g, outputs)
        assert not check.ok

    def test_rejects_non_minimum_tree(self):
        # a square where one heavy edge must never be used
        from repro.graphs.weighted_graph import PortNumberedGraph

        g = PortNumberedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)])
        outputs = {0: ROOT_OUTPUT}
        # chain 3 -> 0 over the heavy edge, 2 -> 3, 1 -> 2: a spanning tree, not minimal
        outputs[3] = [p for p in g.ports(3) if g.neighbor(3, p) == 0][0]
        outputs[2] = [p for p in g.ports(2) if g.neighbor(2, p) == 3][0]
        outputs[1] = [p for p in g.ports(1) if g.neighbor(1, p) == 2][0]
        check = check_outputs(g, outputs)
        assert not check.ok
        assert "weight" in check.reason

    def test_single_node_graph(self):
        from repro.graphs.weighted_graph import PortNumberedGraph

        g = PortNumberedGraph(1, [])
        assert check_outputs(g, {0: ROOT_OUTPUT}).ok


class TestAdviceAssignment:
    def test_stats(self):
        advice = AdviceAssignment(4)
        advice.set(0, BitString([1, 0, 1]))
        advice.set(2, BitString([1]))
        stats = advice.stats()
        assert stats.max_bits == 3
        assert stats.total_bits == 4
        assert stats.average_bits == 1.0
        assert stats.nodes_with_advice == 2
        assert stats.as_dict()["max_bits"] == 3

    def test_get_default_empty(self):
        advice = AdviceAssignment(3)
        assert advice.get(1) == BitString.empty()
        assert advice.bits_of(1) == 0

    def test_append(self):
        advice = AdviceAssignment(2)
        advice.append(0, BitString([1]))
        advice.append(0, BitString([0, 1]))
        assert advice.get(0) == BitString([1, 0, 1])

    def test_payloads_and_iter(self):
        advice = AdviceAssignment(2)
        advice.set(1, BitString([1]))
        assert advice.as_payloads() == {0: BitString.empty(), 1: BitString([1])}
        assert [node for node, _ in advice] == [0, 1]

    def test_node_range_checks(self):
        advice = AdviceAssignment(2)
        with pytest.raises(ValueError):
            advice.set(5, BitString([1]))
        with pytest.raises(ValueError):
            AdviceAssignment(0)

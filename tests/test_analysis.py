"""Tests of the analysis layer: tables, sweeps and the trade-off report."""

import json

import pytest

from repro.analysis.sweep import default_graph_factory, run_baseline_sweep, run_scheme_sweep
from repro.analysis.tables import format_markdown_table, format_table
from repro.analysis.tradeoff import theoretical_tradeoff_rows, tradeoff_rows
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.distributed.full_info import FullInformationMST
from repro.graphs.generators import random_connected_graph


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in lines[-1] and "-" in lines[-1]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_markdown_table(self):
        rows = [{"n": 8, "value": 1.25}]
        text = format_markdown_table(rows)
        assert text.startswith("| n | value |")
        assert "| 8 | 1.25 |" in text
        assert format_markdown_table([]) == "(no rows)"

    def test_rows_are_json_serialisable(self):
        graph = random_connected_graph(20, 0.1, seed=1)
        rows = tradeoff_rows(graph, include_baselines=False, include_level_variant=False)
        json.dumps(rows)  # must not raise


class TestSweeps:
    def test_scheme_sweep_shapes(self):
        result = run_scheme_sweep(
            TrivialRankScheme(),
            sizes=(8, 16, 32),
            graph_factory=default_graph_factory(0.1),
            seeds=(0, 1),
        )
        assert len(result.rows) == 3
        assert result.series("n") == [8, 16, 32]
        assert all(result.series("correct"))
        assert all(r == 0 for r in result.series("rounds"))
        assert "trivial-rank" in result.to_text()

    def test_main_scheme_sweep_constant_advice(self):
        result = run_scheme_sweep(
            ShortAdviceScheme(), sizes=(16, 64), seeds=(0,), graph_factory=default_graph_factory(0.1)
        )
        assert all(result.series("correct"))
        advice = result.series("max_advice_bits")
        assert advice[-1] <= ShortAdviceScheme().advice_bound_bits(64)

    def test_baseline_sweep(self):
        result = run_baseline_sweep(
            FullInformationMST(), sizes=(8, 16), seeds=(0,), graph_factory=default_graph_factory(0.2)
        )
        assert all(result.series("correct"))
        assert all(r > 0 for r in result.series("rounds"))
        assert all(r["max_advice_bits"] == 0 for r in result.rows)


class TestTradeoff:
    def test_measured_rows_cover_all_schemes(self):
        graph = random_connected_graph(30, 0.1, seed=2)
        rows = tradeoff_rows(graph, include_baselines=True, include_level_variant=True)
        names = [r["scheme"] for r in rows]
        assert names == [
            "trivial-rank",
            "theorem2-average",
            "theorem3-main",
            "theorem3-level",
            "local-full-info",
            "sync-boruvka",
        ]
        assert all(r["correct"] for r in rows)

    def test_measured_rows_reproduce_the_tradeoff_shape(self):
        graph = random_connected_graph(40, 0.08, seed=3)
        rows = {r["scheme"]: r for r in tradeoff_rows(graph, include_level_variant=False)}
        assert rows["trivial-rank"]["rounds"] == 0
        assert rows["theorem2-average"]["rounds"] == 1
        assert rows["theorem3-main"]["rounds"] > 1
        assert rows["theorem3-main"]["rounds"] < rows["sync-boruvka"]["rounds"]
        assert rows["theorem3-main"]["max_advice_bits"] < rows["trivial-rank"]["max_advice_bits"] * 4

    def test_theoretical_rows(self):
        rows = theoretical_tradeoff_rows(1024)
        assert len(rows) == 5
        assert rows[2]["max_advice_bits"] == 10  # trivial scheme at n = 1024
        assert rows[4]["rounds"].endswith(str(9 * 10))

"""Tests of the seed-stacked execution tier (``grouping="seed-stack"``).

The contract is byte-identity: stacking all seeds of a sweep point
through one batched generation / trace / advice pass must produce
exactly the rows the per-instance path produces — sharing is observable
only as speed.  The matrix below exercises every scheme plus the
baselines over three graph families and three stack widths.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.generators import random_connected_graph, random_connected_graph_batch
from repro.runner import (
    ExecutionStats,
    GraphSpec,
    SweepTask,
    plan_groups,
    run_tasks,
)
from repro.runner.plan import StackedGroup, plan_super_groups
from repro.runner.registry import build_graph

SCHEMES = ("trivial", "theorem2", "theorem3", "theorem3-level")
BASELINES = ("ghs", "full-info")


def _point_tasks(family, num_seeds, n=16, backend="analytic", density=0.2):
    """Every scheme and baseline of one sweep point over ``num_seeds`` seeds."""
    tasks = [
        SweepTask("scheme", target, GraphSpec(family, density), n, seed, backend=backend)
        for seed in range(num_seeds)
        for target in SCHEMES
    ]
    tasks += [
        SweepTask("baseline", name, GraphSpec(family, density), n, seed)
        for seed in range(num_seeds)
        for name in BASELINES
    ]
    return tasks


class TestSeedStackByteIdentity:
    @pytest.mark.parametrize("family", ["random", "powerlaw", "hypercube"])
    @pytest.mark.parametrize("num_seeds", [1, 5, 16])
    def test_stacked_rows_equal_instance_rows(self, family, num_seeds):
        tasks = _point_tasks(family, num_seeds)
        stacked = run_tasks(tasks, grouping="seed-stack")
        grouped = run_tasks(tasks, grouping="instance")
        assert json.dumps(stacked) == json.dumps(grouped)

    def test_engine_backend_rows_are_identical_too(self):
        # the stacked tier shares traces and advice with the engine
        # backend as well; rounds/messages must not shift by a bit
        tasks = _point_tasks("random", 4, n=12, backend="engine")
        stacked = run_tasks(tasks, grouping="seed-stack")
        grouped = run_tasks(tasks, grouping="instance")
        assert json.dumps(stacked) == json.dumps(grouped)

    def test_parallel_seed_stack_is_identical(self):
        tasks = _point_tasks("random", 6, n=12)
        serial = run_tasks(tasks, grouping="seed-stack")
        parallel = run_tasks(tasks, jobs=2, grouping="seed-stack")
        assert json.dumps(serial) == json.dumps(parallel)

    def test_heterogeneous_grid_mixes_stacks_and_plain_groups(self):
        # two sizes: each size's seeds stack among themselves only
        tasks = [
            SweepTask("scheme", "theorem3", GraphSpec("random", 0.2), n, seed)
            for n in (12, 20)
            for seed in (0, 1, 2)
        ]
        stacked = run_tasks(tasks, grouping="seed-stack")
        grouped = run_tasks(tasks, grouping="instance")
        assert json.dumps(stacked) == json.dumps(grouped)


class TestPlanSuperGroups:
    def test_seeds_of_one_point_collapse_into_one_stack(self):
        tasks = _point_tasks("random", 5)
        groups = plan_groups(tasks)
        units = plan_super_groups(groups)
        assert len(units) == 1
        (stack,) = units
        assert isinstance(stack, StackedGroup)
        assert len(stack.groups) == 5

    def test_single_seed_points_pass_through_unstacked(self):
        tasks = _point_tasks("random", 1)
        units = plan_super_groups(plan_groups(tasks))
        assert len(units) == 1
        assert not isinstance(units[0], StackedGroup)

    def test_mismatched_treatments_fall_back_to_instance_groups(self):
        # seed 1 lost a treatment (e.g. to a cache hit): the two groups
        # no longer agree on the treatment multiset and must not stack
        tasks = [
            SweepTask("scheme", "trivial", GraphSpec("random", 0.2), 12, 0),
            SweepTask("scheme", "theorem3", GraphSpec("random", 0.2), 12, 0),
            SweepTask("scheme", "trivial", GraphSpec("random", 0.2), 12, 1),
        ]
        units = plan_super_groups(plan_groups(tasks))
        assert all(not isinstance(u, StackedGroup) for u in units)

    def test_adhoc_factories_and_mixed_roots_never_stack(self):
        factory = lambda n, seed: build_graph("cycle", n, seed)  # noqa: E731
        adhoc = [
            SweepTask("scheme", "trivial", factory, 12, seed) for seed in (0, 1)
        ]
        assert all(
            not isinstance(u, StackedGroup)
            for u in plan_super_groups(plan_groups(adhoc))
        )
        roots = [
            SweepTask("scheme", "trivial", GraphSpec("random", 0.2), 12, seed, root=seed)
            for seed in (0, 1)
        ]
        assert all(
            not isinstance(u, StackedGroup)
            for u in plan_super_groups(plan_groups(roots))
        )

    def test_non_mst_problems_keep_the_per_instance_path(self):
        tasks = [
            SweepTask(
                "scheme", "leader/trivial", GraphSpec("random", 0.2), 12, seed
            )
            for seed in (0, 1)
        ]
        units = plan_super_groups(plan_groups(tasks))
        assert all(not isinstance(u, StackedGroup) for u in units)


class TestStackedStats:
    def test_stats_count_stacks_and_stage_seconds(self):
        tasks = _point_tasks("random", 4)
        stats = ExecutionStats()
        run_tasks(tasks, grouping="seed-stack", stats=stats)
        assert stats.stacked_groups == 1
        assert stats.grouped_tasks == len(tasks)
        assert stats.cache_misses == len(tasks)
        stages = stats.stages_dict()
        assert set(stages) == {"graph", "trace", "advice", "execute"}
        assert stages["execute"] > 0.0


class TestBenchCli:
    def test_bench_seed_stack_profile_json(self, capsys):
        code = main(
            [
                "bench", "--scheme", "all", "--n", "16", "--repeats", "4",
                "--grouping", "seed-stack", "--profile", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["grouping"] == "seed-stack"
        assert payload["tier"] == "standard"
        assert payload["correct"] is True
        assert set(payload["stage_seconds"]) == {"graph", "trace", "advice", "execute"}

    def test_bench_large_tier_pins_instance_and_profiles(self, capsys, monkeypatch):
        # the real large tier is hypercube(131072); shrink it so the test
        # exercises the pinning logic, not the wall clock
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "_LARGE_TIER", {"graph": "hypercube", "n": 16, "backend": "analytic"}
        )
        code = main(
            [
                "bench", "--tier", "large", "--scheme", "theorem3",
                "--repeats", "2", "--grouping", "seed-stack", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tier"] == "large"
        assert payload["graph"] == "hypercube"
        assert payload["n"] == 16
        assert payload["backend"] == "analytic"
        assert "stage_seconds" in payload  # the tier forces --profile

    def test_bench_history_renders_snapshots(self, tmp_path, capsys):
        snapshot = {
            "kind": "bench-snapshot",
            "rev": "abc1234",
            "payload": {
                "scheme": "all", "graph": "random", "n": 1024,
                "backend": "analytic", "grouping": "seed-stack",
                "tier": "standard", "runs_per_second": 72.5,
                "stage_seconds": {"graph": 0.2, "trace": 0.3},
            },
        }
        (tmp_path / "BENCH_abc1234.json").write_text(json.dumps(snapshot))
        code = main(["bench", "history", "--dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "abc1234" in out and "seed-stack" in out and "72.5" in out

    def test_bench_history_json_and_empty_dir(self, tmp_path, capsys):
        assert main(["bench", "history", "--dir", str(tmp_path), "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []
        assert main(["bench", "history", "--dir", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err


hypothesis = pytest.importorskip("hypothesis")
given, settings, st = hypothesis.given, hypothesis.settings, hypothesis.strategies


class TestBatchGeneratorProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 48),
        prob=st.sampled_from([0.0, 0.05, 0.3, 1.0]),
        seeds=st.lists(st.integers(0, 1000), min_size=1, max_size=5, unique=True),
        weight_mode=st.sampled_from(["distinct", "uniform"]),
    )
    def test_batch_matches_per_seed_rng_streams(self, n, prob, seeds, weight_mode):
        batch = random_connected_graph_batch(
            n, prob, seeds=seeds, weight_mode=weight_mode
        )
        for graph, seed in zip(batch, seeds):
            solo = random_connected_graph(n, prob, seed=seed, weight_mode=weight_mode)
            for field in ("edge_u", "edge_v", "edge_w", "edge_port_u", "edge_port_v"):
                assert np.array_equal(getattr(graph, field), getattr(solo, field))

"""Tests of structural queries and graph serialisation."""

import pytest

from repro.graphs import io
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.properties import (
    bfs_layers,
    bfs_parents,
    connected_components,
    degree_statistics,
    diameter,
    eccentricity,
    is_connected,
    shortest_path_lengths,
)
from repro.graphs.weighted_graph import PortNumberedGraph


class TestProperties:
    def test_bfs_layers_on_path(self):
        g = path_graph(6, seed=0)
        layers = bfs_layers(g, 0)
        assert layers == [[0], [1], [2], [3], [4], [5]]

    def test_bfs_parents_cover_all_nodes(self):
        g = random_connected_graph(30, 0.1, seed=1)
        parents = bfs_parents(g, 4)
        assert set(parents) == set(range(30))
        assert parents[4] is None

    def test_shortest_path_lengths(self):
        g = cycle_graph(8, seed=0)
        dist = shortest_path_lengths(g, 0)
        assert dist[4] == 4 and dist[1] == 1 and dist[7] == 1

    def test_diameter_known_values(self):
        assert diameter(path_graph(10, seed=0)) == 9
        assert diameter(cycle_graph(10, seed=0)) == 5
        assert diameter(star_graph(10, seed=0)) == 2
        assert diameter(complete_graph(6, seed=0)) == 1
        assert diameter(grid_graph(3, 4, seed=0)) == 5

    def test_diameter_double_sweep_on_large_tree(self):
        g = path_graph(3000, seed=0)
        assert diameter(g, exact_limit=100) == 2999  # double sweep is exact on trees

    def test_eccentricity(self):
        g = path_graph(5, seed=0)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_disconnected_rejected(self):
        g = PortNumberedGraph(4, [(0, 1, 1.0), (2, 3, 2.0)])
        assert not is_connected(g)
        with pytest.raises(ValueError):
            diameter(g)
        with pytest.raises(ValueError):
            eccentricity(g, 0)

    def test_connected_components(self):
        g = PortNumberedGraph(5, [(0, 1, 1.0), (2, 3, 2.0)])
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_degree_statistics(self):
        stats = degree_statistics(star_graph(10, seed=0))
        assert stats["max"] == 9 and stats["min"] == 1
        assert abs(stats["mean"] - 18 / 10) < 1e-9


class TestIO:
    def test_json_round_trip_preserves_ports(self):
        g = random_connected_graph(20, 0.15, seed=2, shuffle_ports=True)
        g2 = io.from_json(io.to_json(g))
        assert g2.n == g.n and g2.m == g.m
        for u in range(g.n):
            for p in g.ports(u):
                assert g2.neighbor(u, p) == g.neighbor(u, p)
                assert g2.weight(u, p) == g.weight(u, p)

    def test_json_rejects_other_documents(self):
        with pytest.raises(ValueError):
            io.from_json('{"format": "something-else"}')

    def test_json_file_round_trip(self, tmp_path):
        g = random_connected_graph(12, 0.2, seed=3)
        path = tmp_path / "graph.json"
        io.save_json(g, path)
        g2 = io.load_json(path)
        assert g2.edge_list() == g.edge_list()

    def test_edge_list_text_round_trip(self):
        g = random_connected_graph(15, 0.1, seed=4)
        g2 = io.from_edge_list_text(io.to_edge_list_text(g))
        assert g2.n == g.n
        assert g2.edge_list() == g.edge_list()

"""Tests of the no-advice distributed MST baselines."""

import math

import pytest

from repro.distributed.base import run_baseline
from repro.distributed.boruvka_sync import SynchronizedBoruvkaMST
from repro.distributed.full_info import FullInformationMST
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.properties import diameter
from repro.graphs.weighted_graph import PortNumberedGraph


BASELINE_GRAPHS = [
    ("path10", path_graph(10, seed=1)),
    ("cycle12", cycle_graph(12, seed=2)),
    ("star9", star_graph(9, seed=3)),
    ("complete10", complete_graph(10, seed=4)),
    ("grid3x4", grid_graph(3, 4, seed=5)),
    ("rand24", random_connected_graph(24, 0.12, seed=6)),
    ("rand36", random_connected_graph(36, 0.08, seed=7)),
]


class TestFullInformation:
    @pytest.mark.parametrize("name,graph", BASELINE_GRAPHS, ids=[g[0] for g in BASELINE_GRAPHS])
    def test_correct(self, name, graph):
        report = run_baseline(FullInformationMST(), graph)
        assert report.correct, f"{name}: {report.check.reason}"

    def test_rounds_close_to_diameter(self):
        for _, graph in BASELINE_GRAPHS:
            report = run_baseline(FullInformationMST(), graph)
            assert report.rounds <= diameter(graph) + 3

    def test_messages_are_not_congest(self):
        """The LOCAL baseline pays in bandwidth: messages far exceed O(log n) bits."""
        graph = random_connected_graph(40, 0.2, seed=8)
        report = run_baseline(FullInformationMST(), graph)
        assert report.correct
        assert report.metrics.congest_factor() > 50

    def test_single_node(self):
        report = run_baseline(FullInformationMST(), PortNumberedGraph(1, []))
        assert report.correct
        assert report.rounds == 0


class TestSynchronizedBoruvka:
    @pytest.mark.parametrize("name,graph", BASELINE_GRAPHS, ids=[g[0] for g in BASELINE_GRAPHS])
    def test_correct(self, name, graph):
        report = run_baseline(SynchronizedBoruvkaMST(), graph)
        assert report.correct, f"{name}: {report.check.reason}"

    def test_round_cost_matches_the_fixed_schedule(self):
        graph = random_connected_graph(20, 0.15, seed=9)
        baseline = SynchronizedBoruvkaMST()
        report = run_baseline(baseline, graph)
        assert report.correct
        assert report.rounds == baseline.round_bound(graph)
        # Theta(n log n): vastly more rounds than the diameter
        assert report.rounds > 10 * diameter(graph)

    def test_messages_are_congest_sized(self):
        graph = random_connected_graph(30, 0.1, seed=10)
        report = run_baseline(SynchronizedBoruvkaMST(), graph)
        assert report.correct
        assert report.metrics.congest_factor() < 25

    def test_requires_distinct_weights(self):
        graph = random_connected_graph(20, 0.2, seed=11, weight_mode="integer", weight_range=2)
        with pytest.raises(ValueError):
            SynchronizedBoruvkaMST().program_factory(graph)

    def test_requires_distinct_ids(self):
        graph = PortNumberedGraph(3, [(0, 1, 1.0), (1, 2, 2.0)], node_ids=[5, 5, 6])
        with pytest.raises(ValueError):
            SynchronizedBoruvkaMST().program_factory(graph)

    def test_reports_round_bound(self):
        graph = random_connected_graph(16, 0.1, seed=12)
        bound = SynchronizedBoruvkaMST().round_bound(graph)
        assert bound == (4 * (16 + 2) + 8) * math.ceil(math.log2(16))


class TestComparisonShape:
    def test_advised_scheme_beats_no_advice_baselines_in_rounds(self):
        """The qualitative claim of the paper: advice buys an exponential speed-up."""
        from repro.core.oracle import run_scheme
        from repro.core.scheme_main import ShortAdviceScheme

        graph = random_connected_graph(48, 0.08, seed=13)
        advised = run_scheme(ShortAdviceScheme(), graph, root=0)
        no_advice = run_baseline(SynchronizedBoruvkaMST(), graph)
        assert advised.correct and no_advice.correct
        assert advised.rounds * 5 < no_advice.rounds

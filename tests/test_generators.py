"""Tests of the instance generators."""

import numpy as np
import pytest

from repro.graphs import (
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    power_law_graph,
    random_connected_graph,
    random_geometric_graph,
    random_spanning_tree_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.generators import assign_weights
from repro.runner.registry import GRAPH_FAMILIES, build_graph


ALL_GENERATORS = [
    ("path", lambda: path_graph(9, seed=1), 9, 8),
    ("cycle", lambda: cycle_graph(9, seed=1), 9, 9),
    ("star", lambda: star_graph(9, seed=1), 9, 8),
    ("complete", lambda: complete_graph(9, seed=1), 9, 36),
    ("grid", lambda: grid_graph(3, 4, seed=1), 12, 17),
    ("torus", lambda: torus_graph(3, 4, seed=1), 12, 24),
    ("hypercube", lambda: hypercube_graph(4, seed=1), 16, 32),
    ("powerlaw", lambda: power_law_graph(20, attach=2, seed=1), 20, 36),
    ("caterpillar", lambda: caterpillar_graph(5, 2, seed=1), 15, 14),
    ("tree", lambda: random_spanning_tree_graph(20, seed=1), 20, 19),
]


class TestTopologies:
    @pytest.mark.parametrize("name,factory,n,m", ALL_GENERATORS, ids=[g[0] for g in ALL_GENERATORS])
    def test_shape_and_validity(self, name, factory, n, m):
        g = factory()
        g.validate()
        assert g.n == n
        assert g.m == m
        assert g.is_connected()

    def test_random_connected_graph_contains_spanning_tree(self):
        g = random_connected_graph(50, 0.0, seed=3)
        assert g.m == 49  # p=0 gives exactly the random spanning tree
        g2 = random_connected_graph(50, 0.2, seed=3)
        assert g2.m > 49
        assert g2.is_connected()

    def test_random_connected_graph_density_monotone(self):
        sparse = random_connected_graph(60, 0.02, seed=5)
        dense = random_connected_graph(60, 0.4, seed=5)
        assert dense.m > sparse.m

    def test_geometric_graph_connected_and_euclidean(self):
        g = random_geometric_graph(60, seed=7)
        g.validate()
        assert g.is_connected()
        # Euclidean weights live in (0, sqrt 2)
        assert all(0.0 < w <= np.sqrt(2) + 1e-9 for w in g.edge_w)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cycle_graph(2)
        with pytest.raises(ValueError):
            star_graph(1)
        with pytest.raises(ValueError):
            torus_graph(2, 5)
        with pytest.raises(ValueError):
            random_connected_graph(10, 1.5)
        with pytest.raises(ValueError):
            grid_graph(0, 3)
        with pytest.raises(ValueError):
            hypercube_graph(0)
        with pytest.raises(ValueError):
            hypercube_graph(21)
        with pytest.raises(ValueError):
            power_law_graph(1)
        with pytest.raises(ValueError):
            power_law_graph(10, attach=0)

    def test_hypercube_is_regular(self):
        for dim in (1, 2, 3, 5):
            g = hypercube_graph(dim, seed=0)
            assert g.n == 2**dim
            assert g.m == dim * 2 ** (dim - 1)
            assert all(g.degree(v) == dim for v in range(g.n))

    def test_power_law_has_heavy_tail(self):
        g = power_law_graph(400, attach=2, seed=1)
        degrees = sorted((g.degree(v) for v in range(g.n)), reverse=True)
        # hubs: the max degree dwarfs the median (no bounded-degree family
        # in the zoo behaves like this)
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]
        # edge budget: star core + attach edges per later node
        assert g.m == 2 + 2 * (400 - 3)


class TestWeightsAndDeterminism:
    def test_distinct_mode_gives_distinct_weights(self):
        g = random_connected_graph(40, 0.1, seed=2, weight_mode="distinct")
        assert g.has_distinct_weights()

    def test_integer_mode_range(self):
        rng = np.random.default_rng(0)
        w = assign_weights(500, rng, "integer", weight_range=7)
        assert w.min() >= 1 and w.max() <= 7

    def test_uniform_mode(self):
        rng = np.random.default_rng(0)
        w = assign_weights(100, rng, "uniform")
        assert ((0 <= w) & (w < 1)).all()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            assign_weights(5, np.random.default_rng(0), "bogus")

    def test_same_seed_same_graph(self):
        a = random_connected_graph(40, 0.1, seed=9)
        b = random_connected_graph(40, 0.1, seed=9)
        assert a.edge_list() == b.edge_list()

    def test_different_seed_different_graph(self):
        a = random_connected_graph(40, 0.1, seed=9)
        b = random_connected_graph(40, 0.1, seed=10)
        assert a.edge_list() != b.edge_list()

    def test_shuffled_ports_preserve_structure(self):
        g = random_connected_graph(25, 0.1, seed=4, shuffle_ports=True)
        g.validate()
        h = random_connected_graph(25, 0.1, seed=4, shuffle_ports=False)
        # same edge multiset regardless of port shuffling
        assert sorted((u, v) for u, v, _ in g.edge_list()) == sorted(
            (u, v) for u, v, _ in h.edge_list()
        )


class TestFamilyRegistry:
    """Every registry family is buildable, connected and deterministic."""

    @pytest.mark.parametrize("family", GRAPH_FAMILIES)
    def test_family_builds_connected(self, family):
        g = build_graph(family, 20, seed=1)
        g.validate()
        assert g.is_connected()

    @pytest.mark.parametrize("family", GRAPH_FAMILIES)
    def test_family_deterministic(self, family):
        a = build_graph(family, 24, seed=5)
        b = build_graph(family, 24, seed=5)
        assert a.edge_list() == b.edge_list()

    def test_structured_families_round_the_requested_size(self):
        assert build_graph("hypercube", 30, seed=0).n == 32
        assert build_graph("grid", 20, seed=0).n == 16
        assert build_graph("torus", 20, seed=0).n == 16

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown graph kind"):
            build_graph("moebius", 16, seed=0)

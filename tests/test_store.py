"""Tests of the sharded SQLite result store, run manifests and resume.

The store must be a drop-in for :class:`repro.runner.cache.ResultCache`:
same lookup/store contract, same miss-on-corruption semantics, and —
most importantly — byte-identical sweep output whichever backend served
the rows.  The multiprocessing stress test hammers one store from many
concurrent writer processes with overlapping task sets, which is the
shape of several ``--jobs`` sweeps sharing a cache directory.
"""

import json
import multiprocessing
import sqlite3

import pytest

from repro.analysis.sweep import run_scheme_sweep
from repro.runner import (
    ExecutionStats,
    GraphSpec,
    ProgressReporter,
    ResultCache,
    RunManifest,
    SQLiteResultStore,
    SweepTask,
    open_result_store,
    run_tasks,
)
from repro.runner.manifest import run_id_for
from repro.runner.store import DEFAULT_SHARDS, STORE_SCHEMA_VERSION

TASKS = [
    SweepTask("scheme", "trivial", GraphSpec("random", 0.1), n, seed)
    for n in (8, 16)
    for seed in (0, 1)
]


def _row(tag):
    """A result-row stand-in with a float that must survive round-trips."""
    return {"kind": "scheme", "value": 0.1 + tag, "correct": True}


class TestOpenResultStore:
    def test_backend_selection(self, tmp_path):
        assert isinstance(open_result_store(tmp_path / "j", "json"), ResultCache)
        assert isinstance(open_result_store(tmp_path / "s", "sqlite"), SQLiteResultStore)
        with pytest.raises(ValueError):
            open_result_store(tmp_path, "wat")

    def test_unusable_directory_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ValueError):
            SQLiteResultStore(blocker / "sub")


class TestSQLiteStoreContract:
    def test_round_trip_and_counters(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1
        store.put("0" * 64, {"task": 1}, _row(0))
        assert store.get("0" * 64) == _row(0)
        assert store.hits == 1

    def test_put_overwrites(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        store.put("ab" * 32, {}, _row(1))
        store.put("ab" * 32, {}, _row(2))
        assert store.get("ab" * 32) == _row(2)
        assert store.stats()["rows"] == 1

    def test_persists_across_instances(self, tmp_path):
        SQLiteResultStore(tmp_path).put("cd" * 32, {}, _row(3))
        assert SQLiteResultStore(tmp_path).get("cd" * 32) == _row(3)

    def test_float_rows_round_trip_exactly(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        row = {"avg": 1.0 / 3.0, "big": 2.0 ** 60, "tiny": 5e-324}
        store.put("ef" * 32, {}, row)
        assert json.dumps(store.get("ef" * 32)) == json.dumps(row)

    def test_shard_layout(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        files = sorted(p.name for p in tmp_path.glob("shard-*.sqlite"))
        assert len(files) == DEFAULT_SHARDS == store.shards
        keys = [f"{i:02x}" * 32 for i in range(64)]
        for i, key in enumerate(keys):
            store.put(key, {}, _row(i))
        stats = store.stats()
        assert stats["rows"] == len(keys)
        assert stats["schema_version"] == STORE_SCHEMA_VERSION
        # the hash-prefix routing actually spreads the key space
        populated = [row for row in stats["per_shard"] if row["rows"]]
        assert len(populated) > 1

    def test_reopen_adopts_existing_layout(self, tmp_path):
        SQLiteResultStore(tmp_path, shards=2).put("ab" * 32, {}, _row(0))
        reopened = SQLiteResultStore(tmp_path, shards=8)
        assert reopened.shards == 2  # on-disk layout wins over the argument
        assert reopened.get("ab" * 32) == _row(0)

    def test_layout_file_pins_the_shard_count(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        layout = json.loads(store.layout_path.read_text())
        assert layout["shards"] == store.shards
        store.close()
        # even with shard files missing (partial creation, manual damage)
        # the layout claim — not a racy glob — decides the routing
        store.path_for_shard(store.shards - 1).unlink()
        assert SQLiteResultStore(tmp_path, shards=16).shards == store.shards

    def test_legacy_directory_without_layout_file(self, tmp_path):
        store = SQLiteResultStore(tmp_path, shards=2)
        store.put("ab" * 32, {}, _row(0))
        store.close()
        store.layout_path.unlink()  # a pre-layout-file store directory
        reopened = SQLiteResultStore(tmp_path, shards=8)
        assert reopened.shards == 2  # counted from disk ...
        assert json.loads(reopened.layout_path.read_text())["shards"] == 2  # ... and pinned
        assert reopened.get("ab" * 32) == _row(0)

    def test_non_hex_keys_still_route(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        store.put("not-a-hash", {}, _row(7))
        assert store.get("not-a-hash") == _row(7)

    def test_schema_version_mismatch_is_a_miss(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        store.put("ab" * 32, {}, _row(0))
        index = store.shard_for("ab" * 32)
        store.close()
        conn = sqlite3.connect(store.path_for_shard(index))
        conn.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        fresh = SQLiteResultStore(tmp_path)
        assert fresh.get("ab" * 32) is None  # stale generation dropped
        fresh.put("ab" * 32, {}, _row(1))
        assert fresh.get("ab" * 32) == _row(1)


class TestCorruptShardRecovery:
    def test_corrupt_shard_misses_then_recovers(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        key = "ab" * 32
        store.put(key, {}, _row(0))
        index = store.shard_for(key)
        store.close()
        store.path_for_shard(index).write_text("this is not a database")

        # ResultCache semantics: corruption is a miss, never an error ...
        reopened = SQLiteResultStore(tmp_path)
        assert reopened.get(key) is None
        assert reopened.misses == 1
        # ... and the next write rebuilds the shard
        reopened.put(key, {}, _row(1))
        assert reopened.get(key) == _row(1)
        assert reopened.stats()["rows"] == 1

    def test_corrupt_shard_only_loses_its_own_keys(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        keys = [f"{i:02x}" * 32 for i in range(32)]
        for i, key in enumerate(keys):
            store.put(key, {}, _row(i))
        victim = store.shard_for(keys[0])
        store.close()
        store.path_for_shard(victim).write_text("garbage")
        reopened = SQLiteResultStore(tmp_path)
        survivors = [k for k in keys if reopened.shard_for(k) != victim]
        assert survivors
        for key in survivors:
            assert reopened.get(key) is not None
        assert reopened.get(keys[0]) is None

    def test_transient_errors_never_delete_the_shard(self, tmp_path):
        """Lock contention retries behind bounded seeded backoff, then
        surfaces; other transient errors surface at once — and neither
        ever destroys committed rows."""
        store = SQLiteResultStore(tmp_path, lock_retries=2)
        key = "ab" * 32
        store.put(key, {}, _row(0))
        index = store.shard_for(key)
        store._drop_conn(index)
        attempts = []
        delays = []
        store._sleep = delays.append

        def locked(_index):
            attempts.append(_index)
            raise sqlite3.OperationalError("database is locked")

        store._conn = locked
        with pytest.raises(sqlite3.OperationalError):
            store.put(key, {}, _row(1))
        # bounded: the initial try plus lock_retries retries, each behind
        # a deterministic positive backoff — then the error is real
        assert attempts == [index] * 3
        assert len(delays) == 2 and all(delay > 0 for delay in delays)
        # a disk-full style error is not lock contention: no retry at all
        attempts.clear()

        def disk_error(_index):
            attempts.append(_index)
            raise sqlite3.OperationalError("disk I/O error")

        store._conn = disk_error
        with pytest.raises(sqlite3.OperationalError):
            store.put(key, {}, _row(1))
        assert attempts == [index]
        # the shard file survived untouched, with its committed row
        fresh = SQLiteResultStore(tmp_path)
        assert fresh.get(key) == _row(0)

    def test_run_tasks_recomputes_after_corruption(self, tmp_path):
        fresh = run_tasks(TASKS, cache_dir=tmp_path)
        for shard in tmp_path.glob("shard-*.sqlite"):
            shard.write_text("garbage")
        recovered = run_tasks(TASKS, cache_dir=tmp_path)
        assert json.dumps(recovered) == json.dumps(fresh)
        assert SQLiteResultStore(tmp_path).stats()["rows"] == len(TASKS)


class TestMaintenance:
    def test_migrate_json_cache(self, tmp_path):
        json_dir = tmp_path / "json"
        rows = run_tasks(TASKS, cache_dir=json_dir, cache_backend="json")
        (json_dir / "broken.json").write_text("{nope")
        store = SQLiteResultStore(tmp_path / "store")
        # batch_size below the entry count: the streaming path must flush
        # every batch, not just the last partial one
        summary = store.migrate_json_cache(json_dir, batch_size=2)
        assert summary == {"imported": len(TASKS), "skipped": 1}
        served = run_tasks(TASKS, cache_dir=store)
        assert store.hits == len(TASKS)
        assert json.dumps(served) == json.dumps(rows)

    def test_gc_drops_foreign_generations(self, tmp_path):
        store = SQLiteResultStore(tmp_path)
        run_tasks(TASKS, cache_dir=store)
        live = store.stats()["rows"]
        store.put("ab" * 32, {"format": 2, "lib": "0.0.0"}, _row(0))  # stale lib
        store.put("cd" * 32, {}, _row(1))  # no provenance at all
        assert store.gc() == {"removed": 2, "kept": live}
        assert store.stats()["rows"] == live
        # gc'd store still serves the live rows byte-identically
        warm = SQLiteResultStore(tmp_path)
        run_tasks(TASKS, cache_dir=warm)
        assert warm.hits == len(TASKS)


def _stress_writer(args):
    """One writer process: upsert an overlapping slice of the key space."""
    directory, start, count, tag = args
    store = SQLiteResultStore(directory)
    items = [
        (f"{index:03x}" + "0" * 61, {"task": index}, {"index": index, "tag": tag})
        for index in range(start, start + count)
    ]
    # alternate batched and single-row writes: both paths must be safe
    if tag % 2:
        store.put_many(items)
    else:
        for key, task, row in items:
            store.put(key, task, row)
    return tag


class TestConcurrentWriters:
    def test_many_processes_no_lost_rows(self, tmp_path):
        """Overlapping upserts from many writers: no lost rows, no corruption."""
        writers = 8
        span = 40  # each writer covers [start, start+span), half-overlapping
        jobs = [(str(tmp_path), w * span // 2, span, w) for w in range(writers)]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=writers) as pool:
            done = pool.map(_stress_writer, jobs)
        assert sorted(done) == list(range(writers))

        store = SQLiteResultStore(tmp_path)
        universe = {index for _, start, count, _ in jobs for index in range(start, start + count)}
        assert store.stats()["rows"] == len(universe)
        for index in sorted(universe):
            row = store.get(f"{index:03x}" + "0" * 61)
            assert row is not None and row["index"] == index
            # overlapped keys hold exactly one writer's complete row
            assert row["tag"] in range(writers)
        assert store.misses == 0

    def test_concurrent_sweeps_share_one_store(self, tmp_path):
        """Two parallel run_tasks calls over the same directory agree."""
        a = run_tasks(TASKS, jobs=2, cache_dir=tmp_path)
        b = run_tasks(TASKS, jobs=2, cache_dir=tmp_path)
        assert json.dumps(a) == json.dumps(b)


class TestRunManifest:
    def test_identity_and_checkpoint(self, tmp_path):
        keys = [t.task_hash() for t in TASKS]
        manifest = RunManifest.open(tmp_path, keys)
        assert manifest.total == len(TASKS)
        assert not manifest.finished
        manifest.mark_done(keys[:2])
        stored = json.loads(manifest.path.read_text())
        assert stored["run_id"] == run_id_for(keys)
        assert stored["finished"] is False
        assert len(stored["completed"]) == 2

        resumed = RunManifest.open(tmp_path, keys)
        assert resumed.resumed == 2
        resumed.mark_done(keys)
        assert resumed.finished
        assert json.loads(resumed.path.read_text())["finished"] is True

    def test_different_runs_get_different_ledgers(self, tmp_path):
        first = RunManifest.open(tmp_path, [t.task_hash() for t in TASKS])
        second = RunManifest.open(tmp_path, [t.task_hash() for t in TASKS[:2]])
        assert first.run_id != second.run_id

    def test_corrupt_manifest_is_ignored(self, tmp_path):
        keys = [t.task_hash() for t in TASKS]
        manifest = RunManifest.open(tmp_path, keys)
        manifest.mark_done(keys[:1])
        manifest.path.write_text("{broken")
        assert RunManifest.open(tmp_path, keys).resumed == 0

    def test_foreign_hashes_cannot_inflate_completion(self, tmp_path):
        keys = [t.task_hash() for t in TASKS]
        manifest = RunManifest.open(tmp_path, keys)
        manifest.mark_done(keys)
        doctored = json.loads(manifest.path.read_text())
        doctored["completed"].append("f" * 64)
        manifest.path.write_text(json.dumps(doctored))
        assert RunManifest.open(tmp_path, keys).resumed == len(keys)


class TestResume:
    def test_resume_requires_a_cache(self):
        with pytest.raises(ValueError):
            run_tasks(TASKS, resume=True)

    def test_killed_run_resumes_without_recomputation(self, tmp_path):
        """The acceptance shape: a partial run, then --resume finishes it.

        The first call completes only half the tasks (simulating a kill
        after two group checkpoints); the resumed call must re-execute
        exactly the other half and produce byte-identical rows.
        """
        fresh = run_tasks(TASKS)
        run_tasks(TASKS[:2], cache_dir=tmp_path, resume=True)

        stats = ExecutionStats()
        resumed = run_tasks(TASKS, cache_dir=tmp_path, resume=True, stats=stats)
        assert stats.cache_hits == 2
        assert stats.cache_misses == 2  # zero checkpointed tasks re-executed
        assert json.dumps(resumed) == json.dumps(fresh)

        # the full run's ledger is now complete; a second resume executes nothing
        stats = ExecutionStats()
        again = run_tasks(TASKS, cache_dir=tmp_path, resume=True, stats=stats)
        assert stats.cache_misses == 0
        assert json.dumps(again) == json.dumps(fresh)
        manifests = list((tmp_path / "manifests").glob("run-*.json"))
        full = [
            json.loads(p.read_text())
            for p in manifests
            if json.loads(p.read_text())["total"] == len(TASKS)
        ]
        assert len(full) == 1 and full[0]["finished"] is True

    def test_resume_is_byte_identical_across_jobs(self, tmp_path):
        fresh = run_scheme_sweep("trivial", sizes=(8, 16), seeds=(0, 1))
        resumed = run_scheme_sweep(
            "trivial", sizes=(8, 16), seeds=(0, 1),
            cache_dir=tmp_path, resume=True, jobs=2,
        )
        assert json.dumps(resumed.rows) == json.dumps(fresh.rows)

    def test_checkpoints_are_incremental(self, tmp_path):
        """Every completed group is durable before the run ends."""
        seen = []
        store = SQLiteResultStore(tmp_path)
        original = store.put_many

        def spy(items):
            original(items)
            seen.append(SQLiteResultStore(tmp_path).stats()["rows"])

        store.put_many = spy
        run_tasks(TASKS, cache_dir=store)
        # four tasks over two instance groups: two separate commits, and
        # the store already held the first group's rows when the second landed
        assert len(seen) >= 2
        assert seen == sorted(seen)
        assert seen[-1] == len(TASKS)


class TestProgressReporter:
    def test_counts_rates_and_final_newline(self):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(4, label="sweep", stream=stream, min_interval=0.0)
        reporter.add_cached(2, resumed=1)
        reporter.add_executed(1)
        reporter.add_executed(1)
        reporter.close()
        output = stream.getvalue()
        assert "sweep: 4/4 done" in output
        assert "(2 cached, 1 resumed)" in output
        assert "tasks/s" in output

    def test_progress_goes_to_stderr_not_stdout(self, tmp_path, capsys):
        run_tasks(TASKS, cache_dir=tmp_path, progress=True)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert f"{len(TASKS)}/{len(TASKS)} done" in captured.err

"""Unit and property-based tests of bit strings and prefix-free codes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bits import BitReader, BitString, BitWriter


class TestBitString:
    def test_empty(self):
        empty = BitString.empty()
        assert len(empty) == 0
        assert empty.to_uint() == 0
        assert empty.to01() == ""

    def test_from_uint_round_trip(self):
        bits = BitString.from_uint(0b1011, 4)
        assert bits.to01() == "1011"
        assert bits.to_uint() == 11

    def test_from_uint_width_zero(self):
        assert len(BitString.from_uint(0, 0)) == 0
        with pytest.raises(ValueError):
            BitString.from_uint(1, 0)

    def test_from_uint_overflow(self):
        with pytest.raises(ValueError):
            BitString.from_uint(8, 3)

    def test_from_uint_negative(self):
        with pytest.raises(ValueError):
            BitString.from_uint(-1, 4)

    def test_from_string(self):
        assert BitString.from_string("0101").to_uint() == 5
        with pytest.raises(ValueError):
            BitString.from_string("012")

    def test_concatenation_and_slicing(self):
        a = BitString([1, 0])
        b = BitString([1, 1, 1])
        c = a + b
        assert c.to01() == "10111"
        assert c[:2] == a
        assert c[2:] == b
        assert c[0] == 1 and c[1] == 0

    def test_equality_and_hash(self):
        assert BitString([1, 0]) == BitString([1, 0])
        assert BitString([1, 0]) != BitString([0, 1])
        assert len({BitString([1, 0]), BitString([1, 0]), BitString([0])}) == 2

    def test_bit_length_exact_matches_len(self):
        bits = BitString([1, 0, 1])
        assert bits.bit_length_exact() == len(bits) == 3

    @given(st.integers(min_value=0, max_value=2**20 - 1), st.integers(min_value=20, max_value=40))
    def test_uint_round_trip_property(self, value, width):
        assert BitString.from_uint(value, width).to_uint() == value

    @given(st.lists(st.booleans(), max_size=64))
    def test_iteration_round_trip(self, bits):
        bs = BitString(bits)
        assert [bool(b) for b in bs] == bits


class TestWriterReader:
    def test_write_read_mixed(self):
        writer = BitWriter()
        writer.write_bit(1).write_uint(5, 4).write_gamma(7).write_bits([0, 1])
        bits = writer.getvalue()
        reader = BitReader(bits)
        assert reader.read_bit() == 1
        assert reader.read_uint(4) == 5
        assert reader.read_gamma() == 7
        assert list(reader.read_bits(2)) == [0, 1]
        assert reader.at_end()

    def test_reader_eof(self):
        reader = BitReader(BitString([1]))
        reader.read_bit()
        with pytest.raises(EOFError):
            reader.read_bit()
        with pytest.raises(EOFError):
            BitReader(BitString([1])).read_bits(2)

    def test_gamma_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BitWriter().write_gamma(0)

    def test_gamma_length(self):
        # gamma(v) uses 2 floor(log2 v) + 1 bits
        for value in (1, 2, 3, 4, 7, 8, 1023, 1024):
            writer = BitWriter()
            writer.write_gamma(value)
            assert len(writer.getvalue()) == 2 * (value.bit_length() - 1) + 1

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20))
    def test_gamma_stream_round_trip(self, values):
        writer = BitWriter()
        for v in values:
            writer.write_gamma(v)
        reader = BitReader(writer.getvalue())
        assert [reader.read_gamma() for _ in values] == values
        assert reader.at_end()

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=255), st.integers(min_value=8, max_value=12)),
            max_size=16,
        )
    )
    def test_uint_stream_round_trip(self, pairs):
        writer = BitWriter()
        for value, width in pairs:
            writer.write_uint(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in pairs:
            assert reader.read_uint(width) == value

    def test_position_and_remaining(self):
        reader = BitReader(BitString([1, 0, 1, 1]))
        assert reader.remaining == 4
        reader.read_bits(3)
        assert reader.position == 3
        assert reader.remaining == 1

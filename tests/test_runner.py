"""Tests of the parallel experiment runner (repro.runner)."""

import json

import pytest

from repro.analysis.sweep import run_baseline_sweep, run_scheme_sweep
from repro.core.scheme_trivial import TrivialRankScheme
from repro.runner import (
    GraphSpec,
    ResultCache,
    SQLiteResultStore,
    SweepTask,
    execute_task,
    resolve_baseline,
    resolve_scheme,
    run_tasks,
)
from repro.runner.cache import CACHE_VERSION
from repro.runner.registry import BASELINES, SCHEMES, build_graph


class TestRegistry:
    def test_resolve_scheme_by_name_and_instance(self):
        assert resolve_scheme("trivial").name == "trivial-rank"
        instance = TrivialRankScheme()
        assert resolve_scheme(instance) is instance
        with pytest.raises(ValueError):
            resolve_scheme("nope")

    def test_resolve_baseline(self):
        assert resolve_baseline("full-info").name == "local-full-info"
        with pytest.raises(ValueError):
            resolve_baseline("nope")

    @pytest.mark.parametrize("family", ["random", "complete", "cycle", "grid", "geometric", "gn"])
    def test_graph_families_build_connected_instances(self, family):
        graph = build_graph(family, 20, seed=1, density=0.1)
        graph.validate()
        assert graph.is_connected()

    def test_registries_nonempty(self):
        assert set(SCHEMES) >= {"trivial", "theorem2", "theorem3"}
        assert set(BASELINES) >= {"ghs", "full-info"}


class TestGraphSpec:
    def test_spec_is_a_graph_factory(self):
        spec = GraphSpec("random", 0.1)
        g1 = spec(16, 3)
        g2 = spec.build(16, 3)
        assert g1.n == g2.n == 16
        assert g1.wiring_table() == g2.wiring_table()

    def test_spec_is_hashable_and_comparable(self):
        assert GraphSpec("cycle") == GraphSpec("cycle")
        assert len({GraphSpec("cycle"), GraphSpec("cycle"), GraphSpec("grid")}) == 2


class TestTaskHashing:
    def test_hash_is_stable_and_discriminates(self):
        task = SweepTask("scheme", "trivial", GraphSpec("random", 0.1), 16, 0)
        same = SweepTask("scheme", "trivial", GraphSpec("random", 0.1), 16, 0)
        assert task.task_hash() == same.task_hash()
        assert task.task_hash() != SweepTask("scheme", "trivial", GraphSpec("random", 0.1), 16, 1).task_hash()
        assert task.task_hash() != SweepTask("scheme", "theorem2", GraphSpec("random", 0.1), 16, 0).task_hash()
        assert task.task_hash() != SweepTask("scheme", "trivial", GraphSpec("random", 0.2), 16, 0).task_hash()

    def test_density_is_ignored_in_keys_of_density_free_families(self):
        # cycle graphs do not depend on density: same workload, same key
        a = SweepTask("scheme", "trivial", GraphSpec("cycle", 0.05), 16, 0)
        b = SweepTask("scheme", "trivial", GraphSpec("cycle", 0.03), 16, 0)
        assert a.task_hash() == b.task_hash()
        # ... but random graphs do
        c = SweepTask("scheme", "trivial", GraphSpec("random", 0.05), 16, 0)
        d = SweepTask("scheme", "trivial", GraphSpec("random", 0.03), 16, 0)
        assert c.task_hash() != d.task_hash()
        # densities above 1.0 are clamped by build_graph, and the key agrees
        e = SweepTask("scheme", "trivial", GraphSpec("random", 1.5), 16, 0)
        f = SweepTask("scheme", "trivial", GraphSpec("random", 1.0), 16, 0)
        assert e.task_hash() == f.task_hash()

    def test_key_includes_library_version(self, monkeypatch):
        # a new release must never serve rows produced by an older one
        import repro

        task = SweepTask("scheme", "trivial", GraphSpec("random", 0.1), 16, 0)
        before = task.task_hash()
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        assert task.task_hash() != before

    def test_instance_targets_are_not_cacheable(self):
        task = SweepTask("scheme", TrivialRankScheme(), GraphSpec("random", 0.1), 16, 0)
        assert not task.cacheable
        assert task.task_hash() is None

    def test_closure_factories_are_not_cacheable(self):
        task = SweepTask("scheme", "trivial", lambda n, seed: build_graph("cycle", n, seed), 16, 0)
        assert not task.cacheable

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            SweepTask("wat", "trivial", GraphSpec(), 8, 0)


class TestExecuteTask:
    def test_scheme_row_shape(self):
        row = execute_task(SweepTask("scheme", "trivial", GraphSpec("random", 0.1), 16, 0))
        assert row["kind"] == "scheme"
        assert row["correct"] is True
        assert row["rounds"] == 0
        assert row["n"] == 16 and row["seed"] == 0
        json.dumps(row)  # must be JSON-able for the cache

    def test_baseline_row_shape(self):
        row = execute_task(SweepTask("baseline", "full-info", GraphSpec("random", 0.1), 12, 1))
        assert row["kind"] == "baseline"
        assert row["correct"] is True
        assert "round_bound" in row


class TestRunTasks:
    TASKS = [
        SweepTask("scheme", "trivial", GraphSpec("random", 0.1), n, seed)
        for n in (8, 16)
        for seed in (0, 1)
    ]

    def test_results_in_task_order(self):
        rows = run_tasks(self.TASKS, jobs=1)
        assert [(r["n"], r["seed"]) for r in rows] == [(8, 0), (8, 1), (16, 0), (16, 1)]

    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_tasks(self.TASKS, jobs=1)
        parallel = run_tasks(self.TASKS, jobs=2)
        assert json.dumps(serial) == json.dumps(parallel)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_tasks(self.TASKS, jobs=0)

    def test_json_cache_round_trip(self, tmp_path):
        fresh = run_tasks(self.TASKS, jobs=1, cache_dir=tmp_path, cache_backend="json")
        assert len(list(tmp_path.glob("*.json"))) == len(self.TASKS)
        cache = ResultCache(tmp_path)
        cached = run_tasks(self.TASKS, jobs=1, cache_dir=cache)
        assert cache.hits == len(self.TASKS)
        assert json.dumps(fresh) == json.dumps(cached)

    def test_sqlite_cache_round_trip_is_the_default(self, tmp_path):
        fresh = run_tasks(self.TASKS, jobs=1, cache_dir=tmp_path)
        assert list(tmp_path.glob("*.json")) == []  # sqlite shards, not files
        assert len(list(tmp_path.glob("shard-*.sqlite"))) > 0
        store = SQLiteResultStore(tmp_path)
        cached = run_tasks(self.TASKS, jobs=1, cache_dir=store)
        assert store.hits == len(self.TASKS)
        assert json.dumps(fresh) == json.dumps(cached)

    def test_backends_serve_byte_identical_rows(self, tmp_path):
        via_json = run_tasks(self.TASKS, cache_dir=tmp_path / "j", cache_backend="json")
        via_sqlite = run_tasks(self.TASKS, cache_dir=tmp_path / "s", cache_backend="sqlite")
        warm_json = run_tasks(self.TASKS, cache_dir=tmp_path / "j", cache_backend="json")
        warm_sqlite = run_tasks(self.TASKS, cache_dir=tmp_path / "s", cache_backend="sqlite")
        blobs = {json.dumps(rows) for rows in (via_json, via_sqlite, warm_json, warm_sqlite)}
        assert len(blobs) == 1

    def test_unknown_cache_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_tasks(self.TASKS, cache_dir=tmp_path, cache_backend="wat")

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        run_tasks(self.TASKS[:1], cache_dir=tmp_path, cache_backend="json")
        (victim,) = tmp_path.glob("*.json")
        victim.write_text("{not json")
        rows = run_tasks(self.TASKS[:1], cache_dir=tmp_path, cache_backend="json")
        assert rows[0]["correct"] is True
        assert json.loads(victim.read_text())["version"] == CACHE_VERSION  # rewritten

    def test_uncacheable_tasks_bypass_the_cache(self, tmp_path):
        task = SweepTask("scheme", TrivialRankScheme(), GraphSpec("random", 0.1), 8, 0)
        rows = run_tasks([task], cache_dir=tmp_path)
        assert rows[0]["correct"] is True
        assert SQLiteResultStore(tmp_path).stats()["rows"] == 0


class TestSweepRouting:
    def test_scheme_sweep_serial_vs_parallel_identical(self):
        kwargs = dict(
            sizes=(8, 16),
            graph_factory=GraphSpec("random", 0.1),
            seeds=(0, 1),
        )
        serial = run_scheme_sweep("trivial", jobs=1, **kwargs)
        parallel = run_scheme_sweep("trivial", jobs=2, **kwargs)
        assert json.dumps(serial.rows) == json.dumps(parallel.rows)

    def test_baseline_sweep_serial_vs_parallel_identical(self):
        kwargs = dict(sizes=(8,), graph_factory=GraphSpec("random", 0.1), seeds=(0, 1))
        serial = run_baseline_sweep("full-info", jobs=1, **kwargs)
        parallel = run_baseline_sweep("full-info", jobs=2, **kwargs)
        assert json.dumps(serial.rows) == json.dumps(parallel.rows)

    def test_sweep_accepts_scheme_instances_with_closures(self):
        # the historical calling convention must keep working serially
        result = run_scheme_sweep(
            TrivialRankScheme(),
            sizes=(8,),
            graph_factory=lambda n, seed: build_graph("cycle", n, seed),
            seeds=(0,),
        )
        assert result.rows[0]["correct"]

    @pytest.mark.parametrize("backend,opener", [("json", ResultCache), ("sqlite", SQLiteResultStore)])
    def test_sweep_cache_reuse(self, tmp_path, backend, opener):
        kwargs = dict(sizes=(8, 16), graph_factory=GraphSpec("random", 0.1), seeds=(0, 1))
        first = run_scheme_sweep("trivial", cache_dir=tmp_path, cache_backend=backend, **kwargs)
        cache = opener(tmp_path)
        second = run_scheme_sweep("trivial", cache_dir=cache, **kwargs)
        assert cache.hits == 4
        assert json.dumps(first.rows) == json.dumps(second.rows)

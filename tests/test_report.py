"""Tests of the declarative report subsystem (`repro.report`).

The core guarantee is the determinism contract: a report is a pure
function of its spec.  The committed golden artifacts under
``tests/golden/report_smoke/`` pin the bytes of ``specs/smoke.toml``'s
output, and the equivalence tests regenerate them serial, parallel and
on the analytic backend — every variant must be byte-identical.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.report import (
    LowerBoundExperiment,
    ReportSpec,
    RobustnessExperiment,
    SweepExperiment,
    TradeoffExperiment,
    compile_tasks,
    generate_report,
    load_spec,
    spec_from_dict,
)
from repro.runner.tasks import GraphSpec

REPO = Path(__file__).resolve().parent.parent
SMOKE_SPEC = REPO / "specs" / "smoke.toml"
PAPER_SPEC = REPO / "specs" / "paper.toml"
ROBUSTNESS_SPEC = REPO / "specs" / "robustness_smoke.toml"
GOLDEN = REPO / "tests" / "golden" / "report_smoke"
ROBUSTNESS_GOLDEN = REPO / "tests" / "golden" / "robustness_report"


# ------------------------------------------------------------------ #
# spec parsing and validation
# ------------------------------------------------------------------ #


class TestSpecParsing:
    def test_smoke_spec_loads(self):
        spec = load_spec(SMOKE_SPEC)
        assert spec.title.startswith("Smoke report")
        assert spec.backend == "engine"
        assert [e.kind for e in spec.experiments] == [
            "sweep",
            "sweep",
            "tradeoff",
            "lowerbound",
        ]
        assert spec.source == "smoke.toml"

    def test_paper_spec_loads_and_names_new_families(self):
        spec = load_spec(PAPER_SPEC)
        families = {
            e.graph.family for e in spec.experiments if not isinstance(e, LowerBoundExperiment)
        }
        assert {"torus", "hypercube", "powerlaw", "geometric", "random"} <= families
        assert spec.backend == "analytic"

    def test_json_spec_equivalent_to_toml(self, tmp_path):
        data = {
            "title": "t",
            "defaults": {"backend": "analytic"},
            "experiment": [
                {"name": "s", "schemes": ["trivial"], "sizes": [8], "seeds": [0, 7]}
            ],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        spec = load_spec(path)
        assert spec.backend == "analytic"
        assert spec.experiments[0].seeds == (0, 7)

    def test_seeds_count_expands_to_range(self):
        spec = spec_from_dict(
            {
                "title": "t",
                "experiment": [
                    {"name": "s", "schemes": ["trivial"], "sizes": [8], "seeds": 3}
                ],
            }
        )
        assert spec.experiments[0].seeds == (0, 1, 2)

    @pytest.mark.parametrize(
        "mutation,needle",
        [
            ({"title": ""}, "title"),
            ({"defaults": {"backend": "quantum"}}, "backend"),
            ({"experiment": []}, "at least one"),
            ({"bogus_key": 1}, "bogus_key"),
        ],
    )
    def test_invalid_top_level_rejected(self, mutation, needle):
        data = {
            "title": "t",
            "experiment": [
                {"name": "s", "schemes": ["trivial"], "sizes": [8], "seeds": 1}
            ],
        }
        data.update(mutation)
        with pytest.raises(ValueError, match=needle):
            spec_from_dict(data)

    @pytest.mark.parametrize(
        "experiment,needle",
        [
            ({"name": "s", "schemes": ["nope"], "sizes": [8]}, "unknown scheme"),
            ({"name": "s", "baselines": ["nope"], "sizes": [8]}, "unknown baseline"),
            ({"name": "s", "schemes": ["trivial"], "sizes": []}, "sizes"),
            ({"name": "s", "schemes": ["trivial"], "sizes": [8], "typo": 1}, "typo"),
            ({"name": "s", "sizes": [8]}, "at least one scheme"),
            ({"name": "bad/name", "schemes": ["trivial"], "sizes": [8]}, "name"),
            ({"name": "s", "kind": "mystery"}, "mystery"),
            (
                {"name": "s", "schemes": ["trivial"], "sizes": [8],
                 "graph": {"family": "moebius"}},
                "family",
            ),
            ({"name": "s", "kind": "lowerbound", "h": 4, "i": 9}, "2 <= i"),
        ],
    )
    def test_invalid_experiment_rejected(self, experiment, needle):
        with pytest.raises(ValueError, match=needle):
            spec_from_dict({"title": "t", "experiment": [experiment]})

    def test_duplicate_experiment_names_rejected(self):
        e = {"name": "s", "schemes": ["trivial"], "sizes": [8]}
        with pytest.raises(ValueError, match="duplicate"):
            spec_from_dict({"title": "t", "experiment": [e, dict(e)]})

    def test_artifact_name_collision_rejected(self):
        # "lb" (lowerbound) writes lb_pigeonhole.csv; a sweep named
        # "lb_pigeonhole" would clobber it even though the names differ
        experiments = [
            {"name": "lb", "kind": "lowerbound", "h": 6, "i": 2},
            {"name": "lb_pigeonhole", "schemes": ["trivial"], "sizes": [8]},
        ]
        with pytest.raises(ValueError, match="already claims"):
            spec_from_dict({"title": "t", "experiment": experiments})

    def test_index_md_is_a_reserved_artifact_name(self):
        with pytest.raises(ValueError, match="already claims"):
            spec_from_dict(
                {
                    "title": "t",
                    "experiment": [{"name": "index", "schemes": ["trivial"], "sizes": [8]}],
                }
            )

    @pytest.mark.parametrize(
        "experiment",
        [
            {"name": "s", "schemes": ["trivial"], "sizes": [8], "root": [1]},
            {"name": "s", "kind": "tradeoff", "schemes": ["trivial"], "seed": "x"},
            {"name": "s", "kind": "lowerbound", "h": {"v": 4}},
        ],
    )
    def test_non_integer_fields_raise_valueerror_not_typeerror(self, experiment):
        # the CLI only maps ValueError to a clean exit-2 "error:" line
        with pytest.raises(ValueError, match="must be an integer"):
            spec_from_dict({"title": "t", "experiment": [experiment]})

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("title: t")
        with pytest.raises(ValueError, match=".toml or .json"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_spec(tmp_path / "nope.toml")


# ------------------------------------------------------------------ #
# task compilation
# ------------------------------------------------------------------ #


class TestCompile:
    def _spec(self, backend="engine"):
        return ReportSpec(
            title="t",
            backend=backend,
            experiments=(
                SweepExperiment(
                    name="s",
                    schemes=("trivial", "theorem3"),
                    baselines=("ghs",),
                    graph=GraphSpec("random", 0.1),
                    sizes=(8, 16),
                    seeds=(0, 1),
                ),
                TradeoffExperiment(
                    name="t6",
                    schemes=("trivial",),
                    baselines=(),
                    graph=GraphSpec("cycle"),
                    n=9,
                ),
                LowerBoundExperiment(name="lb", h=6, i=2),
            ),
        )

    def test_grid_shape_and_order(self):
        compiled = compile_tasks(self._spec())
        names = [name for name, _ in compiled]
        assert names == ["s", "t6", "lb"]
        sweep_tasks = compiled[0][1]
        # schemes-major, then sizes, then seeds; baselines appended
        assert len(sweep_tasks) == 2 * 2 * 2 + 1 * 2 * 2
        assert [t.target for t in sweep_tasks[:4]] == ["trivial"] * 4
        assert [(t.n, t.seed) for t in sweep_tasks[:4]] == [(8, 0), (8, 1), (16, 0), (16, 1)]
        assert all(t.kind == "baseline" for t in sweep_tasks[8:])
        assert compiled[1][1][0].n == 9
        assert compiled[2][1] == []  # lower bound is pure computation

    def test_backend_override_pins_schemes_not_baselines(self):
        compiled = compile_tasks(self._spec(), backend="analytic")
        sweep_tasks = compiled[0][1]
        assert all(t.backend == "analytic" for t in sweep_tasks if t.kind == "scheme")
        assert all(t.backend == "engine" for t in sweep_tasks if t.kind == "baseline")

    def test_every_task_is_cacheable(self):
        for _, tasks in compile_tasks(self._spec()):
            assert all(task.cacheable for task in tasks)


# ------------------------------------------------------------------ #
# the golden report: byte-identity across jobs and backends
# ------------------------------------------------------------------ #


def _artifact_map(directory: Path):
    return {p.name: p.read_bytes() for p in sorted(directory.iterdir()) if p.is_file()}


class TestGoldenReport:
    @pytest.fixture(scope="class")
    def smoke_spec(self):
        return load_spec(SMOKE_SPEC)

    def test_golden_directory_is_complete(self):
        names = set(_artifact_map(GOLDEN))
        assert names == {
            "curves.md",
            "curves.csv",
            "families.md",
            "families.csv",
            "tradeoff.md",
            "tradeoff.csv",
            "lowerbound.md",
            "lowerbound_pigeonhole.csv",
            "lowerbound_curve.csv",
            "index.md",
        }

    @pytest.mark.parametrize(
        "variant,kwargs",
        [
            ("serial-engine", {}),
            ("parallel", {"jobs": 2}),
            ("analytic", {"backend": "analytic"}),
        ],
    )
    def test_regenerated_report_matches_golden(self, smoke_spec, tmp_path, variant, kwargs):
        result = generate_report(smoke_spec, tmp_path / variant, **kwargs)
        assert result.all_correct
        regenerated = _artifact_map(tmp_path / variant)
        golden = _artifact_map(GOLDEN)
        assert set(regenerated) == set(golden)
        for name in sorted(golden):
            assert regenerated[name] == golden[name], f"{variant}: {name} drifted"

    def test_cold_vs_warm_cache_identical(self, smoke_spec, tmp_path):
        cache = tmp_path / "cache"
        cold = generate_report(smoke_spec, tmp_path / "cold", cache_dir=str(cache))
        warm = generate_report(smoke_spec, tmp_path / "warm", cache_dir=str(cache))
        assert cold.all_correct and warm.all_correct
        assert _artifact_map(tmp_path / "cold") == _artifact_map(tmp_path / "warm")
        # the default cache backend is the sharded SQLite store
        assert len(list(cache.glob("shard-*.sqlite"))) > 0
        assert list(cache.glob("*.json")) == []

    def test_resumed_report_matches_golden_and_reexecutes_nothing(
        self, smoke_spec, tmp_path, capsys
    ):
        """A killed-and-resumed report: same bytes, zero recomputation."""
        cache = tmp_path / "cache"
        first = generate_report(
            smoke_spec, tmp_path / "first", cache_dir=str(cache), resume=True
        )
        resumed = generate_report(
            smoke_spec, tmp_path / "resumed", cache_dir=str(cache), resume=True,
            progress=True,
        )
        assert first.all_correct and resumed.all_correct
        golden = _artifact_map(GOLDEN)
        assert _artifact_map(tmp_path / "first") == golden
        assert _artifact_map(tmp_path / "resumed") == golden
        # every simulator task of the resumed run came from the checkpoint
        err = capsys.readouterr().err
        total = resumed.tasks_run
        assert f"{total}/{total} done ({total} cached, {total} resumed)" in err
        manifests = list((cache / "manifests").glob("run-*.json"))
        assert len(manifests) == 1
        assert json.loads(manifests[0].read_text())["finished"] is True


# ------------------------------------------------------------------ #
# the robustness kind: spec validation and the degradation golden
# ------------------------------------------------------------------ #


class TestRobustnessSpec:
    def test_robustness_smoke_spec_loads(self):
        spec = load_spec(ROBUSTNESS_SPEC)
        assert [e.kind for e in spec.experiments] == ["robustness"]
        exp = spec.experiments[0]
        assert isinstance(exp, RobustnessExperiment)
        assert exp.deltas == (0, 1, 3)
        assert exp.crash_rates == (0.0, 0.125, 0.25)
        assert exp.sizes == (64, 256)

    def test_grid_covers_every_fault_cell_on_the_engine_backend(self):
        spec = load_spec(ROBUSTNESS_SPEC)
        exp = spec.experiments[0]
        (_, tasks), = compile_tasks(spec)
        targets = len(exp.schemes) + len(exp.baselines)
        grid = len(exp.sizes) * len(exp.deltas) * len(exp.crash_rates) * len(exp.seeds)
        assert len(tasks) == targets * grid
        # faults only exist on the engine backend, so the compiler pins it
        assert all(t.backend == "engine" for t in tasks)
        cells = {
            (t.target, t.n, t.fault.delta if t.fault else 0,
             t.fault.crash_rate if t.fault else 0.0)
            for t in tasks
        }
        assert len(cells) == len(tasks)
        # the null corner normalises to a fault-free task: cache hits are
        # shared with plain sweeps of the same scheme
        assert any(t.fault is None for t in tasks)

    @pytest.mark.parametrize(
        "mutation,needle",
        [
            ({"deltas": []}, "deltas"),
            ({"deltas": [-1]}, "deltas"),
            ({"deltas": [True]}, "deltas"),
            ({"crash_rates": []}, "crash_rates"),
            ({"crash_rates": [0.5]}, "crash_rates"),
            ({"recovery": 0}, "recovery"),
            ({"churn": -1}, "churn"),
            ({"problem": "leader", "schemes": ["flag"], "churn": 1}, "MST"),
        ],
    )
    def test_invalid_robustness_fields_rejected(self, mutation, needle):
        experiment = {
            "name": "r",
            "kind": "robustness",
            "schemes": ["trivial"],
            "sizes": [8],
            "seeds": 1,
        }
        experiment.update(mutation)
        with pytest.raises(ValueError, match=needle):
            spec_from_dict({"title": "t", "experiment": [experiment]})


class TestRobustnessGolden:
    """The degradation report is a pure function of its spec.

    These are the pytest half of the CI golden diff: the committed
    artifacts under ``tests/golden/robustness_report/`` pin the exact
    bytes, and serial / parallel / warm-cache regenerations must all
    reproduce them.
    """

    @pytest.fixture(scope="class")
    def robustness_spec(self):
        return load_spec(ROBUSTNESS_SPEC)

    def test_golden_directory_is_complete(self):
        names = set(_artifact_map(ROBUSTNESS_GOLDEN))
        assert names == {"index.md", "mst_degradation.md", "mst_degradation.csv"}

    @pytest.mark.parametrize(
        "variant,kwargs",
        [("serial", {}), ("parallel", {"jobs": 2})],
    )
    def test_regenerated_report_matches_golden(
        self, robustness_spec, tmp_path, variant, kwargs
    ):
        result = generate_report(robustness_spec, tmp_path / variant, **kwargs)
        assert result.all_correct
        regenerated = _artifact_map(tmp_path / variant)
        golden = _artifact_map(ROBUSTNESS_GOLDEN)
        assert set(regenerated) == set(golden)
        for name in sorted(golden):
            assert regenerated[name] == golden[name], f"{variant}: {name} drifted"

    def test_cold_vs_warm_cache_identical(self, robustness_spec, tmp_path):
        cache = tmp_path / "cache"
        cold = generate_report(robustness_spec, tmp_path / "cold", cache_dir=str(cache))
        warm = generate_report(robustness_spec, tmp_path / "warm", cache_dir=str(cache))
        assert cold.all_correct and warm.all_correct
        assert _artifact_map(tmp_path / "cold") == _artifact_map(ROBUSTNESS_GOLDEN)
        assert _artifact_map(tmp_path / "warm") == _artifact_map(ROBUSTNESS_GOLDEN)


# ------------------------------------------------------------------ #
# the CLI command
# ------------------------------------------------------------------ #


class TestSweepActualSize:
    def test_rounding_family_sweep_rows_use_real_sizes(self, tmp_path):
        # hypercube rounds 10 and 20 to 8 and 16: the rows (and the
        # log-derived columns and bounds computed from n) must say so
        spec = spec_from_dict(
            {
                "title": "t",
                "experiment": [
                    {
                        "name": "hc",
                        "kind": "sweep",
                        "schemes": ["trivial"],
                        "graph": {"family": "hypercube"},
                        "sizes": [10, 20],
                        "seeds": 1,
                    }
                ],
            }
        )
        result = generate_report(spec, tmp_path)
        assert result.all_correct
        lines = (tmp_path / "hc.csv").read_text().splitlines()
        assert [row.split(",")[1] for row in lines[1:]] == ["8", "16"]


class TestTradeoffActualSize:
    def test_rounding_family_renders_the_real_instance_size(self, tmp_path):
        # hypercube rounds a requested n=100 to 128: the artifact must
        # report 128 everywhere, not the requested size
        spec = spec_from_dict(
            {
                "title": "t",
                "experiment": [
                    {
                        "name": "hc",
                        "kind": "tradeoff",
                        "n": 100,
                        "schemes": ["trivial"],
                        "graph": {"family": "hypercube"},
                    }
                ],
            }
        )
        result = generate_report(spec, tmp_path)
        assert result.all_correct
        md = (tmp_path / "hc.md").read_text()
        assert "n = 128" in md and "n = 100" not in md
        csv_rows = (tmp_path / "hc.csv").read_text().splitlines()
        assert csv_rows[1].split(",")[1] == "128"


class TestReportCommand:
    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "out"
        code = main(["report", "--spec", str(SMOKE_SPEC), "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "all correct: True" in captured.err
        listed = [Path(line).name for line in captured.out.splitlines() if line]
        assert "index.md" in listed and "curves.md" in listed
        assert (out / "index.md").exists()

    def test_report_command_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('title = "t"\n')  # no experiments
        code = main(["report", "--spec", str(bad), "--out", str(tmp_path / "o")])
        assert code == 2
        assert "error" in capsys.readouterr().err

"""Tests of the synchronous message-passing engine."""

import pytest

from repro.core.bits import BitString
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.algorithm import FunctionalProgram, NodeProgram
from repro.simulator.engine import SyncEngine, run_sync
from repro.simulator.message import estimate_bits
from repro.simulator.network import Network
from repro.simulator.node import NodeContext


class _Silent(NodeProgram):
    """Sets its output immediately and never communicates (a 0-round algorithm)."""

    def init(self, ctx):
        ctx.halt(ctx.degree)

    def on_round(self, ctx, inbox):  # pragma: no cover - never reached
        ctx.halt()


class _PingPong(NodeProgram):
    """Each node sends its id on every port, echoes what it receives once, then stops."""

    def init(self, ctx):
        for p in ctx.ports():
            ctx.send(p, ctx.node_id)

    def on_round(self, ctx, inbox):
        if ctx.round == 1:
            ctx.set_output(sorted(inbox.values()))
            for p in inbox:
                ctx.send(p, ("ack", ctx.node_id))
        else:
            ctx.halt()


class _Forever(NodeProgram):
    """Never halts (used to test the round limit)."""

    def init(self, ctx):
        ctx.send(0, 1)

    def on_round(self, ctx, inbox):
        ctx.send(0, 1)


class _SendAndHalt(NodeProgram):
    """Every node sends on all its ports and immediately halts.

    Regression case for the final-flush accounting: all messages are in
    flight at the moment the last node halts, so without the flush round
    their bits would vanish from the CONGEST totals.
    """

    def init(self, ctx):
        for p in ctx.ports():
            ctx.send(p, 5)
        ctx.halt(ctx.node_id)

    def on_round(self, ctx, inbox):  # pragma: no cover - never reached
        ctx.halt()


class _SilentSpinner(NodeProgram):
    """Neither halts nor sends: the engine cannot prove it is stuck."""

    def init(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        pass


class TestEstimateBits:
    def test_primitives(self):
        assert estimate_bits(None) == 0
        assert estimate_bits(True) == 1
        assert estimate_bits(0) == 2
        assert estimate_bits(7) == 4  # 3 magnitude bits + sign
        assert estimate_bits(1.5) == 32
        assert estimate_bits("ab") == 16
        assert estimate_bits(b"ab") == 16
        assert estimate_bits(BitString([1, 0, 1])) == 3

    def test_containers(self):
        assert estimate_bits((1, 2)) == (2 + 2) + (2 + 3)
        assert estimate_bits([True]) == 3
        assert estimate_bits({1: True}) == 2 + 2 + 1

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            estimate_bits(object())


class TestNetwork:
    def test_wiring_and_delivery(self):
        g = path_graph(3, seed=0)
        net = Network(g)
        # node 1 is in the middle: its two ports reach nodes 0 and 2
        endpoints = {net.endpoint(1, p)[0] for p in range(net.degree(1))}
        assert endpoints == {0, 2}
        inboxes = net.deliver({0: {0: "x"}})
        ((receiver, ports),) = inboxes.items()
        assert receiver == 1 and list(ports.values()) == ["x"]


class TestNodeContext:
    def test_send_validation(self):
        ctx = NodeContext(path_graph(2, seed=0).local_view(0))
        ctx.send(0, "hello")
        with pytest.raises(RuntimeError):
            ctx.send(0, "again")  # one message per port per round
        with pytest.raises(ValueError):
            ctx.send(5, "nope")
        ctx.halt("done")
        with pytest.raises(RuntimeError):
            ctx.send(0, "after halt")

    def test_halt_preserves_existing_output(self):
        ctx = NodeContext(path_graph(2, seed=0).local_view(0))
        ctx.set_output(42)
        ctx.halt()
        assert ctx.output == 42
        ctx2 = NodeContext(path_graph(2, seed=0).local_view(0))
        ctx2.halt(7)
        assert ctx2.output == 7


class TestEngine:
    def test_zero_round_algorithm(self):
        g = star_graph(6, seed=0)
        result = run_sync(g, lambda ctx: _Silent())
        assert result.completed
        assert result.metrics.rounds == 0
        assert result.metrics.total_messages == 0
        assert result.outputs[0] == 5  # the hub's degree

    def test_message_exchange_and_round_count(self):
        g = cycle_graph(5, seed=0)
        result = run_sync(g, lambda ctx: _PingPong())
        assert result.completed
        assert result.metrics.rounds == 2
        # every node heard both neighbours' ids in round 1
        for u in range(5):
            assert len(result.outputs[u]) == 2
        assert result.metrics.total_messages == 2 * 2 * 5  # two rounds of full exchange

    def test_metrics_accounting(self):
        g = path_graph(2, seed=0)
        result = run_sync(g, lambda ctx: _PingPong())
        m = result.metrics
        assert m.total_message_bits > 0
        assert m.max_message_bits <= m.total_message_bits
        assert m.max_edge_bits_per_round >= m.max_message_bits
        assert len(m.messages_per_round) == m.rounds
        assert m.congest_factor() > 0
        d = m.as_dict()
        assert d["rounds"] == m.rounds and d["n"] == 2

    def test_round_limit(self):
        g = path_graph(2, seed=0)
        result = run_sync(g, lambda ctx: _Forever(), max_rounds=10)
        assert not result.completed
        assert result.metrics.rounds == 10
        assert result.missing_outputs == 2

    def test_advice_reaches_nodes(self):
        g = path_graph(3, seed=0)
        advice = {u: BitString.from_uint(u, 4) for u in range(3)}

        def factory(ctx):
            return FunctionalProgram(init_fn=lambda c, s: c.halt(c.advice.to_uint()))

        result = run_sync(g, factory, advice=advice)
        assert result.outputs == {0: 0, 1: 1, 2: 2}

    def test_functional_program_round_fn(self):
        g = path_graph(2, seed=0)

        def init(ctx, state):
            ctx.send(0, ctx.node_id)

        def round_fn(ctx, inbox, state):
            ctx.halt(list(inbox.values())[0])

        result = run_sync(g, lambda ctx: FunctionalProgram(init, round_fn))
        assert result.outputs == {0: 1, 1: 0}

    def test_determinism(self):
        g = cycle_graph(7, seed=1)
        r1 = run_sync(g, lambda ctx: _PingPong())
        r2 = run_sync(g, lambda ctx: _PingPong())
        assert r1.outputs == r2.outputs
        assert r1.metrics.as_dict() == r2.metrics.as_dict()

    def test_zero_round_stop_reason(self):
        result = run_sync(star_graph(4, seed=0), lambda ctx: _Silent())
        assert result.stop_reason == "completed"
        assert result.metrics.undelivered_messages == 0

    def test_final_round_messages_are_accounted(self):
        # all nodes halt in init while sending: 2 directed messages per
        # edge are in flight with nobody left to receive them
        g = path_graph(3, seed=0)
        result = run_sync(g, lambda ctx: _SendAndHalt())
        assert result.completed
        assert result.stop_reason == "completed"
        m = result.metrics
        # path on 3 nodes: 2 edges -> 4 directed messages, each 5 -> 4 bits
        assert m.total_messages == 4
        assert m.total_message_bits == 4 * 4
        assert m.max_edge_bits_per_round == 4
        assert m.undelivered_messages == 4
        # the flush occupies one wire round
        assert m.rounds == 1
        assert m.messages_per_round == [4]
        # but the outputs are the ones set before halting
        assert result.outputs == {u: g.node_id(u) for u in range(3)}

    def test_send_and_halt_with_tracer_matches_metrics(self):
        from repro.simulator.trace import Tracer

        tracer = Tracer()
        result = run_sync(path_graph(3, seed=0), lambda ctx: _SendAndHalt(), tracer=tracer)
        assert result.metrics.total_messages == 4
        assert tracer.summary()["total_messages"] == 4
        assert tracer.summary()["total_bits"] == result.metrics.total_message_bits
        # all round-0 halts share one round record (not one record per node)
        assert tracer.num_rounds() == 2
        assert tracer.rounds[0].halted == [0, 1, 2]

    def test_non_halting_non_sending_program_reports_max_rounds(self):
        result = run_sync(path_graph(2, seed=0), lambda ctx: _SilentSpinner(), max_rounds=7)
        assert not result.completed
        assert result.stop_reason == "max_rounds"
        assert result.metrics.rounds == 7
        assert result.missing_outputs == 2
        assert result.metrics.total_messages == 0

    def test_round_limit_stop_reason(self):
        result = run_sync(path_graph(2, seed=0), lambda ctx: _Forever(), max_rounds=5)
        assert result.stop_reason == "max_rounds"
        assert not result.completed

    def test_flush_runs_even_at_the_round_budget_boundary(self):
        # all nodes halt (sending) exactly when the budget is exhausted:
        # the accounting flush is not a computation round, so it must
        # still run — otherwise the final bits vanish and the result
        # would claim completed=True with stop_reason="max_rounds"
        class SendThreeRounds(NodeProgram):
            def init(self, ctx):
                ctx.send(0, 1)

            def on_round(self, ctx, inbox):
                ctx.send(0, 1)
                if ctx.round == 3:
                    ctx.halt(ctx.node_id)

        tight = run_sync(path_graph(2, seed=0), lambda ctx: SendThreeRounds(), max_rounds=3)
        loose = run_sync(path_graph(2, seed=0), lambda ctx: SendThreeRounds(), max_rounds=10)
        assert tight.completed and tight.stop_reason == "completed"
        assert tight.metrics.total_messages == loose.metrics.total_messages == 8
        assert tight.metrics.undelivered_messages == 2

    def test_tracer_halt_records(self):
        from repro.simulator.trace import Tracer

        tracer = Tracer()
        result = run_sync(cycle_graph(5, seed=0), lambda ctx: _PingPong(), tracer=tracer)
        assert result.completed
        # every node halted in round 2, and the tracer saw each of them
        for u in range(5):
            assert tracer.halt_round_of(u) == 2

    def test_per_node_dispatch_binding(self):
        # regression for the late-binding lambda bug: every node's program
        # must be invoked with *its own* context, so outputs are per-node
        g = star_graph(6, seed=0)

        class Who(NodeProgram):
            def init(self, ctx):
                ctx.halt((ctx.node_id, ctx.degree))

            def on_round(self, ctx, inbox):  # pragma: no cover
                ctx.halt()

        result = run_sync(g, lambda ctx: Who())
        assert len({out for out in result.outputs.values()}) >= 2
        assert result.outputs[0][1] == 5  # the hub's degree, not a neighbour's

    def test_halted_nodes_do_not_act(self):
        g = path_graph(2, seed=0)

        class HaltEarly(NodeProgram):
            def init(self, ctx):
                if ctx.node_id == 0:
                    ctx.halt("early")
                else:
                    ctx.send(0, "to the halted node")

            def on_round(self, ctx, inbox):
                ctx.halt(("late", tuple(inbox.values())))

        result = run_sync(g, lambda ctx: HaltEarly())
        assert result.outputs[0] == "early"
        assert result.outputs[1] == ("late", ())


class TestIdleSchedulingEdgeCases:
    """The idle fast-forward's corner cases, pinned directly.

    These paths were previously exercised only through golden reports
    (the GHS baseline is the heaviest idle_until user); here each edge
    is hit with a purpose-built two-node program.
    """

    def test_idle_until_a_past_round_is_a_no_op(self):
        # a hint for a round that already passed must not skip anything:
        # the node keeps being invoked every round
        invocations = []

        class StaleHint(NodeProgram):
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                invocations.append((ctx.node_id, ctx.round))
                ctx.idle_until(max(ctx.round - 3, 0))  # always in the past
                if ctx.round == 4:
                    ctx.halt(ctx.round)

        result = run_sync(path_graph(2, seed=0), lambda ctx: StaleHint())
        assert result.completed
        assert [r for node, r in invocations if node == 0] == [1, 2, 3, 4]
        assert result.metrics.rounds == 4

    def test_idle_hint_in_init_is_not_honoured(self):
        # the engine samples the wake hint after on_round invocations
        # only; a hint set during init does not survive into round 1
        # (programs with fixed schedules set their first hint in round 1,
        # exactly as the GHS baseline does)
        rounds_seen = []

        class HintInInit(NodeProgram):
            def init(self, ctx):
                ctx.idle_until(10)

            def on_round(self, ctx, inbox):
                rounds_seen.append(ctx.round)
                ctx.halt(ctx.round)

        result = run_sync(path_graph(2, seed=0), lambda ctx: HintInInit())
        assert result.completed
        assert rounds_seen == [1, 1]  # both nodes invoked immediately

    def test_idle_skip_charges_exactly_the_skipped_rounds(self):
        class SleepThenHalt(NodeProgram):
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.idle_until(10)
                else:
                    assert ctx.round == 10  # never invoked during the skip
                    ctx.halt(ctx.round)

        result = run_sync(path_graph(2, seed=0), lambda ctx: SleepThenHalt())
        assert result.completed
        assert result.outputs == {0: 10, 1: 10}
        m = result.metrics
        assert m.rounds == 10
        assert m.total_messages == 0
        # the skipped rounds appear as explicit zero-message entries
        assert m.messages_per_round == [0] * 10

    def test_idle_across_the_final_flush(self):
        # one node sends and halts immediately; the other sleeps past the
        # flush round.  The flush must charge the undelivered bits in wire
        # round 1 and the sleeper must still wake at its hinted round.
        class SendOrSleep(NodeProgram):
            def init(self, ctx):
                if ctx.node_id == 0:
                    for p in ctx.ports():
                        ctx.send(p, 7)
                    ctx.halt("sender")
                else:
                    ctx.idle_until(5)

            def on_round(self, ctx, inbox):
                if inbox:
                    # the in-flight message wakes the sleeper in round 1,
                    # before its hinted round
                    ctx.halt(("woken", ctx.round))
                else:  # pragma: no cover - the wake-on-message path wins
                    ctx.halt(("timer", ctx.round))

        result = run_sync(path_graph(2, seed=0), lambda ctx: SendOrSleep())
        assert result.completed
        assert result.outputs[1] == ("woken", 1)
        assert result.metrics.undelivered_messages == 0

    def test_idle_rounds_and_undelivered_messages_compose(self):
        # idle skip first, then a flush with undelivered bits: both
        # record_idle_rounds and record_undelivered must land in the
        # metrics of the same run
        class LateSender(NodeProgram):
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.idle_until(4)
                    return
                # both nodes wake in round 4, send, and halt: the messages
                # are in flight with nobody left to read them
                for p in ctx.ports():
                    ctx.send(p, 9)
                ctx.halt(ctx.round)

        result = run_sync(path_graph(2, seed=0), lambda ctx: LateSender())
        assert result.completed
        m = result.metrics
        # round 1 computes the hint, rounds 2-3 idle, round 4 computes,
        # round 5 is the flush
        assert m.rounds == 5
        assert m.messages_per_round == [0, 0, 0, 0, 2]
        assert m.total_messages == 2
        assert m.undelivered_messages == 2

    def test_adversary_engine_idle_fast_forward_matches_sync(self):
        # the adversary advances its logical and physical clocks together
        # through an idle skip; at the null fault the skip is identical
        from repro.simulator.adversary import AdversaryEngine

        class SleepPingHalt(NodeProgram):
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.idle_until(6)
                elif ctx.round == 6:
                    for p in ctx.ports():
                        ctx.send(p, ctx.node_id)
                    ctx.idle_until(8)
                else:
                    ctx.halt(sorted(inbox.values()))

        g = cycle_graph(4, seed=1)
        sync = SyncEngine(g, lambda ctx: SleepPingHalt()).run()
        null = AdversaryEngine(g, lambda ctx: SleepPingHalt()).run()
        assert null == sync
        assert sync.metrics.rounds == 7

"""Shared fixtures: a zoo of small instances exercising varied topologies."""

from __future__ import annotations

import pytest

from repro.graphs import (
    build_gn,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_graph,
    random_geometric_graph,
    star_graph,
    torus_graph,
)


def _zoo():
    """(name, graph, root) triples covering the topologies used throughout."""
    return [
        ("path8", path_graph(8, seed=11), 0),
        ("path8-mid-root", path_graph(8, seed=11), 4),
        ("cycle9", cycle_graph(9, seed=12), 2),
        ("star10", star_graph(10, seed=13), 0),
        ("star10-leaf-root", star_graph(10, seed=13), 3),
        ("complete12", complete_graph(12, seed=14), 5),
        ("grid4x5", grid_graph(4, 5, seed=15), 7),
        ("torus4x4", torus_graph(4, 4, seed=16), 0),
        ("caterpillar", caterpillar_graph(6, 2, seed=17), 1),
        ("rand32", random_connected_graph(32, 0.08, seed=18), 9),
        ("rand75", random_connected_graph(75, 0.05, seed=19), 74),
        ("geometric40", random_geometric_graph(40, seed=20), 3),
        ("gn-h6", build_gn(6).graph, 0),
        ("duplicates", random_connected_graph(30, 0.1, seed=21, weight_mode="integer", weight_range=5), 0),
    ]


@pytest.fixture(scope="session")
def graph_zoo():
    """All zoo instances."""
    return _zoo()


@pytest.fixture(scope="session")
def distinct_weight_zoo():
    """Zoo instances whose edge weights are pairwise distinct."""
    return [(name, g, r) for name, g, r in _zoo() if g.has_distinct_weights()]


@pytest.fixture(scope="session")
def small_random_graphs():
    """A list of small random connected graphs with varied density and seeds."""
    graphs = []
    for n in (5, 9, 16, 27, 41):
        for seed in (0, 1):
            graphs.append(random_connected_graph(n, 0.12, seed=seed))
    return graphs

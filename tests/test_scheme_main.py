"""Tests of Theorem 3: the ``(O(1), O(log n))``-advising scheme (main result)."""

import math

import pytest

from repro.core.oracle import run_scheme
from repro.core.scheme_main import (
    ShortAdviceScheme,
    num_boruvka_phases,
    phase_window_rounds,
    schedule_prefix_rounds,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.weighted_graph import PortNumberedGraph


class TestSchedule:
    def test_num_phases_values(self):
        assert num_boruvka_phases(2) == 0
        assert num_boruvka_phases(3) == 1
        assert num_boruvka_phases(4) == 1
        assert num_boruvka_phases(16) == 2
        assert num_boruvka_phases(17) == 3
        assert num_boruvka_phases(256) == 3
        assert num_boruvka_phases(1024) == 4
        assert num_boruvka_phases(100000) == 5

    def test_windows_and_prefix(self):
        assert phase_window_rounds(1) == 4
        assert phase_window_rounds(3) == 16
        assert schedule_prefix_rounds(0) == 0
        assert schedule_prefix_rounds(3) == 4 + 8 + 16

    def test_round_bound_is_o_log_n(self):
        scheme = ShortAdviceScheme()
        # the declared bound grows like log n: ratio to log2(n) stays bounded
        ratios = [scheme.round_bound(n) / math.log2(n) for n in (2**6, 2**10, 2**14, 2**18)]
        assert max(ratios) < 16


class TestCorrectness:
    def test_correct_on_zoo(self, graph_zoo):
        scheme = ShortAdviceScheme()
        for name, graph, root in graph_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.correct, f"{name}: {report.check.reason}"
            assert report.check.root == root

    def test_correct_with_duplicate_weights(self):
        for seed in range(4):
            graph = random_connected_graph(
                60, 0.08, seed=seed, weight_mode="integer", weight_range=3
            )
            report = run_scheme(ShortAdviceScheme(), graph, root=seed)
            assert report.correct, report.check.reason

    def test_correct_across_roots(self):
        graph = random_connected_graph(50, 0.08, seed=11)
        for root in (0, 13, 49):
            report = run_scheme(ShortAdviceScheme(), graph, root=root)
            assert report.correct and report.check.root == root

    def test_tiny_graphs(self):
        for n in (1, 2, 3, 4, 5):
            if n == 1:
                graph = PortNumberedGraph(1, [])
            else:
                graph = path_graph(n, seed=n)
            report = run_scheme(ShortAdviceScheme(), graph, root=0)
            assert report.correct, f"n={n}: {report.check.reason}"

    def test_structured_topologies_medium(self):
        for graph, root in [
            (complete_graph(32, seed=3), 4),
            (cycle_graph(100, seed=4), 50),
            (star_graph(64, seed=5), 0),
            (star_graph(64, seed=5), 9),
        ]:
            report = run_scheme(ShortAdviceScheme(), graph, root=root)
            assert report.correct, report.check.reason


class TestBounds:
    def test_max_advice_is_constant_in_n(self):
        """The defining property of Theorem 3: max advice does not grow with n."""
        scheme = ShortAdviceScheme()
        maxima = []
        for n in (32, 128, 512, 2048):
            graph = random_connected_graph(n, 6 / n, seed=1)
            maxima.append(scheme.compute_advice(graph, root=0).stats().max_bits)
        assert max(maxima) <= scheme.advice_bound_bits(0)
        # no growth between the two largest sizes
        assert maxima[-1] <= maxima[-2] + 1

    def test_rounds_within_declared_and_paper_bounds(self):
        scheme = ShortAdviceScheme()
        for n in (32, 128, 512):
            graph = random_connected_graph(n, 6 / n, seed=2)
            report = run_scheme(scheme, graph, root=0)
            assert report.correct
            assert report.rounds <= scheme.round_bound(n)
            assert report.rounds <= ShortAdviceScheme.paper_round_bound(n) + 10

    def test_congest_factor_stays_bounded(self):
        """Messages stay O(log n) bits per edge per round."""
        scheme = ShortAdviceScheme()
        factors = []
        for n in (64, 256, 1024):
            graph = random_connected_graph(n, 5 / n, seed=3)
            report = run_scheme(scheme, graph, root=0)
            assert report.correct
            factors.append(report.metrics.congest_factor())
        assert max(factors) < 20
        # the factor must not blow up with n (it should mildly shrink or stay flat)
        assert factors[-1] <= factors[0] * 2

    def test_capacity_packing_uses_smallest_feasible_cap(self):
        scheme = ShortAdviceScheme()
        graph = random_connected_graph(200, 0.03, seed=4)
        scheme.compute_advice(graph, root=0)
        assert scheme.last_capacity == 10  # the first candidate always suffices here

    def test_every_node_gets_header_bits(self):
        scheme = ShortAdviceScheme()
        graph = random_connected_graph(40, 0.1, seed=5)
        advice = scheme.compute_advice(graph, root=0)
        for u in range(graph.n):
            assert advice.bits_of(u) >= 6  # 4-bit phase field + collect flag + final flag

    def test_final_bits_cover_each_fragment_root(self):
        """After the Borůvka phases every fragment root's parent rank is distributed."""
        from repro.mst.boruvka import boruvka_trace

        scheme = ShortAdviceScheme()
        graph = random_connected_graph(120, 0.04, seed=6)
        phases = num_boruvka_phases(graph.n)
        trace = boruvka_trace(graph, root=0)
        final_bits, collect = scheme._assign_final_bits(graph, trace, phases)
        partition = trace.partition_before_phase(phases + 1)
        for f in range(partition.num_fragments):
            r_f = partition.root_of(f)
            width = max(1, graph.degree(r_f).bit_length())
            holders = [u for u in partition.members[f] if u in final_bits]
            assert len(holders) == width
            assert collect.get(r_f, False)

"""Tests of the Theorem-1 graph family ``G_n`` and its fooling variants."""

import math

import pytest

from repro.graphs.lowerbound_family import (
    average_advice_lower_bound_bits,
    build_gn,
    edge_class,
    fooling_family,
    spine_edges,
    weight_class_bounds,
)
from repro.mst.kruskal import kruskal_mst
from repro.mst.verify import unique_mst_edge_ids


class TestConstruction:
    def test_weight_classes_are_decreasing_and_disjoint(self):
        omega = 12
        previous_low = None
        for i in range(1, 6):
            a, b = weight_class_bounds(i, omega)
            assert a <= b
            assert b - a == omega - 1
            if previous_low is not None:
                assert b < previous_low  # class i+1 sits strictly below class i
            previous_low = a

    def test_weight_class_errors(self):
        with pytest.raises(ValueError):
            weight_class_bounds(0, 10)
        with pytest.raises(ValueError):
            weight_class_bounds(1, 1)

    def test_edge_class(self):
        assert edge_class(3, 4) == 4   # spine edge {u_3, u_4}
        assert edge_class(3, 7) == 3   # chord
        assert edge_class(7, 3) == 3
        with pytest.raises(ValueError):
            edge_class(2, 2)

    @pytest.mark.parametrize("h", [2, 3, 5, 8, 12])
    def test_shape(self, h):
        inst = build_gn(h)
        g = inst.graph
        g.validate()
        assert g.n == 2 * h
        # two cliques plus the bridge
        assert g.m == h * (h - 1) + 1
        assert g.is_connected()
        # the bridge has weight zero and joins u_1 with v_1
        bridge = g.edge_between(inst.u(1), inst.v(1))
        assert bridge is not None and bridge.weight == 0.0

    def test_all_policies_respect_class_ranges(self):
        for policy in ("distinct", "low", "random"):
            inst = build_gn(7, policy=policy, seed=3)
            g = inst.graph
            for e in g.edges():
                if {e.u, e.v} == {inst.u(1), inst.v(1)}:
                    continue
                if e.u < inst.h:
                    i, j = e.u + 1, e.v + 1
                else:
                    i, j = e.u - inst.h + 1, e.v - inst.h + 1
                lo, hi = weight_class_bounds(edge_class(i, j), inst.omega)
                assert lo <= e.weight <= hi

    def test_omega_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_gn(10, omega=3)


class TestUniqueSpineMST:
    @pytest.mark.parametrize("h", [3, 5, 8])
    @pytest.mark.parametrize("policy", ["distinct", "low", "random"])
    def test_mst_is_the_spine(self, h, policy):
        inst = build_gn(h, policy=policy, seed=1)
        mst = kruskal_mst(inst.graph)
        assert sorted(mst) == inst.expected_mst_edge_ids()

    @pytest.mark.parametrize("h", [3, 5, 8])
    def test_mst_is_unique_even_with_duplicate_weights(self, h):
        # the "low" policy duplicates weights inside every class on purpose
        inst = build_gn(h, policy="low")
        unique, mst = unique_mst_edge_ids(inst.graph)
        assert unique
        assert sorted(mst) == inst.expected_mst_edge_ids()

    def test_spine_edges_count(self):
        h = 6
        edges = spine_edges(h)
        assert len(edges) == 2 * h - 1  # (h-1) per clique plus the bridge


class TestFoolingFamily:
    @pytest.mark.parametrize("h,i", [(6, 2), (6, 4), (8, 3), (10, 5)])
    def test_premises(self, h, i):
        variants = fooling_family(h, i)
        assert len(variants) == h - i
        target_views = {v.instance.graph.local_view(v.target_node) for v in variants}
        assert len(target_views) == 1, "the adversary must not change the target's view"
        ports = [v.correct_parent_port for v in variants]
        assert len(set(ports)) == len(ports), "every variant needs a different answer"

    def test_every_variant_has_the_spine_mst(self):
        for v in fooling_family(7, 3):
            unique, mst = unique_mst_edge_ids(v.instance.graph)
            assert unique
            assert sorted(mst) == v.instance.expected_mst_edge_ids()

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            fooling_family(6, 1)
        with pytest.raises(ValueError):
            fooling_family(6, 6)


class TestAccounting:
    def test_lower_bound_grows_logarithmically(self):
        values = [average_advice_lower_bound_bits(h) for h in (8, 32, 128, 512)]
        assert all(b > a for a, b in zip(values, values[1:]))
        # Theta(log h): the value at 512 is within a constant factor of log2(512)/2
        assert values[-1] > math.log2(512) / 4

    def test_degenerate_sizes(self):
        assert average_advice_lower_bound_bits(2) == 0.0

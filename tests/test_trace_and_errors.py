"""Tests of execution tracing, engine error wrapping and failure injection."""

import pytest

from repro.core.bits import BitString, BitWriter
from repro.core.oracle import run_scheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.core.verification import check_outputs
from repro.graphs.generators import cycle_graph, path_graph, random_connected_graph
from repro.simulator.algorithm import NodeProgram
from repro.simulator.engine import AlgorithmError, run_sync
from repro.simulator.trace import Tracer


class _Broken(NodeProgram):
    """A node program that crashes in a specific round."""

    def init(self, ctx):
        ctx.send(0, 1)

    def on_round(self, ctx, inbox):
        if ctx.round == 2 and ctx.node_id == 1:
            raise KeyError("boom")
        ctx.send(0, 1)


class TestAlgorithmError:
    def test_wraps_exception_with_node_and_round(self):
        g = path_graph(3, seed=0)
        with pytest.raises(AlgorithmError) as excinfo:
            run_sync(g, lambda ctx: _Broken(), max_rounds=10)
        err = excinfo.value
        assert err.node == 1
        assert err.round_number == 2
        assert isinstance(err.original, KeyError)
        assert "node 1" in str(err) and "round 2" in str(err)


class TestTracer:
    def test_traces_a_scheme_run(self):
        graph = random_connected_graph(30, 0.1, seed=5)
        scheme = ShortAdviceScheme()
        advice = scheme.compute_advice(graph, root=0)
        tracer = Tracer()
        result = run_sync(graph, scheme.program_factory(), advice=advice.as_payloads(), tracer=tracer)
        assert result.completed
        assert check_outputs(graph, result.outputs, expected_root=0).ok
        # the trace mirrors the metrics
        assert tracer.num_rounds() >= result.metrics.rounds
        assert sum(tracer.messages_per_round()) == result.metrics.total_messages
        assert sum(tracer.bits_per_round()) == result.metrics.total_message_bits
        # every node's halt round is recorded and is at most the total round count
        halts = [tracer.halt_round_of(u) for u in range(graph.n)]
        assert all(h is not None for h in halts)
        assert max(h for h in halts if h is not None) <= result.metrics.rounds
        # the fixed-window schedule necessarily leaves some quiet rounds
        assert len(tracer.quiet_rounds()) > 0
        summary = tracer.summary()
        assert summary["total_messages"] == result.metrics.total_messages
        assert summary["rounds"] == tracer.num_rounds()

    def test_zero_round_scheme_trace(self):
        graph = cycle_graph(6, seed=1)
        scheme = TrivialRankScheme()
        advice = scheme.compute_advice(graph, root=0)
        tracer = Tracer()
        result = run_sync(graph, scheme.program_factory(), advice=advice.as_payloads(), tracer=tracer)
        assert result.metrics.rounds == 0
        # all halts happen during initialisation (recorded as round 0)
        assert all(tracer.halt_round_of(u) == 0 for u in range(graph.n))
        assert sum(tracer.messages_per_round()) == 0

    def test_payload_recording_and_pair_filter(self):
        graph = path_graph(4, seed=2)
        scheme = ShortAdviceScheme()
        advice = scheme.compute_advice(graph, root=0)
        tracer = Tracer(record_payloads=True)
        run_sync(graph, scheme.program_factory(), advice=advice.as_payloads(), tracer=tracer)
        between = tracer.messages_between(0, 1)
        assert between, "adjacent nodes must have exchanged messages"
        assert all(e.payload_repr for e in between)
        assert all({e.sender, e.receiver} == {0, 1} for e in between)

    def test_max_rounds_limits_recording_only(self):
        graph = random_connected_graph(25, 0.1, seed=7)
        scheme = ShortAdviceScheme()
        advice = scheme.compute_advice(graph, root=0)
        tracer = Tracer(max_rounds=3)
        result = run_sync(graph, scheme.program_factory(), advice=advice.as_payloads(), tracer=tracer)
        assert result.completed  # the run itself is unaffected
        assert tracer.num_rounds() <= 4  # round 0 (init halts) may add one record


class TestFailureInjection:
    """Corrupted advice must never be silently accepted as a correct MST."""

    def test_truncated_advice_is_detected(self):
        graph = random_connected_graph(40, 0.1, seed=9)
        scheme = TrivialRankScheme()
        from repro.mst.kruskal import kruskal_mst
        from repro.mst.rooted_tree import build_rooted_tree

        tree = build_rooted_tree(graph, kruskal_mst(graph), root=0)
        # pick a victim whose correct parent rank is not 1, so that truncating
        # its advice to the bare root flag necessarily decodes the wrong edge
        victim = next(
            u
            for u in range(1, graph.n)
            if graph.rank_of_port(u, tree.parent_port[u]) > 1
        )
        advice = scheme.compute_advice(graph, root=0).as_payloads()
        advice[victim] = advice[victim][:1]
        result = run_sync(graph, scheme.program_factory(), advice=advice)
        check = check_outputs(graph, result.outputs, expected_root=0)
        assert not check.ok

    def test_swapped_advice_is_detected(self):
        """Swapping two nodes' advice strings yields an invalid output."""
        graph = random_connected_graph(40, 0.1, seed=10)
        scheme = TrivialRankScheme()
        advice = scheme.compute_advice(graph, root=0).as_payloads()
        a, b = 5, 23
        if advice[a] == advice[b]:
            b = 24
        advice[a], advice[b] = advice[b], advice[a]
        try:
            result = run_sync(graph, scheme.program_factory(), advice=advice)
        except AlgorithmError:
            return  # an out-of-range rank is a legitimate way to surface corruption
        check = check_outputs(graph, result.outputs, expected_root=0)
        reference = run_scheme(scheme, graph, root=0)
        # either the checker rejects the output, or the swap happened to be harmless
        # (identical advice strings) — in which case the tree equals the reference
        if check.ok:
            assert check.tree_edge_ids == reference.check.tree_edge_ids
        else:
            assert not check.ok

    def test_zeroed_main_scheme_advice_is_detected(self):
        """Blanking every advice string cannot yield a verified rooted MST."""
        graph = random_connected_graph(30, 0.1, seed=11)
        scheme = ShortAdviceScheme()
        blank = {u: BitString.empty() for u in range(graph.n)}
        try:
            result = run_sync(graph, scheme.program_factory(), advice=blank, max_rounds=200)
        except AlgorithmError:
            return
        check = check_outputs(graph, result.outputs, expected_root=0)
        assert not check.ok

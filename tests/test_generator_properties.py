"""Property-based tests of the instance generators.

Kept in their own module so the ``importorskip`` below only gates these
tests: when hypothesis is not installed, the deterministic generator
suite in ``test_generators.py`` still runs in full.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
given, settings, st = hypothesis.given, hypothesis.settings, hypothesis.strategies

from repro.graphs import (  # noqa: E402  (after the optional-dep gate)
    hypercube_graph,
    power_law_graph,
    random_geometric_graph,
    torus_graph,
)


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(dim=st.integers(1, 7), seed=st.integers(0, 2**31 - 1))
    def test_hypercube_properties(self, dim, seed):
        g = hypercube_graph(dim, seed=seed)
        g.validate()
        assert g.n == 2**dim and g.m == dim * 2 ** (dim - 1)
        assert g.is_connected()
        assert g.has_distinct_weights()

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 80),
        attach=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_power_law_properties(self, n, attach, seed):
        g = power_law_graph(n, attach=attach, seed=seed)
        g.validate()
        assert g.n == n
        assert g.is_connected()
        core = min(attach + 1, n)
        assert g.m == (core - 1) + attach * (n - core)
        # determinism: the same seed rebuilds the same instance
        assert g.edge_list() == power_law_graph(n, attach=attach, seed=seed).edge_list()

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(3, 8),
        cols=st.integers(3, 8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_torus_properties(self, rows, cols, seed):
        g = torus_graph(rows, cols, seed=seed)
        g.validate()
        assert g.n == rows * cols
        assert g.m == 2 * rows * cols  # 4-regular with wrap-around
        assert all(g.degree(v) == 4 for v in range(g.n))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 2**31 - 1))
    def test_geometric_properties(self, n, seed):
        g = random_geometric_graph(n, seed=seed)
        g.validate()
        assert g.n == n
        assert g.is_connected()

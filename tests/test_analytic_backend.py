"""Round-for-round equivalence of the analytic backend and the engine.

The analytic backend (``repro/simulator/analytic.py``) claims to produce
*exactly* the metrics the :class:`~repro.simulator.engine.SyncEngine`
measures — same rounds, same per-round message counts, same bit totals,
same halting behaviour — without simulating a single message.  This
suite is the enforcement: every scheme on every graph family is run on
both backends and every observable compared.
"""

import json

import pytest

from repro.core.oracle import run_scheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    random_geometric_graph,
)
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.runner import GraphSpec, ResultCache, SweepTask, run_tasks
from repro.runner.registry import SCHEMES
from repro.simulator.analytic import (
    AnalyticUnsupported,
    _attach_bits,
    _bcast_bits,
    _collect_bits,
    _conv_bits,
    _gamma_len,
    _int_elem,
    _level_bits,
    _reply_bits,
    run_scheme_analytic,
)
from repro.simulator.message import estimate_bits

SCHEME_NAMES = ("trivial", "theorem2", "theorem3", "theorem3-level")

#: every structural corner the schedule model has to get right: deep
#: fragments (paths/cycles force convergecasts past their phase windows),
#: high degrees (stars stress the final collection width), duplicated
#: weights (rank coding), and the degenerate n <= 2 instances
def _path(n, seed=0):
    import random

    rng = random.Random(seed)
    return PortNumberedGraph(n, [(i, i + 1, rng.random()) for i in range(n - 1)])


def _star(n, seed=0):
    import random

    rng = random.Random(seed)
    return PortNumberedGraph(n, [(0, i, rng.random()) for i in range(1, n)])


def _duplicate_weights(n, seed=0):
    import random

    rng = random.Random(seed)
    edges = [(i, i + 1, float(rng.choice([1, 2]))) for i in range(n - 1)]
    seen = {(min(u, v), max(u, v)) for u, v, _ in edges}
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        key = (min(u, v), max(u, v))
        if u != v and key not in seen:
            seen.add(key)
            edges.append((u, v, float(rng.choice([1, 2, 3]))))
    return PortNumberedGraph(n, edges)


GRAPHS = {
    "random24": (random_connected_graph(24, 0.15, seed=3), 2),
    "random64": (random_connected_graph(64, 0.08, seed=1), 0),
    "random100": (random_connected_graph(100, 0.05, seed=7), 11),
    "grid36": (grid_graph(6, 6, seed=1), 5),
    "cycle33": (cycle_graph(33, seed=2), 0),
    "complete16": (complete_graph(16, seed=0), 0),
    "geometric40": (random_geometric_graph(40, seed=4), 3),
    "path40": (_path(40, seed=1), 20),
    "star30": (_star(30, seed=1), 0),
    "dup47": (_duplicate_weights(47, seed=2), 1),
    "n1": (PortNumberedGraph(1, []), 0),
    "n2": (PortNumberedGraph(2, [(0, 1, 1.0)]), 1),
}


def _both_reports(scheme_name, graph, root):
    engine = run_scheme(SCHEMES[scheme_name](), graph, root=root, backend="engine")
    analytic = run_scheme(SCHEMES[scheme_name](), graph, root=root, backend="analytic")
    return engine, analytic


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_metrics_match_engine_exactly(scheme_name, graph_name):
    graph, root = GRAPHS[graph_name]
    if scheme_name == "theorem3-level" and not graph.has_distinct_weights():
        pytest.skip("level variant requires pairwise-distinct weights")
    engine, analytic = _both_reports(scheme_name, graph, root)

    assert engine.metrics.as_dict() == analytic.metrics.as_dict()
    assert engine.metrics.messages_per_round == analytic.metrics.messages_per_round
    assert engine.rounds == analytic.rounds
    assert engine.correct and analytic.correct


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
def test_outputs_and_advice_match_engine(scheme_name):
    graph, root = GRAPHS["random24"]
    engine, analytic = _both_reports(scheme_name, graph, root)
    # same advice statistics (the analytic path runs the same oracle) and
    # the same verified output map
    assert engine.advice == analytic.advice
    assert engine.check.tree_edge_ids == analytic.check.tree_edge_ids
    assert engine.check.root == analytic.check.root


def test_analytic_matches_across_roots_and_seeds():
    # a denser sweep over instances: one aggregate equality per run
    for seed in range(5):
        graph = random_connected_graph(48, 0.1, seed=seed)
        for scheme_name in SCHEME_NAMES:
            engine, analytic = _both_reports(scheme_name, graph, seed % graph.n)
            assert engine.metrics.as_dict() == analytic.metrics.as_dict(), (
                scheme_name,
                seed,
            )
            assert (
                engine.metrics.messages_per_round
                == analytic.metrics.messages_per_round
            )


# --------------------------------------------------------------------- #
# the payload-size formulas are pinned against estimate_bits itself
# --------------------------------------------------------------------- #


class _FakeBits:
    def __init__(self, length):
        self._length = length

    def bit_length_exact(self):
        return self._length


def test_payload_formulas_match_estimate_bits():
    for value in (0, 1, 2, 5, 7, 63, 64, 1023):
        assert _int_elem(value) == 2 + estimate_bits(value)
    for phase in (1, 3, 9):
        for size in (1, 17, 300):
            for length in (0, 5, 40):
                assert _conv_bits(phase, size, length) == estimate_bits(
                    (1, phase, size, _FakeBits(length))
                )
        assert _level_bits(phase) == estimate_bits((7, phase, 0))
        assert _level_bits(phase) == estimate_bits((7, phase, 1))
        assert _attach_bits(phase, True) == estimate_bits((4, phase))
        assert _attach_bits(phase, False) == estimate_bits((3, phase))
    for rank in (1, 2, 9, 40):
        record = (True, rank)
        expected = estimate_bits((2, 2, 3, record, 11, 4, 5))
        got = _bcast_bits(2, 3, 3 + _int_elem(rank), 11, 4, 5)
        assert got == expected
    for ttl in (0, 1, 6):
        assert _collect_bits(ttl) == estimate_bits((5, ttl))
    for length in (0, 1, 9):
        assert _reply_bits(length) == estimate_bits((6, _FakeBits(length)))


def test_gamma_len_matches_writer():
    from repro.core.bits import BitWriter

    for value in (1, 2, 3, 7, 8, 100, 1023):
        writer = BitWriter()
        writer.write_gamma(value)
        assert _gamma_len(value) == len(writer.getvalue())


# --------------------------------------------------------------------- #
# dispatch edges
# --------------------------------------------------------------------- #


def test_unknown_scheme_is_refused():
    class Custom(ShortAdviceScheme):
        pass

    graph, root = GRAPHS["random24"]
    with pytest.raises(AnalyticUnsupported):
        run_scheme_analytic(Custom(), graph, root=root)


def test_max_rounds_budget_is_refused_not_truncated():
    graph, root = GRAPHS["random24"]
    with pytest.raises(AnalyticUnsupported):
        run_scheme_analytic(SCHEMES["theorem3"](), graph, root=root, max_rounds=1)


def test_run_scheme_falls_back_to_engine_when_unsupported():
    # a round budget too small for the analytic model: run_scheme silently
    # routes through the engine, which reports the truncation
    graph, root = GRAPHS["random24"]
    report = run_scheme(
        SCHEMES["theorem3"](), graph, root=root, max_rounds=1, backend="analytic"
    )
    assert not report.correct
    assert "terminate" in report.check.reason


def test_run_scheme_rejects_unknown_backend():
    graph, root = GRAPHS["n2"]
    with pytest.raises(ValueError, match="unknown backend"):
        run_scheme(SCHEMES["trivial"](), graph, root=root, backend="quantum")


# --------------------------------------------------------------------- #
# runner integration: backends are first-class workload content
# --------------------------------------------------------------------- #


def test_task_backend_is_validated():
    with pytest.raises(ValueError, match="backend"):
        SweepTask("scheme", "trivial", GraphSpec(), 8, 0, backend="quantum")
    with pytest.raises(ValueError, match="analytic"):
        SweepTask("baseline", "ghs", GraphSpec(), 8, 0, backend="analytic")


def test_backend_changes_the_cache_key():
    engine_task = SweepTask("scheme", "theorem3", GraphSpec(), 16, 0)
    analytic_task = SweepTask("scheme", "theorem3", GraphSpec(), 16, 0, backend="analytic")
    assert engine_task.task_hash() != analytic_task.task_hash()
    assert engine_task.key_dict()["backend"] == "engine"
    assert analytic_task.key_dict()["backend"] == "analytic"
    assert "backend_version" in engine_task.key_dict()


def test_cache_rows_are_backend_isolated(tmp_path):
    cache = ResultCache(tmp_path)
    engine_task = SweepTask("scheme", "theorem3", GraphSpec(), 16, 0)
    analytic_task = SweepTask("scheme", "theorem3", GraphSpec(), 16, 0, backend="analytic")
    (engine_row,) = run_tasks([engine_task], cache_dir=cache)
    assert cache.misses == 1 and cache.hits == 0
    (analytic_row,) = run_tasks([analytic_task], cache_dir=cache)
    # the analytic task was NOT served the engine row: two distinct files
    assert cache.misses == 2 and cache.hits == 0
    assert len(list(tmp_path.glob("*.json"))) == 2
    # ... even though the measured rows are identical (the whole point)
    assert engine_row == analytic_row
    # and the stored task content says which backend produced each row
    backends = {
        json.loads(p.read_text())["task"]["backend"] for p in tmp_path.glob("*.json")
    }
    assert backends == {"engine", "analytic"}


def test_scheme_sweep_rows_identical_across_backends():
    from repro.analysis.sweep import run_scheme_sweep

    engine = run_scheme_sweep("theorem3", (16, 32), seeds=(0, 1), backend="engine")
    analytic = run_scheme_sweep("theorem3", (16, 32), seeds=(0, 1), backend="analytic")
    assert engine.rows == analytic.rows

"""Tests of the Theorem-1 lower-bound machinery."""

import math

import pytest

from repro.core.lower_bound import (
    average_advice_lower_bound,
    required_bits_at_node,
    run_fooling_experiment,
    truncated_trivial_failures,
)
from repro.core.oracle import run_scheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.graphs.lowerbound_family import build_gn, fooling_family


class TestFoolingExperiment:
    @pytest.mark.parametrize("h,i", [(6, 2), (8, 3), (10, 4), (12, 2)])
    def test_premises_hold(self, h, i):
        exp = run_fooling_experiment(h, i)
        assert exp.premises_hold
        assert exp.num_variants == h - i
        assert exp.required_bits == pytest.approx(math.log2(h - i))

    def test_required_bits_increase_with_family_size(self):
        assert required_bits_at_node(20, 2) > required_bits_at_node(20, 10)


class TestPigeonhole:
    def test_zero_advice_forces_failures(self):
        """With 0 advice bits every variant beyond the first must fail."""
        result = truncated_trivial_failures(10, 3, budget_bits=0)
        assert result["num_variants"] == 7
        assert result["num_groups"] == 1
        assert result["min_failures"] == 6

    def test_insufficient_advice_forces_failures(self):
        """Fewer than log2(h - i) bits cannot distinguish all variants."""
        h, i = 12, 3  # 9 variants, needs ceil(log2 9) = 4 bits
        for budget in (0, 1, 2, 3):
            result = truncated_trivial_failures(h, i, budget_bits=budget)
            assert result["min_failures"] >= result["num_variants"] - 2**budget
            assert result["min_failures"] > 0

    def test_sufficient_advice_can_distinguish(self):
        """With the full ⌈log n⌉-bit advice the pigeonhole gives no guaranteed failure."""
        h, i = 10, 5
        full_budget = 16
        result = truncated_trivial_failures(h, i, budget_bits=full_budget)
        assert result["min_failures"] == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            truncated_trivial_failures(8, 3, budget_bits=-1)

    def test_trivial_scheme_is_correct_on_the_whole_family(self):
        """The achievable side: ⌈log n⌉ bits at 0 rounds do solve every variant."""
        scheme = TrivialRankScheme()
        for variant in fooling_family(8, 3):
            graph = variant.instance.graph
            root = variant.instance.v(1)
            report = run_scheme(scheme, graph, root=root)
            assert report.correct
            # and the target node's output is exactly the correct parent port
            advice = scheme.compute_advice(graph, root=root)
            assert advice.bits_of(variant.target_node) >= 1


class TestAverageBound:
    def test_lower_bound_grows_like_log_n(self):
        values = {h: average_advice_lower_bound(h) for h in (16, 64, 256, 1024)}
        assert values[64] > values[16]
        assert values[1024] > values[256]
        # Theta(log h): ratio to log2 h converges to 1/2
        assert 0.25 <= values[1024] / math.log2(1024) <= 0.75

    def test_trivial_scheme_average_respects_the_lower_bound_shape(self):
        """The measured average of the best 0-round scheme sits above the bound."""
        scheme = TrivialRankScheme()
        for h in (8, 16, 32):
            inst = build_gn(h)
            stats = scheme.compute_advice(inst.graph, root=inst.v(1)).stats()
            assert stats.average_bits >= average_advice_lower_bound(h)

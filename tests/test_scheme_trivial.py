"""Tests of the trivial ``(⌈log n⌉, 0)``-advising scheme (Section 1)."""

import math

import pytest

from repro.core.oracle import run_scheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.graphs.generators import random_connected_graph, star_graph
from repro.graphs.weighted_graph import PortNumberedGraph


class TestTrivialScheme:
    def test_correct_on_zoo(self, graph_zoo):
        scheme = TrivialRankScheme()
        for name, graph, root in graph_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.correct, f"{name}: {report.check.reason}"
            assert report.check.root == root

    def test_zero_rounds_and_no_messages(self, graph_zoo):
        scheme = TrivialRankScheme()
        for name, graph, root in graph_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.rounds == 0, name
            assert report.metrics.total_messages == 0, name

    def test_advice_size_bound(self, graph_zoo):
        """Each node needs at most ⌈log₂ deg(u)⌉ + 1 bits ≤ ⌈log₂ n⌉ + 1."""
        scheme = TrivialRankScheme()
        for name, graph, root in graph_zoo:
            advice = scheme.compute_advice(graph, root=root)
            for u in range(graph.n):
                expected = 1 + (graph.degree(u) - 1).bit_length() if u != root else 1
                assert advice.bits_of(u) == expected, name
            assert advice.stats().max_bits <= scheme.advice_bound_bits(graph.n)

    def test_advice_scales_logarithmically(self):
        scheme = TrivialRankScheme()
        sizes = (8, 64, 512)
        maxima = []
        for n in sizes:
            graph = random_connected_graph(n, min(1.0, 10 / n), seed=1)
            maxima.append(scheme.compute_advice(graph, root=0).stats().max_bits)
        assert maxima[0] <= maxima[1] <= maxima[2]
        assert maxima[2] <= math.ceil(math.log2(512)) + 1

    def test_star_leaf_gets_one_bit(self):
        """A degree-1 node needs only the root flag (rank is forced)."""
        graph = star_graph(8, seed=0)
        advice = TrivialRankScheme().compute_advice(graph, root=0)
        for leaf in range(1, 8):
            assert advice.bits_of(leaf) == 1

    def test_root_choice_respected(self):
        graph = random_connected_graph(30, 0.1, seed=5)
        for root in (0, 7, 29):
            report = run_scheme(TrivialRankScheme(), graph, root=root)
            assert report.correct and report.check.root == root

    def test_single_node_graph(self):
        graph = PortNumberedGraph(1, [])
        report = run_scheme(TrivialRankScheme(), graph, root=0)
        assert report.correct
        assert report.rounds == 0

    def test_declared_bounds(self):
        scheme = TrivialRankScheme()
        assert scheme.round_bound(1000) == 0
        assert scheme.advice_bound_bits(1024) == math.ceil(math.log2(1023)) + 1

"""Tests of the sequential MST algorithms and verifiers."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import complete_graph, random_connected_graph
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import boruvka_mst
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.verify import (
    is_minimum_spanning_tree,
    is_spanning_tree,
    unique_mst_edge_ids,
    verify_cut_property,
    verify_cycle_property,
)


class TestAgreement:
    def test_all_algorithms_agree(self, small_random_graphs):
        for g in small_random_graphs:
            k = kruskal_mst(g)
            assert prim_mst(g) == k
            assert boruvka_mst(g) == k

    def test_agreement_with_duplicate_weights(self):
        for seed in range(5):
            g = random_connected_graph(30, 0.15, seed=seed, weight_mode="integer", weight_range=4)
            k = kruskal_mst(g)
            assert prim_mst(g) == k
            assert boruvka_mst(g) == k
            assert is_minimum_spanning_tree(g, k)

    def test_weight_matches_networkx(self, small_random_graphs):
        """Cross-check against networkx as an independent implementation."""
        for g in small_random_graphs:
            ours = g.total_weight(kruskal_mst(g))
            theirs = sum(
                d["weight"]
                for _, _, d in nx.minimum_spanning_tree(g.to_networkx()).edges(data=True)
            )
            assert abs(ours - theirs) < 1e-9

    def test_prim_start_node_irrelevant(self):
        g = random_connected_graph(40, 0.1, seed=6)
        assert prim_mst(g, start=0) == prim_mst(g, start=17)

    def test_disconnected_rejected(self):
        g = PortNumberedGraph(4, [(0, 1, 1.0), (2, 3, 2.0)])
        for algo in (kruskal_mst, prim_mst, boruvka_mst):
            with pytest.raises(ValueError):
                algo(g)

    def test_tree_input_returns_all_edges(self):
        g = random_connected_graph(25, 0.0, seed=2)  # a tree
        assert kruskal_mst(g) == list(range(g.m))


class TestVerifiers:
    def test_is_spanning_tree(self):
        g = complete_graph(5, seed=1)
        mst = kruskal_mst(g)
        assert is_spanning_tree(g, mst)
        assert not is_spanning_tree(g, mst[:-1])
        assert not is_spanning_tree(g, list(range(5)))  # 5 edges on 5 nodes: has a cycle
        assert not is_spanning_tree(g, mst[:-1] + [999])

    def test_is_minimum_spanning_tree_rejects_heavier_tree(self):
        g = complete_graph(6, seed=2)
        mst = set(kruskal_mst(g))
        non_tree = [e for e in range(g.m) if e not in mst]
        # swap one MST edge for a non-tree edge closing a cycle through it
        for swap_in in non_tree:
            u, v = int(g.edge_u[swap_in]), int(g.edge_v[swap_in])
            candidate = None
            for e in mst:
                if {int(g.edge_u[e]), int(g.edge_v[e])} & {u, v}:
                    trial = (mst - {e}) | {swap_in}
                    if is_spanning_tree(g, trial):
                        candidate = trial
                        break
            if candidate is not None and g.total_weight(candidate) > g.total_weight(mst):
                assert not is_minimum_spanning_tree(g, candidate)
                return
        pytest.skip("no strictly heavier swap found on this seed")

    def test_cut_and_cycle_properties_hold_for_mst(self, small_random_graphs):
        for g in small_random_graphs[:4]:
            mst = kruskal_mst(g)
            assert verify_cut_property(g, mst)
            assert verify_cycle_property(g, mst)

    def test_cycle_property_rejects_non_mst(self):
        # a square where the heavy edge is forced into the tree
        g = PortNumberedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)])
        bad_tree = [1, 2, 3]  # contains the weight-10 edge
        assert is_spanning_tree(g, bad_tree)
        assert not verify_cycle_property(g, bad_tree)
        assert not verify_cut_property(g, bad_tree)
        assert not is_minimum_spanning_tree(g, bad_tree)

    def test_unique_mst_detection(self):
        distinct = random_connected_graph(20, 0.2, seed=3, weight_mode="distinct")
        unique, _ = unique_mst_edge_ids(distinct)
        assert unique
        # a 4-cycle with all-equal weights has several MSTs
        square = PortNumberedGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        unique, _ = unique_mst_edge_ids(square)
        assert not unique


@st.composite
def weighted_graph(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = []
    seen = set()
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        seen.add((u, v))
        edges.append((u, v, float(draw(st.integers(1, 30)))))
    for a in range(n):
        for b in range(a + 1, n):
            if (a, b) not in seen and draw(st.booleans()):
                edges.append((a, b, float(draw(st.integers(1, 30)))))
    return PortNumberedGraph(n, edges)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(weighted_graph())
    def test_mst_invariants(self, g):
        mst = kruskal_mst(g)
        assert len(mst) == g.n - 1
        assert is_spanning_tree(g, mst)
        assert is_minimum_spanning_tree(g, mst)
        assert boruvka_mst(g) == mst
        assert prim_mst(g) == mst

    @settings(max_examples=30, deadline=None)
    @given(weighted_graph())
    def test_mst_weight_matches_networkx(self, g):
        ours = g.total_weight(kruskal_mst(g))
        theirs = sum(
            d["weight"]
            for _, _, d in nx.minimum_spanning_tree(g.to_networkx()).edges(data=True)
        )
        assert abs(ours - theirs) < 1e-9

"""The fault-injection test matrix of the adversarial execution layer.

Three guarantees are pinned here:

* **byte-identity at the null fault** — ``AdversaryEngine`` with
  ``delta = 0`` and an empty fault schedule reduces to ``SyncEngine``
  call for call, on every (problem, scheme/baseline) pair the registry
  knows (the whole robustness methodology hangs on this: the fault-free
  corner of every degradation grid *is* the synchronous result);
* **masked-fault correctness** — under random bounded delays and up to
  ``⌊n/4⌋`` crashes, every registry pair still terminates with a
  verifier-accepted output (the global-barrier synchronizer masks the
  faults; their price is physical rounds and retransmitted messages);
* **cache discipline** — faulty runs are deterministic across workers
  and across cache generations, the null fault shares its cache key
  with fault-free tasks, and the v3→v4 format bump invalidates every
  pre-fault-axis row.
"""

import copy
import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import get_problem, problem_names
from repro.core.oracle import run_scheme
from repro.distributed.base import run_baseline
from repro.graphs.generators import random_connected_graph
from repro.runner.registry import resolve_baseline, resolve_scheme
from repro.runner.runner import run_tasks
from repro.runner.tasks import TASK_FORMAT_VERSION, GraphSpec, SweepTask
from repro.simulator.adversary import (
    ADVERSARY_VERSION,
    AdversaryEngine,
    FaultSpec,
    apply_churn,
    derive_fault_seed,
)
from repro.simulator.engine import SyncEngine


def _registry_pairs():
    """Every (problem, kind, target) the registries know, as test ids."""
    pairs = []
    for problem in problem_names():
        registry = get_problem(problem)
        pairs += [(problem, "scheme", s) for s in sorted(registry.schemes)]
        pairs += [(problem, "baseline", b) for b in sorted(registry.baselines)]
    return pairs


PAIRS = _registry_pairs()


@pytest.fixture(scope="module")
def graph24():
    return random_connected_graph(24, 0.15, seed=3)


def _run_pair(graph, problem, kind, target, engine_cls, fault=None, seed=0):
    """One end-to-end engine run of a registry pair, advice included."""
    kwargs = {} if engine_cls is SyncEngine else {"fault": fault, "seed": seed}
    if kind == "scheme":
        scheme = resolve_scheme(target, problem=problem)
        advice = scheme.compute_advice(graph, root=0).as_payloads()
        return engine_cls(graph, scheme.program_factory(), advice=advice, **kwargs).run()
    baseline = resolve_baseline(target, problem=problem)
    bound = baseline.round_bound(graph)
    max_rounds = int(bound) + 50 if bound is not None else None
    return engine_cls(
        graph, baseline.program_factory(graph), max_rounds=max_rounds, **kwargs
    ).run()


# ------------------------------------------------------------------ #
# byte-identity at the null fault, over the whole registry
# ------------------------------------------------------------------ #


class TestNullFaultByteIdentity:
    @pytest.mark.parametrize("problem,kind,target", PAIRS)
    def test_every_registry_pair_is_byte_identical(self, graph24, problem, kind, target):
        """delta=0 + no faults: same outputs, same metrics, same stop reason."""
        sync = _run_pair(graph24, problem, kind, target, SyncEngine)
        null = _run_pair(graph24, problem, kind, target, AdversaryEngine)
        assert null == sync  # RunResult dataclass: full structural equality

    def test_null_spec_object_is_equivalent_to_none(self, graph24):
        scheme = resolve_scheme("trivial", problem="mst")
        advice = scheme.compute_advice(graph24, root=0).as_payloads()
        explicit = AdversaryEngine(
            graph24, scheme.program_factory(), advice=advice, fault=FaultSpec()
        ).run()
        sync = SyncEngine(graph24, scheme.program_factory(), advice=advice).run()
        assert explicit == sync

    def test_null_fault_draws_nothing_from_the_rng(self, graph24):
        """The byte-identity is structural, not lucky: no RNG is consumed."""
        scheme = resolve_scheme("theorem3", problem="mst")
        advice = scheme.compute_advice(graph24, root=0).as_payloads()
        engine = AdversaryEngine(graph24, scheme.program_factory(), advice=advice)
        state = engine._rng.getstate()
        engine.run()
        assert engine._rng.getstate() == state


# ------------------------------------------------------------------ #
# masked faults: every pair survives delays + <= n/4 crashes
# ------------------------------------------------------------------ #


class TestFaultInjectionMatrix:
    @settings(max_examples=30, deadline=None)
    @given(
        pair=st.sampled_from(PAIRS),
        delta=st.integers(min_value=0, max_value=4),
        crash_rate=st.sampled_from([0.0, 0.125, 0.25]),
        recovery=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_verifier_accepts_under_random_faults(
        self, graph24, pair, delta, crash_rate, recovery, seed
    ):
        problem, kind, target = pair
        fault = FaultSpec(delta=delta, crash_rate=crash_rate, recovery=recovery)
        result = _run_pair(
            graph24, problem, kind, target, AdversaryEngine, fault=fault, seed=seed
        )
        assert result.completed and result.stop_reason == "completed"
        root = 0 if kind == "scheme" else None
        check = get_problem(problem).check_outputs(
            graph24, result.outputs, expected_root=root
        )
        assert check.ok, (pair, fault, seed, check.reason)

    @pytest.mark.parametrize("problem,kind,target", PAIRS)
    def test_faulty_run_costs_at_least_the_synchronous_run(
        self, graph24, problem, kind, target
    ):
        """Physical rounds and per-attempt messages only ever inflate."""
        fault = FaultSpec(delta=2, crash_rate=0.25)
        sync = _run_pair(graph24, problem, kind, target, SyncEngine)
        faulty = _run_pair(
            graph24, problem, kind, target, AdversaryEngine, fault=fault, seed=11
        )
        assert faulty.outputs == sync.outputs  # the synchronizer masks faults
        assert faulty.metrics.rounds >= sync.metrics.rounds
        assert faulty.metrics.total_messages >= sync.metrics.total_messages
        assert faulty.metrics.rounds == len(faulty.metrics.messages_per_round)

    def test_crash_schedule_respects_the_quarter_bound(self, graph24):
        engine = AdversaryEngine(
            graph24,
            resolve_scheme("trivial", problem="mst").program_factory(),
            fault=FaultSpec(crash_rate=0.25),
            seed=5,
        )
        assert 0 < len(engine._crash_at) <= graph24.n // 4

    def test_same_seed_same_run_different_seed_different_schedule(self, graph24):
        scheme = resolve_scheme("theorem3", problem="mst")
        advice = scheme.compute_advice(graph24, root=0).as_payloads()
        fault = FaultSpec(delta=3, crash_rate=0.25)

        def run(seed):
            return AdversaryEngine(
                graph24, scheme.program_factory(), advice=advice, fault=fault, seed=seed
            ).run()

        assert run(7) == run(7)
        a, b = AdversaryEngine(
            graph24, scheme.program_factory(), advice=advice, fault=fault, seed=1
        ), AdversaryEngine(
            graph24, scheme.program_factory(), advice=advice, fault=fault, seed=2
        )
        assert a._crash_at != b._crash_at or a._rng.getstate() != b._rng.getstate()


# ------------------------------------------------------------------ #
# the FaultSpec contract
# ------------------------------------------------------------------ #


class TestFaultSpec:
    def test_null_detection(self):
        assert FaultSpec().is_null
        assert FaultSpec(recovery=7).is_null  # recovery alone faults nothing
        for spec in (FaultSpec(delta=1), FaultSpec(crash_rate=0.125), FaultSpec(churn=1)):
            assert not spec.is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": -1},
            {"delta": 1.5},
            {"crash_rate": -0.1},
            {"crash_rate": 0.3},
            {"crash_rate": True},
            {"recovery": 0},
            {"churn": -2},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_key_dict_carries_the_adversary_version(self):
        key = FaultSpec(delta=2).key_dict()
        assert key["adversary_version"] == ADVERSARY_VERSION
        assert key["delta"] == 2

    def test_fault_seed_depends_on_content_and_tag(self):
        spec = FaultSpec(delta=1)
        assert derive_fault_seed(0, spec) == derive_fault_seed(0, spec)
        assert derive_fault_seed(0, spec) != derive_fault_seed(1, spec)
        assert derive_fault_seed(0, spec) != derive_fault_seed(0, FaultSpec(delta=2))
        assert derive_fault_seed(0, spec) != derive_fault_seed(0, spec, tag="churn")


# ------------------------------------------------------------------ #
# cache discipline: keys, normalisation, determinism across workers
# ------------------------------------------------------------------ #


class TestFaultCaching:
    def _task(self, **kwargs):
        defaults = dict(
            kind="scheme",
            target="theorem3",
            graph=GraphSpec("random", 0.1),
            n=16,
            seed=0,
        )
        defaults.update(kwargs)
        return SweepTask(**defaults)

    def test_null_fault_normalises_to_the_fault_free_key(self):
        plain = self._task()
        null = self._task(fault=FaultSpec())
        assert null.fault is None
        assert null.task_hash() == plain.task_hash()

    def test_faulty_key_differs_per_fault_content(self):
        plain = self._task()
        a = self._task(fault=FaultSpec(delta=1))
        b = self._task(fault=FaultSpec(delta=2))
        assert len({plain.task_hash(), a.task_hash(), b.task_hash()}) == 3

    def test_fault_requires_the_engine_backend(self):
        with pytest.raises(ValueError, match="engine"):
            self._task(backend="analytic", fault=FaultSpec(delta=1))

    def test_churn_requires_the_mst_problem(self):
        with pytest.raises(ValueError, match="MST"):
            self._task(target="leader/flag", fault=FaultSpec(churn=1))

    def test_v4_hash_differs_from_a_v3_style_key(self):
        """The format bump invalidates every pre-fault-axis cache row."""
        task = self._task()
        v4_key = task.key_dict()
        v3_key = {k: v for k, v in v4_key.items() if k != "fault"}
        v3_key["format"] = 3
        v3_hash = hashlib.sha256(
            json.dumps(v3_key, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        assert task.task_hash() != v3_hash

    FAULTY_TASKS = [
        SweepTask(
            kind=kind,
            target=target,
            graph=GraphSpec("random", 0.15),
            n=24,
            seed=seed,
            fault=fault,
        )
        for kind, target in (("scheme", "theorem3"), ("baseline", "ghs"))
        for fault in (None, FaultSpec(delta=2), FaultSpec(delta=1, crash_rate=0.25))
        for seed in (0, 1)
    ]

    def test_serial_and_parallel_rows_identical(self):
        serial = run_tasks(self.FAULTY_TASKS, jobs=1)
        parallel = run_tasks(self.FAULTY_TASKS, jobs=2)
        assert serial == parallel

    def test_fresh_vs_resumed_rows_identical(self, tmp_path):
        fresh = run_tasks(self.FAULTY_TASKS, cache_dir=tmp_path, resume=True)
        resumed = run_tasks(self.FAULTY_TASKS, cache_dir=tmp_path, resume=True)
        assert fresh == resumed

    def test_faulty_rows_actually_degrade(self):
        rows = run_tasks(self.FAULTY_TASKS)
        null = [r for r in rows if r["scheme"] == "sync-boruvka"][0]
        delayed = [r for r in rows if r["scheme"] == "sync-boruvka"][2]
        assert delayed["rounds"] > null["rounds"]
        assert all(r["correct"] for r in rows)


# ------------------------------------------------------------------ #
# edge-weight churn: incremental repair stays an exact MST
# ------------------------------------------------------------------ #


class TestChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_repaired_tree_reverifies_on_the_churned_instance(self, seed):
        graph = random_connected_graph(32, 0.2, seed=seed)
        report = run_scheme(
            resolve_scheme("trivial", problem="mst"),
            graph,
            root=0,
            fault=FaultSpec(churn=6),
            fault_seed=seed,
        )
        # the check ran against the churned weights, not the originals
        assert report.correct

    def test_churn_charges_rounds_and_messages(self):
        graph = random_connected_graph(32, 0.2, seed=1)
        plain = run_scheme(resolve_scheme("theorem3", problem="mst"), graph, root=0)
        churned = run_scheme(
            resolve_scheme("theorem3", problem="mst"),
            graph,
            root=0,
            fault=FaultSpec(churn=8),
            fault_seed=1,
        )
        assert churned.correct
        assert churned.rounds >= plain.rounds
        assert churned.metrics.total_messages >= plain.metrics.total_messages
        assert churned.metrics.rounds == len(churned.metrics.messages_per_round)

    def test_apply_churn_handles_every_event_class(self):
        """Over many seeds the event mix hits tree/non-tree, up/down."""
        graph = random_connected_graph(24, 0.3, seed=9)
        problem = get_problem("mst")
        base = run_scheme(resolve_scheme("trivial", problem="mst"), graph, root=0)
        for seed in range(10):
            metrics = copy.deepcopy(base.metrics)
            fault = FaultSpec(churn=4)
            check = apply_churn(graph, 0, base.check, fault, seed, metrics)
            assert check.ok, (seed, check.reason)

    def test_baseline_churn_uses_its_own_root(self):
        graph = random_connected_graph(24, 0.2, seed=2)
        report = run_baseline(
            resolve_baseline("ghs", problem="mst"),
            graph,
            fault=FaultSpec(churn=5),
            fault_seed=3,
        )
        assert report.correct

    def test_run_scheme_rejects_faults_off_the_engine(self):
        graph = random_connected_graph(16, 0.2, seed=0)
        with pytest.raises(ValueError, match="engine"):
            run_scheme(
                resolve_scheme("theorem3", problem="mst"),
                graph,
                backend="analytic",
                fault=FaultSpec(delta=1),
            )


# ------------------------------------------------------------------ #
# repo hygiene: byte-compiled artifacts stay out of the tree
# ------------------------------------------------------------------ #


class TestBytecodeHygiene:
    def test_gitignore_covers_bytecode(self):
        from pathlib import Path

        lines = (
            (Path(__file__).resolve().parents[1] / ".gitignore")
            .read_text()
            .splitlines()
        )
        assert "__pycache__/" in lines
        assert "*.pyc" in lines

    def test_no_bytecode_is_tracked(self):
        import subprocess
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        try:
            tracked = subprocess.run(
                ["git", "ls-files", "*.pyc", "**/__pycache__/**"],
                cwd=repo,
                capture_output=True,
                text=True,
                timeout=30,
                check=True,
            ).stdout
        except (OSError, subprocess.SubprocessError):
            pytest.skip("git unavailable")
        assert tracked.strip() == ""


def test_format_version_is_4():
    assert TASK_FORMAT_VERSION == 4

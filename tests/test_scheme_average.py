"""Tests of Theorem 2: the ``(O(log² n), 1)`` scheme with constant average advice."""

import math

import pytest

from repro.core.oracle import run_scheme
from repro.core.scheme_average import (
    AverageConstantScheme,
    _parse_records,
    paper_average_constant,
)
from repro.core.bits import BitString
from repro.graphs.generators import random_connected_graph
from repro.graphs.weighted_graph import PortNumberedGraph


class TestAverageScheme:
    def test_correct_on_zoo(self, graph_zoo):
        scheme = AverageConstantScheme()
        for name, graph, root in graph_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.correct, f"{name}: {report.check.reason}"
            assert report.check.root == root

    def test_exactly_one_round(self, graph_zoo):
        scheme = AverageConstantScheme()
        for name, graph, root in graph_zoo:
            report = run_scheme(scheme, graph, root=root)
            assert report.rounds == 1, name

    def test_average_advice_is_bounded_by_the_paper_constant(self):
        """Theorem 2: the average advice length is at most c = Σ (i+1)/2^(i-2) = 12."""
        scheme = AverageConstantScheme()
        constant = paper_average_constant()
        assert abs(constant - 12.0) < 1e-6
        for n in (16, 64, 256, 1024):
            graph = random_connected_graph(n, 8 / n, seed=3)
            stats = scheme.compute_advice(graph, root=0).stats()
            assert stats.average_bits <= constant

    def test_average_advice_stays_flat_while_max_grows(self):
        """Average stays O(1); the maximum grows (it is Θ(log² n) in the worst case)."""
        scheme = AverageConstantScheme()
        averages, maxima = [], []
        for n in (32, 128, 512, 2048):
            graph = random_connected_graph(n, 6 / n, seed=7)
            stats = scheme.compute_advice(graph, root=0).stats()
            averages.append(stats.average_bits)
            maxima.append(stats.max_bits)
        assert max(averages) <= paper_average_constant()
        assert maxima[-1] > maxima[0]
        assert maxima[-1] <= scheme.advice_bound_bits(2048)

    def test_advice_is_interleaved_bitmap_and_data(self):
        graph = random_connected_graph(40, 0.1, seed=1)
        advice = AverageConstantScheme().compute_advice(graph, root=0)
        for u in range(graph.n):
            bits = advice.get(u)
            assert len(bits) % 2 == 0  # the bitmap doubles the data
            if len(bits) > 0:
                records = _parse_records(bits)
                assert records, "non-empty advice must parse into records"
                for is_up, rank in records:
                    assert isinstance(is_up, bool)
                    assert 1 <= rank <= graph.degree(u)

    def test_parse_records_rejects_malformed_advice(self):
        with pytest.raises(ValueError):
            _parse_records(BitString([1, 0, 1]))  # odd length
        with pytest.raises(ValueError):
            _parse_records(BitString([0, 1, 0, 0]))  # data before the first record mark

    def test_works_with_duplicate_weights(self):
        graph = random_connected_graph(45, 0.1, seed=2, weight_mode="integer", weight_range=3)
        report = run_scheme(AverageConstantScheme(), graph, root=4)
        assert report.correct

    def test_congest_messages(self):
        """Decoder messages are O(log n) bits (they are single parent claims)."""
        graph = random_connected_graph(300, 0.02, seed=6)
        report = run_scheme(AverageConstantScheme(), graph, root=0)
        assert report.correct
        assert report.metrics.max_edge_bits_per_round <= 8

    def test_declared_bounds(self):
        scheme = AverageConstantScheme()
        assert scheme.round_bound(4096) == 1
        assert scheme.advice_bound_bits(4096) == 2 * sum(i + 1 for i in range(1, 13))
        assert scheme.average_advice_bound_bits(4096) == paper_average_constant()

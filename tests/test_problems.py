"""Tests of the problem layer: registry, resolution, and every built-in.

The heart of the file is the registry-wide smoke matrix: every
``(problem, scheme)`` and ``(problem, baseline)`` pair the registry
knows runs end to end on a small random instance *and* one structured
family, and must pass its own problem's verifier.  Adding a problem (or
a scheme to an existing problem) extends the matrix automatically —
there is no hand-maintained list to forget to update.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core.oracle import run_scheme
from repro.core.problem import (
    DEFAULT_PROBLEM,
    get_problem,
    problem_names,
    qualified_names,
    split_target,
)
from repro.distributed.base import run_baseline
from repro.graphs import cycle_graph, random_connected_graph
from repro.report import generate_report, load_spec, spec_from_dict
from repro.runner.registry import resolve_baseline, resolve_scheme, resolve_target
from repro.runner.tasks import TASK_FORMAT_VERSION, GraphSpec, SweepTask

REPO = Path(__file__).resolve().parent.parent
PROBLEMS_SPEC = REPO / "specs" / "problems.toml"
PROBLEMS_GOLDEN = REPO / "tests" / "golden" / "problems_report"


def _matrix(kind):
    """Every (problem, bare name) pair of the registry, as test ids."""
    pairs = []
    for problem_name in problem_names():
        problem = get_problem(problem_name)
        table = problem.schemes if kind == "scheme" else problem.baselines
        pairs.extend((problem_name, bare) for bare in sorted(table))
    return pairs


SCHEME_MATRIX = _matrix("scheme")
BASELINE_MATRIX = _matrix("baseline")


# ------------------------------------------------------------------ #
# the registry itself
# ------------------------------------------------------------------ #


class TestRegistry:
    def test_builtin_problems(self):
        assert problem_names() == ["leader", "mst", "stverify", "wakeup"]

    def test_every_problem_declares_its_interface(self):
        for name in problem_names():
            problem = get_problem(name)
            assert problem.name == name
            assert problem.title
            assert problem.output_statement
            assert problem.schemes, f"{name} registers no schemes"

    def test_unknown_problem_lists_known(self):
        with pytest.raises(ValueError, match="leader, mst, stverify, wakeup"):
            get_problem("colouring")

    def test_qualified_names_cover_the_matrix(self):
        assert qualified_names("scheme") == [
            f"{p}/{s}" for p, s in SCHEME_MATRIX
        ]
        assert qualified_names("baseline") == [
            f"{p}/{b}" for p, b in BASELINE_MATRIX
        ]

    def test_scheme_problem_attribute_matches_registry(self):
        for problem_name, bare in SCHEME_MATRIX:
            scheme = get_problem(problem_name).schemes[bare]()
            assert scheme.problem == problem_name, f"{problem_name}/{bare}"

    def test_baseline_problem_attribute_matches_registry(self):
        for problem_name, bare in BASELINE_MATRIX:
            baseline = get_problem(problem_name).baselines[bare]()
            assert baseline.problem == problem_name, f"{problem_name}/{bare}"


# ------------------------------------------------------------------ #
# target resolution
# ------------------------------------------------------------------ #


class TestResolution:
    def test_bare_names_resolve_to_mst(self):
        assert resolve_scheme("theorem3").problem == DEFAULT_PROBLEM
        assert resolve_baseline("ghs").problem == DEFAULT_PROBLEM

    def test_qualified_names_resolve_directly(self):
        assert resolve_scheme("leader/flag").name == "leader-flag"
        assert resolve_scheme("stverify/flag").name == "st-flag"
        assert resolve_baseline("wakeup/flood").name == "flood"

    def test_problem_parameter_resolves_bare_names(self):
        assert resolve_scheme("flag", problem="leader").name == "leader-flag"
        assert resolve_scheme("flag", problem="stverify").name == "st-flag"

    def test_qualifier_conflicting_with_problem_raises(self):
        with pytest.raises(ValueError, match="qualified for problem 'leader'"):
            resolve_scheme("leader/flag", problem="stverify")

    def test_unknown_target_error_lists_qualified_names(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_target("scheme", "nonsense")
        message = str(excinfo.value)
        assert "leader/flag" in message and "mst/theorem3" in message

    def test_split_target(self):
        assert split_target("leader/flag") == ("leader", "flag")
        assert split_target("theorem3") == (None, "theorem3")


# ------------------------------------------------------------------ #
# the smoke matrix: everything runs, every verifier passes
# ------------------------------------------------------------------ #


@pytest.fixture(scope="module")
def random_instance():
    return random_connected_graph(24, extra_edge_prob=0.15, seed=3)


@pytest.fixture(scope="module")
def structured_instance():
    return cycle_graph(17, seed=1)


class TestSmokeMatrix:
    @pytest.mark.parametrize("problem_name,bare", SCHEME_MATRIX)
    def test_scheme_on_random_graph(self, random_instance, problem_name, bare):
        scheme = resolve_scheme(f"{problem_name}/{bare}")
        report = run_scheme(scheme, random_instance, root=2)
        assert report.correct, report.check.reason
        assert report.problem == problem_name
        assert report.as_row()["problem"] == problem_name

    @pytest.mark.parametrize("problem_name,bare", SCHEME_MATRIX)
    def test_scheme_on_structured_family(self, structured_instance, problem_name, bare):
        scheme = resolve_scheme(f"{problem_name}/{bare}")
        report = run_scheme(scheme, structured_instance, root=0)
        assert report.correct, report.check.reason

    @pytest.mark.parametrize("problem_name,bare", BASELINE_MATRIX)
    def test_baseline_on_random_graph(self, random_instance, problem_name, bare):
        baseline = resolve_baseline(f"{problem_name}/{bare}")
        report = run_baseline(baseline, random_instance)
        assert report.correct, report.check.reason
        assert report.problem == problem_name
        assert report.as_row()["problem"] == problem_name

    @pytest.mark.parametrize("problem_name,bare", BASELINE_MATRIX)
    def test_baseline_on_structured_family(self, structured_instance, problem_name, bare):
        baseline = resolve_baseline(f"{problem_name}/{bare}")
        report = run_baseline(baseline, structured_instance)
        assert report.correct, report.check.reason

    def test_scheme_respects_its_round_bound(self, random_instance):
        n = random_instance.n
        for problem_name, bare in SCHEME_MATRIX:
            scheme = resolve_scheme(f"{problem_name}/{bare}")
            bound = scheme.round_bound(n)
            if bound is None:
                continue
            report = run_scheme(scheme, random_instance, root=2)
            assert report.rounds <= bound, f"{problem_name}/{bare}"

    def test_mst_engine_and_analytic_rows_identical(self, random_instance):
        for _, bare in [p for p in SCHEME_MATRIX if p[0] == "mst"]:
            scheme_name = f"mst/{bare}"
            engine = run_scheme(resolve_scheme(scheme_name), random_instance, root=2)
            analytic = run_scheme(
                resolve_scheme(scheme_name), random_instance, root=2, backend="analytic"
            )
            assert analytic.as_row() == engine.as_row(), scheme_name


# ------------------------------------------------------------------ #
# problem-specific behaviour worth pinning
# ------------------------------------------------------------------ #


class TestProblemContracts:
    def test_leader_flag_uses_one_bit_and_zero_rounds(self, random_instance):
        report = run_scheme(resolve_scheme("leader/flag"), random_instance, root=2)
        assert report.advice.max_bits == 1
        assert report.rounds == 0

    def test_leader_verifier_rejects_two_leaders(self, random_instance):
        problem = get_problem("leader")
        outputs = {u: "follower" for u in range(random_instance.n)}
        outputs[0] = outputs[1] = "leader"
        check = problem.check_outputs(random_instance, outputs)
        assert not check.ok
        assert "exactly one leader" in check.reason

    def test_wakeup_tree_sends_exactly_n_minus_1_messages(self, random_instance):
        report = run_scheme(
            resolve_scheme("wakeup/spanning-tree"), random_instance, root=2
        )
        assert report.correct
        assert report.metrics.total_messages == random_instance.n - 1

    def test_wakeup_flood_sends_more_than_the_tree(self, random_instance):
        tree = run_scheme(resolve_scheme("wakeup/spanning-tree"), random_instance, root=2)
        flood = run_baseline(resolve_baseline("wakeup/flood"), random_instance)
        assert flood.metrics.total_messages > tree.metrics.total_messages

    def test_stverify_distance_is_single_round(self, random_instance):
        report = run_scheme(resolve_scheme("stverify/distance"), random_instance, root=2)
        assert report.correct
        assert report.rounds == 1

    def test_stverify_flag_uses_fewer_bits_than_distance(self, random_instance):
        flag = run_scheme(resolve_scheme("stverify/flag"), random_instance, root=2)
        distance = run_scheme(resolve_scheme("stverify/distance"), random_instance, root=2)
        assert flag.correct and distance.correct
        assert flag.advice.max_bits < distance.advice.max_bits
        assert flag.rounds > distance.rounds

    def test_stverify_verifier_reports_rejections(self, random_instance):
        problem = get_problem("stverify")
        outputs = {u: "reject" for u in range(random_instance.n)}
        check = problem.check_outputs(random_instance, outputs)
        assert not check.ok
        assert "rejected the candidate tree" in check.reason


# ------------------------------------------------------------------ #
# the task layer: problem is part of every cache key
# ------------------------------------------------------------------ #


class TestTaskKeys:
    def _task(self, **kwargs):
        defaults = dict(
            kind="scheme",
            target="theorem3",
            graph=GraphSpec("random", 0.1),
            n=16,
            seed=0,
        )
        defaults.update(kwargs)
        return SweepTask(**defaults)

    def test_format_version_bumped_for_the_fault_axis(self):
        assert TASK_FORMAT_VERSION == 4

    def test_problem_is_in_every_key(self):
        assert self._task().key_dict()["problem"] == DEFAULT_PROBLEM
        leader = self._task(target="leader/flag")
        assert leader.key_dict()["problem"] == "leader"

    def test_v3_hash_differs_from_a_v2_style_key(self):
        """The format bump invalidates every pre-problem-axis cache row."""
        task = self._task()
        v3_key = task.key_dict()
        v2_key = {k: v for k, v in v3_key.items() if k != "problem"}
        v2_key["format"] = 2
        v2_hash = hashlib.sha256(
            json.dumps(v2_key, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        assert task.task_hash() != v2_hash

    def test_qualified_target_and_explicit_problem_hash_identically(self):
        assert (
            self._task(target="leader/flag").task_hash()
            == self._task(target="flag", problem="leader").task_hash()
        )

    def test_same_bare_name_hashes_per_problem(self):
        leader = self._task(target="flag", problem="leader")
        stverify = self._task(target="flag", problem="stverify")
        assert leader.task_hash() != stverify.task_hash()


# ------------------------------------------------------------------ #
# the CLI: choices are derived from the registry, not hand-written
# ------------------------------------------------------------------ #


class TestCliIntegration:
    def _action(self, parser, dest):
        for action in parser._actions:
            if action.dest == dest:
                return action
        raise AssertionError(f"no --{dest} action")

    def _subparser(self, command):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and command in (a.choices or {})
        )
        return subparsers.choices[command]

    def test_problem_choices_come_from_the_registry(self):
        for command in ("run", "sweep", "bench"):
            action = self._action(self._subparser(command), "problem")
            assert list(action.choices) == problem_names(), command

    def test_run_scheme_choices_cover_the_registry(self):
        choices = set(self._action(self._subparser("run"), "scheme").choices)
        for problem_name, bare in SCHEME_MATRIX + BASELINE_MATRIX:
            assert bare in choices
            assert f"{problem_name}/{bare}" in choices

    def test_sweep_scheme_choices_exclude_baselines(self):
        choices = set(self._action(self._subparser("sweep"), "scheme").choices)
        assert "leader/flag" in choices
        assert "leader/maxid-flood" not in choices

    def test_run_resolves_bare_name_per_problem(self, capsys):
        assert main(
            ["run", "--problem", "leader", "--scheme", "flag", "--n", "16", "--json"]
        ) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["problem"] == "leader"
        assert row["scheme"] == "leader-flag"
        assert row["correct"] is True

    def test_sweep_accepts_qualified_scheme_without_problem_flag(self, capsys):
        """A qualified --scheme needs no --problem: the qualifier wins."""
        code = main(
            ["sweep", "--scheme", "leader/rank", "--sizes", "8,16", "--repeats", "1", "--json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert all(row["problem"] == "leader" for row in rows)

    def test_run_rejects_target_foreign_to_the_problem(self, capsys):
        code = main(
            ["run", "--problem", "wakeup", "--scheme", "theorem3", "--n", "16"]
        )
        assert code == 2
        assert "has no target 'theorem3'" in capsys.readouterr().err

    def test_info_json_lists_problems(self, capsys):
        assert main(["info", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["problems"]] == problem_names()
        by_name = {p["name"]: p for p in payload["problems"]}
        assert by_name["leader"]["schemes"] == ["flag", "rank"]
        assert by_name["wakeup"]["baselines"] == ["flood"]


# ------------------------------------------------------------------ #
# specs and the problems report golden
# ------------------------------------------------------------------ #


class TestProblemSpecs:
    def _spec_dict(self, **experiment):
        base = {
            "name": "x",
            "kind": "sweep",
            "schemes": ["flag"],
            "graph": {"family": "random", "density": 0.1},
            "sizes": [8],
            "seeds": 1,
        }
        base.update(experiment)
        return {"title": "t", "experiment": [base]}

    def test_problem_key_parses(self):
        spec = spec_from_dict(self._spec_dict(problem="leader"))
        assert spec.experiments[0].problem == "leader"

    def test_problem_defaults_to_mst(self):
        spec = spec_from_dict(self._spec_dict(schemes=["theorem3"]))
        assert spec.experiments[0].problem == DEFAULT_PROBLEM

    def test_unknown_problem_rejected(self):
        with pytest.raises(ValueError, match="is not a known problem"):
            spec_from_dict(self._spec_dict(problem="colouring"))

    def test_qualified_scheme_must_match_experiment_problem(self):
        with pytest.raises(ValueError, match="the experiment's problem is 'leader'"):
            spec_from_dict(self._spec_dict(problem="leader", schemes=["mst/theorem3"]))

    def test_scheme_unknown_to_the_problem_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            spec_from_dict(self._spec_dict(problem="leader", schemes=["theorem3"]))

    def test_problems_spec_loads(self):
        spec = load_spec(PROBLEMS_SPEC)
        assert [e.problem for e in spec.experiments] == ["leader", "wakeup", "stverify"]

    def test_problems_report_matches_golden(self, tmp_path):
        result = generate_report(load_spec(PROBLEMS_SPEC), tmp_path)
        assert result.all_correct
        regenerated = {
            p.name: p.read_bytes() for p in sorted(tmp_path.iterdir()) if p.is_file()
        }
        golden = {
            p.name: p.read_bytes()
            for p in sorted(PROBLEMS_GOLDEN.iterdir())
            if p.is_file()
        }
        assert set(regenerated) == set(golden)
        for name in sorted(golden):
            assert regenerated[name] == golden[name], f"{name} drifted"

#!/usr/bin/env python
"""Demonstration of Theorem 1: 0-round schemes need Ω(log n) advice on average.

The script walks through the proof's ingredients, executably:

1. build the two-clique family ``G_n`` (Figure 1 of the paper) and verify
   that its unique MST is the spine path, whatever the admissible weight
   assignment;
2. build the *fooling family* for a spine node ``u_i``: ``h - i``
   instances whose local view at ``u_i`` is identical while the correct
   output port differs — so advice is the only way to tell them apart;
3. run the pigeonhole: truncate the advice of the (otherwise correct)
   trivial scheme at ``u_i`` to ``b`` bits and count how many instances
   *any* deterministic 0-round decoder must get wrong;
4. compare the paper's ``Ω(log n)`` average-advice lower bound with the
   average advice actually used by the trivial scheme (the matching
   upper bound).

Run with:  python examples/lower_bound_demo.py
"""

import math

from repro import TrivialRankScheme, build_gn, run_scheme
from repro.analysis import format_table
from repro.core.lower_bound import (
    average_advice_lower_bound,
    run_fooling_experiment,
    truncated_trivial_failures,
)
from repro.mst.verify import unique_mst_edge_ids


def main() -> None:
    h = 12  # nodes per clique; the graph G_n has 2h nodes

    # ---- 1. the construction --------------------------------------------
    inst = build_gn(h)
    unique, mst = unique_mst_edge_ids(inst.graph)
    print(f"G_n with h={h} (|V|={inst.graph.n}, |E|={inst.graph.m})")
    print(f"  unique MST: {unique};  MST == spine path: {sorted(mst) == inst.expected_mst_edge_ids()}\n")

    # ---- 2. the fooling family -------------------------------------------
    i = 4
    experiment = run_fooling_experiment(h, i)
    print(f"fooling family for spine node u_{i}:")
    print(f"  variants                  : {experiment.num_variants}")
    print(f"  identical local views     : {experiment.views_identical}")
    print(f"  pairwise-distinct answers : {experiment.distinct_correct_ports == experiment.num_variants}")
    print(f"  advice bits forced at u_{i}: >= log2({h - i}) = {experiment.required_bits:.2f}\n")

    # ---- 3. the pigeonhole ------------------------------------------------
    rows = []
    for budget in range(0, math.ceil(math.log2(h - i)) + 1):
        result = truncated_trivial_failures(h, i, budget_bits=budget)
        rows.append(
            {
                "advice bits at u_i": budget,
                "distinguishable groups": result["num_groups"],
                "guaranteed failures": result["min_failures"],
            }
        )
    print(format_table(rows, title=f"pigeonhole over the {h - i} fooling variants"))
    print()

    # ---- 4. lower bound vs. the achievable upper bound --------------------
    rows = []
    for hh in (8, 16, 32, 64):
        gn = build_gn(hh)
        stats = TrivialRankScheme().compute_advice(gn.graph, root=gn.v(1)).stats()
        rows.append(
            {
                "h": hh,
                "n = 2h": 2 * hh,
                "lower bound (avg bits)": round(average_advice_lower_bound(hh), 2),
                "trivial scheme (avg bits)": round(stats.average_bits, 2),
                "log2(n)": round(math.log2(2 * hh), 2),
            }
        )
    print(format_table(rows, title="average advice on G_n: bound vs. the trivial scheme"))
    print(
        "\nReading: no 0-round scheme can beat the lower-bound column, and the trivial\n"
        "scheme shows the Θ(log n) scaling is achievable — both grow with log n, which\n"
        "is exactly Theorem 1."
    )

    # sanity: the trivial scheme is indeed correct on G_n
    report = run_scheme(TrivialRankScheme(), inst.graph, root=inst.v(1))
    assert report.correct


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Inspecting the Theorem-3 decoder round by round.

The ``(O(1), O(log n))`` scheme runs in fixed phase windows: inside each
window every fragment convergecasts its unconsumed advice bits to its
root, the root broadcasts the fragment advice back down, and the
choosing node attaches the fragment across its selected MST edge; a
final collection wave then tells each remaining fragment root its own
parent.  This example attaches a :class:`repro.simulator.Tracer` to a
run and prints that story: per round, how many messages were exchanged
and how many nodes learned their final output, annotated with the phase
windows of the schedule.

Run with:  python examples/decoder_trace.py
"""

from repro import ShortAdviceScheme, random_connected_graph
from repro.analysis import format_table
from repro.core.scheme_main import num_boruvka_phases, phase_window_rounds
from repro.core.verification import check_outputs
from repro.simulator import Tracer, run_sync


def segment_labels(n: int, total_rounds: int):
    """Label every round with its place in the decoder's fixed schedule."""
    labels = {}
    round_number = 1
    for phase in range(1, num_boruvka_phases(n) + 1):
        for _ in range(phase_window_rounds(phase)):
            labels[round_number] = f"phase {phase}"
            round_number += 1
    while round_number <= total_rounds:
        labels[round_number] = "final collection"
        round_number += 1
    return labels


def main() -> None:
    graph = random_connected_graph(64, extra_edge_prob=0.06, seed=11)
    root = 0
    scheme = ShortAdviceScheme()
    advice = scheme.compute_advice(graph, root=root)

    tracer = Tracer()
    result = run_sync(graph, scheme.program_factory(), advice=advice.as_payloads(), tracer=tracer)
    check = check_outputs(graph, result.outputs, expected_root=root)

    print(f"n={graph.n}, m={graph.m}, root={root}")
    print(f"decoded a correct rooted MST: {check.ok}")
    print(f"rounds used: {result.metrics.rounds}  "
          f"(budget 9*ceil(log2 n) = {9 * (graph.n - 1).bit_length()})\n")

    labels = segment_labels(graph.n, result.metrics.rounds)
    rows = []
    for record in tracer.rounds:
        if record.round == 0:
            continue
        rows.append(
            {
                "round": record.round,
                "schedule": labels.get(record.round, "?"),
                "messages": record.message_count,
                "bits": record.total_bits,
                "nodes halted": len(record.halted),
            }
        )
    print(format_table(rows, title="round-by-round activity of the Theorem-3 decoder"))
    print(
        "\nReading: bursts of messages mark the convergecast/broadcast of each phase\n"
        "window (quiet rounds are the slack of the worst-case schedule); almost all\n"
        "nodes learn their output during the phases, and the remaining fragment roots\n"
        "finish during the final collection wave."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Building and running a report spec programmatically.

`specs/paper.toml` regenerates the paper's result set from the command
line, but a spec is just data — this example builds one in Python with
:func:`repro.report.spec_from_dict`, runs it through
:func:`repro.report.generate_report`, and shows the determinism
contract in action: the artifacts from a serial engine run are
byte-identical to a parallel analytic run.

Run with:  python examples/report_pipeline.py [--jobs N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.report import generate_report, spec_from_dict


def build_spec():
    """A tiny two-experiment report: family curves + the Theorem-1 table."""
    return spec_from_dict(
        {
            "title": "Example report — theorem3 across graph families",
            "description": "Built by examples/report_pipeline.py.",
            "defaults": {"backend": "engine"},
            "experiment": [
                {
                    "name": "hypercube-curves",
                    "kind": "sweep",
                    "schemes": ["trivial", "theorem3"],
                    "graph": {"family": "hypercube"},
                    "sizes": [8, 16, 32],
                    "seeds": 2,
                },
                {
                    "name": "powerlaw-curves",
                    "kind": "sweep",
                    "schemes": ["theorem3"],
                    "graph": {"family": "powerlaw"},
                    "sizes": [16, 32],
                    "seeds": 2,
                },
                {"name": "lowerbound", "kind": "lowerbound", "h": 8, "i": 3},
            ],
        }
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2, help="worker processes (default 2)")
    args = parser.parse_args()

    spec = build_spec()
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        parallel_dir = Path(tmp) / "parallel"

        serial = generate_report(spec, serial_dir)
        parallel = generate_report(
            spec, parallel_dir, jobs=args.jobs, backend="analytic"
        )

        print(f"artifacts: {', '.join(serial.artifacts)}")
        print(f"tasks executed per run: {serial.tasks_run}")
        identical = all(
            (serial_dir / name).read_bytes() == (parallel_dir / name).read_bytes()
            for name in serial.artifacts
        )
        print(
            f"serial engine vs --jobs {args.jobs} analytic byte-identical: {identical}"
        )
        assert identical, "determinism contract violated"

        print()
        print((serial_dir / "hypercube-curves.md").read_text())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run every advising scheme of the paper on one small network.

The MST problem of the paper: every node of an edge-weighted network
must output the port number of the edge leading to its parent in a
rooted minimum spanning tree, the root outputs that it is the root.
An ``(m, t)``-advising scheme solves this with at most ``m`` bits of
oracle advice per node and ``t`` communication rounds.

This script builds a random connected network, runs

* the trivial ``(⌈log n⌉, 0)`` scheme (Section 1),
* Theorem 2's ``(O(log² n), 1)`` scheme with constant *average* advice,
* Theorem 3's ``(O(1), O(log n))`` scheme (the paper's main result), and
* the two no-advice baselines (LOCAL full-information and GHS-style),

verifies that each one decodes a correct rooted MST, and prints the
advice-size / round-complexity trade-off they realise.

Run with:  python examples/quickstart.py
"""

from repro import ShortAdviceScheme, random_connected_graph, run_scheme
from repro.analysis import format_table, theoretical_tradeoff_rows, tradeoff_rows


def main() -> None:
    n = 96
    graph = random_connected_graph(n, extra_edge_prob=0.06, seed=7)
    root = 0
    print(f"network: n={graph.n} nodes, m={graph.m} edges, root={root}\n")

    # --- a single scheme, end to end -------------------------------------
    report = run_scheme(ShortAdviceScheme(), graph, root=root)
    print("Theorem 3 scheme on this instance:")
    print(f"  correct rooted MST : {report.correct}")
    print(f"  max advice per node: {report.advice.max_bits} bits (constant in n)")
    print(f"  avg advice per node: {report.advice.average_bits:.2f} bits")
    print(f"  rounds             : {report.rounds}  (paper bound 9⌈log n⌉ = {9 * (n - 1).bit_length()})")
    print(f"  max bits/edge/round: {report.metrics.max_edge_bits_per_round}\n")

    # --- the full measured trade-off --------------------------------------
    rows = tradeoff_rows(graph, root=root)
    print(
        format_table(
            rows,
            columns=[
                "scheme",
                "max_advice_bits",
                "avg_advice_bits",
                "rounds",
                "max_edge_bits_per_round",
                "correct",
            ],
            title="measured advice/time trade-off",
        )
    )
    print()
    print(
        format_table(
            theoretical_tradeoff_rows(graph.n),
            columns=["scheme", "max_advice_bits", "rounds"],
            title="the paper's claimed trade-off (for the same n)",
        )
    )


if __name__ == "__main__":
    main()

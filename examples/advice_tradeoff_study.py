#!/usr/bin/env python
"""Study: how advice size and round complexity scale with the network size.

This reproduces, as curves over ``n``, the paper's three upper-bound
results side by side:

* trivial scheme — max advice grows like ``log₂ n``, 0 rounds;
* Theorem 2 — *average* advice stays below the constant
  ``c = Σ (i+1)/2^{i-2} = 12`` while the maximum grows like ``log² n``,
  1 round;
* Theorem 3 — *maximum* advice stays constant while the number of rounds
  grows like ``log n`` (within the paper's ``9⌈log n⌉`` budget).

Run with:  python examples/advice_tradeoff_study.py [--quick] [--jobs N]

The sweeps route through ``repro.runner``: pass ``--jobs N`` to fan the
runs over worker processes and ``--cache-dir DIR`` to reuse results
across invocations (the output is byte-identical either way).
"""

import argparse

from repro.analysis import default_graph_factory, run_scheme_sweep
from repro.core.scheme_average import paper_average_constant
from repro.core.scheme_main import ShortAdviceScheme as Main


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweep for a fast demo")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument("--cache-dir", default=None, help="on-disk result cache directory")
    args = parser.parse_args()

    sizes = (16, 32, 64, 128, 256) if args.quick else (16, 32, 64, 128, 256, 512, 1024)
    factory = default_graph_factory(extra_edge_prob=0.04)
    seeds = (0, 1)

    for scheme in ("trivial", "theorem2", "theorem3"):
        sweep = run_scheme_sweep(
            scheme,
            sizes,
            graph_factory=factory,
            seeds=seeds,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        print(
            sweep.to_text(
                columns=[
                    "n",
                    "log2_n",
                    "max_advice_bits",
                    "avg_advice_bits",
                    "rounds",
                    "rounds_per_log_n",
                    "congest_factor",
                    "correct",
                ]
            )
        )
        print()

    print("reference constants:")
    print(f"  Theorem 2 average-advice constant  c = {paper_average_constant():.1f} bits")
    print(f"  Theorem 3 paper bounds             m = {Main.paper_advice_bound():.0f} bits, "
          f"t <= 9*ceil(log2 n)")
    print(
        "\nReading: the trivial scheme's max advice tracks log2(n); Theorem 2's average\n"
        "column is flat and below 12 while its max grows; Theorem 3's max column is\n"
        "flat while its rounds track log2(n) (rounds_per_log_n stays bounded)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: building a communication backbone in a wireless sensor field.

A classic motivation for *local* MST computation: a field of sensors
(random geometric graph, link weight = radio distance ≈ energy cost)
must agree on a minimum-energy spanning backbone.  Each sensor only
talks to its radio neighbours, and the deployment tool (the "oracle", which
knows the survey map) can preload a tiny amount of configuration into
each sensor before the network boots.

This example compares three deployment strategies on the same field:

1. preload nothing and let the network run a GHS-style protocol
   (no advice — many communication rounds, i.e. slow, energy-hungry
   boot);
2. preload the full parent port in every sensor (the trivial scheme —
   instant boot, but the preload grows with the network size and must be
   recomputed for every root change);
3. preload the constant-size Theorem-3 advice (a handful of bits per
   sensor) and let the network boot in ``O(log n)`` rounds.

Run with:  python examples/sensor_network.py
"""

from repro import (
    AverageConstantScheme,
    ShortAdviceScheme,
    TrivialRankScheme,
    random_geometric_graph,
    run_scheme,
)
from repro.analysis import format_table
from repro.distributed import SynchronizedBoruvkaMST, run_baseline


def main() -> None:
    field = random_geometric_graph(180, seed=42)  # 180 sensors on the unit square
    sink = 0  # the data sink is the root of the backbone
    print(
        f"sensor field: {field.n} sensors, {field.m} radio links, "
        f"sink node {sink}\n"
    )

    rows = []

    for scheme in (TrivialRankScheme(), AverageConstantScheme(), ShortAdviceScheme()):
        report = run_scheme(scheme, field, root=sink)
        rows.append(
            {
                "strategy": f"preload: {scheme.name}",
                "preload bits/sensor (max)": report.advice.max_bits,
                "preload bits/sensor (avg)": round(report.advice.average_bits, 2),
                "boot rounds": report.rounds,
                "max bits on a link/round": report.metrics.max_edge_bits_per_round,
                "backbone ok": report.correct,
            }
        )

    baseline = run_baseline(SynchronizedBoruvkaMST(), field)
    rows.append(
        {
            "strategy": "no preload (GHS-style)",
            "preload bits/sensor (max)": 0,
            "preload bits/sensor (avg)": 0.0,
            "boot rounds": baseline.rounds,
            "max bits on a link/round": baseline.metrics.max_edge_bits_per_round,
            "backbone ok": baseline.correct,
        }
    )

    print(format_table(rows, title="deployment strategies for the backbone"))
    print(
        "\nReading: with a constant-size preload per sensor (Theorem 3) the network\n"
        "boots its minimum-energy backbone exponentially faster than without any\n"
        "preload, while avoiding the log(n)-bit per-sensor preload of the naive\n"
        "strategy."
    )


if __name__ == "__main__":
    main()

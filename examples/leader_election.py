#!/usr/bin/env python
"""Leader election with short advice: the problem layer beyond MST.

The advising framework of the paper is problem-agnostic: an oracle that
sees the whole instance hands each node at most ``m`` bits, and a
distributed decoder must solve the problem within ``t`` rounds.  This
script instantiates it for *leader election* on an anonymous
port-numbered network, where comparison-based algorithms cannot even
break symmetry without identifiers, yet advice makes the problem
trivially cheap:

* ``leader/flag`` — one advice bit per node ("you are the leader"),
  zero rounds;
* ``leader/rank`` — ``O(log n)`` bits encode every node's rank, so the
  leader (rank 0) is also globally ordered, still zero rounds;
* ``leader/maxid-flood`` — the classical no-advice baseline: every node
  floods the largest identifier it has seen for ``n`` rounds.

Each run is verified by the leader problem's own checker (exactly one
node outputs "leader", everyone else "follower").

Run with:  python examples/leader_election.py
"""

from repro import random_connected_graph, run_scheme
from repro.analysis import format_table
from repro.distributed.base import run_baseline
from repro.runner import resolve_baseline, resolve_scheme


def main() -> None:
    n = 96
    graph = random_connected_graph(n, extra_edge_prob=0.06, seed=7)
    root = 5
    print(f"network: n={graph.n} nodes, m={graph.m} edges, designated leader={root}\n")

    # --- one advice bit, zero rounds --------------------------------------
    report = run_scheme(resolve_scheme("leader/flag"), graph, root=root)
    print("1-bit flag scheme on this instance:")
    print(f"  correct election   : {report.correct}")
    print(f"  max advice per node: {report.advice.max_bits} bit")
    print(f"  rounds             : {report.rounds}\n")

    # --- advice schemes vs the no-advice flood ----------------------------
    rows = []
    for target in ("leader/flag", "leader/rank"):
        scheme_report = run_scheme(resolve_scheme(target), graph, root=root)
        rows.append(
            {
                "scheme": scheme_report.scheme,
                "max_advice_bits": scheme_report.advice.max_bits,
                "avg_advice_bits": round(scheme_report.advice.average_bits, 2),
                "rounds": scheme_report.rounds,
                "total_messages": scheme_report.metrics.total_messages,
                "correct": scheme_report.correct,
            }
        )
    baseline_report = run_baseline(resolve_baseline("leader/maxid-flood"), graph)
    rows.append(
        {
            "scheme": baseline_report.baseline,
            "max_advice_bits": 0,
            "avg_advice_bits": 0.0,
            "rounds": baseline_report.rounds,
            "total_messages": baseline_report.metrics.total_messages,
            "correct": baseline_report.correct,
        }
    )
    print(format_table(rows, title="advice vs no advice for leader election"))


if __name__ == "__main__":
    main()

"""Pytest bootstrap.

Ensures the ``src`` layout is importable even when the package has not
been installed (e.g. running ``pytest`` straight from a fresh checkout,
or on machines without network access for ``pip install -e .``).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

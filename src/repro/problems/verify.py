"""Output verifiers shared by the tree-shaped problems.

Three of the built-in problems ask (some or all) nodes to output the
port of the edge leading to their parent in a rooted spanning tree —
MST, wake-up and spanning-tree verification differ only in *which*
spanning tree is acceptable.  :func:`check_spanning_outputs` performs
the shape checks every one of them needs:

1. exactly one node declares itself the root
   (:data:`repro.mst.rooted_tree.ROOT_OUTPUT`);
2. every other node names a valid port;
3. following parent pointers from every node reaches the root (no
   cycles, no second component);
4. the parent edges form exactly ``n - 1`` distinct edges.

:func:`check_outputs` is the MST problem's verifier: the shape checks
plus the minimality condition (tree weight equals the Kruskal MST
weight).  It lives here — and not next to the MST scheme registry — so
that :mod:`repro.core.verification` can re-export it without importing
the whole scheme stack.

Both return a structured :class:`~repro.core.problem.OutputCheck` so
tests and benchmarks can report *why* an output was rejected, not just
that it was.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

import numpy as np

from repro.core.problem import OutputCheck
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT

__all__ = ["check_outputs", "check_spanning_outputs"]


def _check_spanning_fast(
    graph: PortNumberedGraph,
    outputs: Dict[int, Any],
    expected_root: Optional[int],
) -> Optional[OutputCheck]:
    """Vectorised accept path of :func:`check_spanning_outputs`.

    Returns the passing :class:`OutputCheck` when the outputs form a
    valid rooted spanning tree, ``None`` when anything is off — missing
    or non-integer outputs, bad root count, invalid ports, cycles,
    duplicate edges.  Rejections fall back to the Python reference path
    so every failure message stays byte-identical; only the (hot,
    all-correct) accept path is vectorised.
    """
    n = graph.n
    if graph.m == 0:  # edgeless corner cases keep the reference path
        return None
    values = [outputs.get(u) for u in range(n)]
    # floats (2.0) would silently cast below but the reference path
    # rejects them; bool is an int subclass there, so it passes here too
    if not all(isinstance(v, (int, np.integer)) for v in values):
        return None
    out_arr = np.asarray(values, dtype=np.int64)
    roots = np.flatnonzero(out_arr == ROOT_OUTPUT)
    if roots.size != 1:
        return None
    root = int(roots[0])
    if expected_root is not None and root != expected_root:
        return None
    non_root = out_arr != ROOT_OUTPUT
    ports = out_arr[non_root]
    if ports.size and (
        int(ports.min()) < 0 or np.any(ports >= graph._degrees[non_root])
    ):
        return None
    slots = graph._offsets[:-1] + np.where(non_root, out_arr, 0)
    parent = np.where(non_root, graph._adj_neighbor[slots], np.arange(n))
    parent_edge = np.where(non_root, graph._adj_edge[slots], -1)
    # pointer doubling: after ceil(log2 n) squarings every node that
    # reaches the root has collapsed onto it; survivors are cycles
    # (a bounded iteration count — cyclic pointer maps never reach a
    # fixed point under squaring)
    hops = parent
    for _ in range(max(1, int(n).bit_length())):
        nxt = hops[hops]
        if np.array_equal(nxt, hops):
            break
        hops = nxt
    if np.any(hops != root):
        return None
    tree_edges = np.unique(parent_edge[non_root])
    if tree_edges.size != n - 1:
        return None
    return OutputCheck(
        True,
        "ok",
        root=root,
        tree_edge_ids=tuple(tree_edges.tolist()),
        tree_weight=graph.total_weight(tree_edges.tolist()),
    )


def check_spanning_outputs(
    graph: PortNumberedGraph,
    outputs: Dict[int, Any],
    expected_root: Optional[int] = None,
) -> OutputCheck:
    """Validate that ``outputs`` describes *some* rooted spanning tree.

    Parameters
    ----------
    graph:
        The instance the outputs were produced on.
    outputs:
        Mapping ``node -> port`` (or :data:`ROOT_OUTPUT` for the root).
    expected_root:
        If given, additionally require the declared root to be this node.
    """
    fast = _check_spanning_fast(graph, outputs, expected_root)
    if fast is not None:
        return fast
    # -------- shape checks --------
    n = graph.n
    out_list = [outputs.get(u) for u in range(n)]
    missing = sum(1 for value in out_list if value is None)
    if missing:
        return OutputCheck(False, f"{missing} node(s) produced no output")

    roots = [u for u, value in enumerate(out_list) if value == ROOT_OUTPUT]
    if len(roots) != 1:
        return OutputCheck(False, f"expected exactly one root, found {len(roots)}")
    root = roots[0]
    if expected_root is not None and root != expected_root:
        return OutputCheck(False, f"root is {root}, expected {expected_root}")

    neighbors, edge_ids = graph.adjacency_tables()
    parent: List[int] = [-1] * n
    parent_edge: List[int] = [-1] * n
    for u, port in enumerate(out_list):
        if u == root:
            continue
        if not isinstance(port, int) or not 0 <= port < len(neighbors[u]):
            return OutputCheck(False, f"node {u} output an invalid port {port!r}")
        parent[u] = neighbors[u][port]
        parent_edge[u] = edge_ids[u][port]

    # -------- every node reaches the root (acyclicity + connectivity) --------
    status = [-1] * n  # -1 = unvisited, 0 = on the current path, 1 = reaches root
    status[root] = 1
    for start in range(n):
        path: List[int] = []
        u = start
        while status[u] < 0:
            status[u] = 0  # on the current path
            path.append(u)
            u = parent[u]
            if status[u] == 0:
                return OutputCheck(False, f"parent pointers contain a cycle through node {u}")
        if status[u] == 1:
            for v in path:
                status[v] = 1

    # -------- the parent edges form a spanning tree --------
    tree_edges: Set[int] = set(parent_edge)
    tree_edges.discard(-1)
    if len(tree_edges) != n - 1:
        return OutputCheck(
            False,
            f"parent edges form {len(tree_edges)} distinct edges, expected {n - 1}",
        )
    return OutputCheck(
        True,
        "ok",
        root=root,
        tree_edge_ids=tuple(sorted(tree_edges)),
        tree_weight=graph.total_weight(tree_edges),
    )


def check_outputs(
    graph: PortNumberedGraph,
    outputs: Dict[int, Any],
    expected_root: Optional[int] = None,
    tolerance: float = 1e-9,
) -> OutputCheck:
    """Validate per-node outputs against the MST problem specification.

    The spanning-tree shape checks of :func:`check_spanning_outputs`
    plus minimality: the parent edges must have the same total weight as
    a reference Kruskal MST (cached on the immutable graph instance).
    """
    check = check_spanning_outputs(graph, outputs, expected_root=expected_root)
    if not check.ok:
        return check
    tree_weight = check.tree_weight
    # the reference MST weight is a pure function of the immutable graph
    mst_weight = getattr(graph, "_mst_weight_cache", None)
    if mst_weight is None:
        mst_weight = graph.total_weight(kruskal_mst(graph))
        graph._mst_weight_cache = mst_weight
    if abs(tree_weight - mst_weight) > tolerance:
        return OutputCheck(
            False,
            f"tree weight {tree_weight} differs from MST weight {mst_weight}",
            root=check.root,
            tree_edge_ids=check.tree_edge_ids,
            tree_weight=tree_weight,
            mst_weight=mst_weight,
        )
    return OutputCheck(
        True,
        "ok",
        root=check.root,
        tree_edge_ids=check.tree_edge_ids,
        tree_weight=tree_weight,
        mst_weight=mst_weight,
    )

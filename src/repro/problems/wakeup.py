"""Wake-up / broadcast with advice: spend bits to silence edges.

A designated *source* holds a wake-up signal; every node must learn it
and output the port the signal arrived on (the source outputs
:data:`~repro.mst.rooted_tree.ROOT_OUTPUT`), so the outputs describe a
rooted spanning tree of the wake.  Without advice the only deterministic
option on an anonymous graph is *flooding*: on first wake, forward the
signal on every other port — ``2m - n + 1`` messages.  An oracle that
writes each node's **children in a spanning tree** into its advice
restricts transmission to the tree edges: exactly ``n - 1`` messages,
the information-theoretic minimum for waking ``n - 1`` sleepers.  The
advising framework makes the message trade-off measurable bit by bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitReader, BitString, BitWriter
from repro.core.oracle import AdvisingScheme
from repro.core.problem import OutputCheck, Problem, register_problem
from repro.distributed.base import DistributedBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree
from repro.problems.verify import check_spanning_outputs
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = [
    "FloodBaseline",
    "SpanningTreeWakeupScheme",
    "WakeupProblem",
    "port_width",
]

#: the payload of the wake-up signal (its content never matters)
WAKE = "w"


def port_width(degree: int) -> int:
    """Bits needed to name one port of a ``degree``-port node."""
    return (degree - 1).bit_length() if degree > 1 else 0


# ---------------------------------------------------------------------- #
# the advised scheme: transmit on tree edges only
# ---------------------------------------------------------------------- #


class _TreeWakeupProgram(NodeProgram):
    """Forward the wake signal to the advised children, nowhere else."""

    def __init__(self) -> None:
        self._child_ports: List[int] = []

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        is_source = (not reader.at_end()) and reader.read_bit() == 1
        count = reader.read_uint(ctx.degree.bit_length())
        width = port_width(ctx.degree)
        self._child_ports = [reader.read_uint(width) for _ in range(count)]
        if is_source:
            for port in self._child_ports:
                ctx.send(port, WAKE)
            ctx.halt(ROOT_OUTPUT)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        if not inbox:
            return  # still asleep
        parent_port = min(inbox)  # the tree parent is the only sender
        for port in self._child_ports:
            ctx.send(port, WAKE)
        ctx.halt(parent_port)


class SpanningTreeWakeupScheme(AdvisingScheme):
    """Advise every node of its children in a rooted spanning tree.

    The oracle roots the reference MST at the source (any spanning tree
    works; reusing the MST shares the per-graph caches) and writes, per
    node, one source flag, the child count, and the child ports.  The
    wake then travels over tree edges only: ``n - 1`` messages and as
    many rounds as the tree is deep.

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> graph = random_connected_graph(32, 0.1, seed=1)
    >>> report = run_scheme(SpanningTreeWakeupScheme(), graph)
    >>> report.correct, report.metrics.total_messages == graph.n - 1
    (True, True)
    """

    name = "wakeup-tree"
    problem = "wakeup"

    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
        # child ports as seen from the parent, bucketed per parent
        child_ports: List[List[int]] = [[] for _ in range(graph.n)]
        for v in range(graph.n):
            u = tree.parent[v]
            if u < 0:
                continue
            e = tree.parent_edge[v]
            port = graph.edge_port_u[e] if graph.edge_u[e] == u else graph.edge_port_v[e]
            child_ports[u].append(int(port))
        advice = AdviceAssignment(graph.n)
        degrees = graph._degrees.tolist()
        for u in range(graph.n):
            degree = int(degrees[u])
            writer = BitWriter()
            writer.write_bit(1 if u == root else 0)
            writer.write_uint(len(child_ports[u]), degree.bit_length())
            width = port_width(degree)
            for port in child_ports[u]:
                writer.write_uint(port, width)
            advice.set(u, writer.getvalue())
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _TreeWakeupProgram()

    def round_bound(self, n: int) -> float:
        # the wake crosses any rooted spanning tree within its depth <= n - 1
        return float(n)


# ---------------------------------------------------------------------- #
# the no-advice baseline: flood everything
# ---------------------------------------------------------------------- #


class _FloodProgram(NodeProgram):
    """On first wake, forward the signal on every port but the parent's."""

    def init(self, ctx: NodeContext) -> None:
        if ctx.node_id == 0:  # the designated source (documented deviation)
            for port in ctx.ports():
                ctx.send(port, WAKE)
            ctx.halt(ROOT_OUTPUT)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        if not inbox:
            return  # still asleep
        parent_port = min(inbox)  # earliest wave; ties broken by port number
        for port in ctx.ports():
            if port != parent_port:
                ctx.send(port, WAKE)
        ctx.halt(parent_port)


class FloodBaseline(DistributedBaseline):
    """Wake the graph by flooding: ``2m - n + 1`` messages.

    Anonymous except for the choice of source: with no advice available
    to designate one, the node with identifier 0 starts the wake (a
    documented deviation, the wake-up analogue of D1 in DESIGN.md).  The
    first wave reaches every node along a BFS tree of the source, so the
    recorded parent ports always form a valid spanning tree.
    """

    name = "flood"
    problem = "wakeup"

    def program_factory(self, graph: PortNumberedGraph) -> ProgramFactory:
        return lambda ctx: _FloodProgram()

    def round_bound(self, graph: PortNumberedGraph) -> float:
        # the wave advances one BFS layer per round; eccentricity <= n - 1
        return float(graph.n)


# ---------------------------------------------------------------------- #
# the problem
# ---------------------------------------------------------------------- #


class WakeupProblem(Problem):
    """The wake must reach everyone; outputs draw the broadcast tree."""

    name = "wakeup"
    title = "Wake-up / broadcast"
    output_statement = (
        "every node outputs the port its wake-up signal arrived on (the "
        "source outputs ROOT_OUTPUT); the ports must form a rooted "
        "spanning tree"
    )
    schemes = {
        "spanning-tree": SpanningTreeWakeupScheme,
    }
    baselines = {
        "flood": FloodBaseline,
    }

    def check_outputs(
        self, graph: Any, outputs: Dict[int, Any], expected_root: Optional[int] = None
    ) -> OutputCheck:
        """Any rooted spanning tree is a valid wake (no weight condition)."""
        return check_spanning_outputs(graph, outputs, expected_root=expected_root)


register_problem(WakeupProblem())

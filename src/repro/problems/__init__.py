"""The built-in problems hosted by the advising framework.

Importing this package registers every built-in problem into the
process-wide registry of :mod:`repro.core.problem` (the registry imports
this package lazily on first lookup, so user code never has to):

``mst``
    The paper's problem — minimum spanning tree construction, with the
    four schemes of Theorems 1–3 and the GHS-style / full-information
    baselines (:mod:`repro.problems.mst`).
``leader``
    Leader election: impossible with 0 advice bits on anonymous graphs,
    solved in 0 rounds by 1 bit (:mod:`repro.problems.leader`).
``wakeup``
    Wake-up / broadcast: spanning-tree advice cuts the message count
    from ``2m - n + 1`` (flooding) to ``n - 1``
    (:mod:`repro.problems.wakeup`).
``stverify``
    Spanning-tree verification: depth advice buys a one-round check,
    the minimal encoding pays ``depth + 1`` rounds
    (:mod:`repro.problems.stverify`).
``verify``
    The rooted-spanning-tree output checkers shared by ``mst``,
    ``wakeup`` and ``stverify`` (:mod:`repro.problems.verify`).

To add a fourth problem, subclass :class:`repro.core.problem.Problem`,
point its ``schemes``/``baselines`` registries at your factories, call
:func:`repro.core.problem.register_problem`, and import the module here
— see ``docs/problems.md`` for a walk-through.
"""

from repro.problems.leader import LeaderFlagScheme, LeaderProblem, LeaderRankScheme, MaxIdFloodBaseline
from repro.problems.mst import MSTProblem
from repro.problems.stverify import StDistanceScheme, StFlagScheme, StVerifyProblem
from repro.problems.verify import check_outputs, check_spanning_outputs
from repro.problems.wakeup import FloodBaseline, SpanningTreeWakeupScheme, WakeupProblem

__all__ = [
    "FloodBaseline",
    "LeaderFlagScheme",
    "LeaderProblem",
    "LeaderRankScheme",
    "MSTProblem",
    "MaxIdFloodBaseline",
    "SpanningTreeWakeupScheme",
    "StDistanceScheme",
    "StFlagScheme",
    "StVerifyProblem",
    "WakeupProblem",
    "check_outputs",
    "check_spanning_outputs",
]

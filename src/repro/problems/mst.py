"""The paper's problem: minimum spanning tree with short advice.

Every node must output the port of its parent edge in a rooted MST of
the instance (the root outputs :data:`~repro.mst.rooted_tree.ROOT_OUTPUT`).
This is the problem all four of the paper's schemes solve; the class
below simply gathers the existing scheme and baseline registries and the
verifier under the :class:`~repro.core.problem.Problem` interface.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.problem import OutputCheck, Problem, register_problem
from repro.core.scheme_average import AverageConstantScheme
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.distributed.boruvka_sync import SynchronizedBoruvkaMST
from repro.distributed.full_info import FullInformationMST
from repro.problems.verify import check_outputs

__all__ = ["MSTProblem"]


class MSTProblem(Problem):
    """Minimum spanning tree, the instantiation studied by the paper."""

    name = "mst"
    title = "Minimum spanning tree construction"
    output_statement = (
        "every node outputs the port of its parent edge in one rooted MST "
        "of the instance; the designated root outputs ROOT_OUTPUT"
    )
    schemes = {
        "trivial": TrivialRankScheme,
        "theorem2": AverageConstantScheme,
        "theorem3": ShortAdviceScheme,
        "theorem3-level": LevelAdviceScheme,
    }
    baselines = {
        "ghs": SynchronizedBoruvkaMST,
        "full-info": FullInformationMST,
    }

    def check_outputs(
        self, graph: Any, outputs: Dict[int, Any], expected_root: Optional[int] = None
    ) -> OutputCheck:
        """A rooted spanning tree whose weight matches the Kruskal MST."""
        return check_outputs(graph, outputs, expected_root=expected_root)


register_problem(MSTProblem())

"""Leader election with advice on anonymous port-numbered graphs.

Leader election is the sharpest illustration of the advising-scheme
framework: on anonymous port-numbered graphs the problem is
**impossible with 0 advice bits** (two nodes of a symmetric graph — say
a cycle with identical port numberings — see identical views forever, so
a deterministic algorithm either elects both or neither), yet a *single*
bit of advice per node solves it in **zero rounds**: the oracle writes
``1`` at the leader and ``0`` everywhere else.  The classic
``O(log n)``-bit alternative hands every node a distinct rank and elects
rank 0 — more bits for no fewer rounds, which is exactly the kind of
trade-off the framework is built to chart.

The no-advice baseline runs on the *non-anonymous* variant (it uses the
node identifiers exposed by :class:`~repro.graphs.weighted_graph.LocalView`
and knows ``n`` — a documented deviation, mirroring D1 in DESIGN.md):
every node floods the maximum identifier it has seen for ``n`` rounds
and the node holding the maximum elects itself.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitReader, BitString
from repro.core.oracle import AdvisingScheme
from repro.core.problem import OutputCheck, Problem, register_problem
from repro.distributed.base import DistributedBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = [
    "FOLLOWER_OUTPUT",
    "LEADER_OUTPUT",
    "LeaderFlagScheme",
    "LeaderProblem",
    "LeaderRankScheme",
    "MaxIdFloodBaseline",
]

#: output of the elected node
LEADER_OUTPUT = "leader"
#: output of every other node
FOLLOWER_OUTPUT = "follower"


# ---------------------------------------------------------------------- #
# the (1, 0) scheme: one flag bit
# ---------------------------------------------------------------------- #


class _FlagProgram(NodeProgram):
    """Zero-round decoder: the advice bit *is* the answer."""

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        is_leader = (not reader.at_end()) and reader.read_bit() == 1
        ctx.halt(LEADER_OUTPUT if is_leader else FOLLOWER_OUTPUT)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        ctx.halt()  # a 0-round algorithm never reaches this point


class LeaderFlagScheme(AdvisingScheme):
    """The ``(1, 0)``-advising scheme: "you are the leader" in one bit.

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> report = run_scheme(LeaderFlagScheme(), random_connected_graph(32, 0.1, seed=1))
    >>> report.correct, report.rounds, report.advice.max_bits
    (True, 0, 1)
    """

    name = "leader-flag"
    problem = "leader"

    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        advice = AdviceAssignment(graph.n)
        one = BitString.from_uint(1, 1)
        zero = BitString.from_uint(0, 1)
        for u in range(graph.n):
            advice.set(u, one if u == root else zero)
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _FlagProgram()

    def advice_bound_bits(self, n: int) -> float:
        return 1.0

    def round_bound(self, n: int) -> float:
        return 0.0


# ---------------------------------------------------------------------- #
# the (⌈log n⌉, 0) scheme: distinct ranks
# ---------------------------------------------------------------------- #


class _RankProgram(NodeProgram):
    """Zero-round decoder: rank 0 is the leader."""

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        rank = reader.read_uint(reader.remaining)
        ctx.halt(LEADER_OUTPUT if rank == 0 else FOLLOWER_OUTPUT)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        ctx.halt()  # a 0-round algorithm never reaches this point


class LeaderRankScheme(AdvisingScheme):
    """The ``(⌈log n⌉, 0)`` scheme: every node gets a distinct rank.

    Wasteful on purpose — it makes the gap to the one-bit scheme
    measurable.  The designated node receives rank 0 and wins.
    """

    name = "leader-rank"
    problem = "leader"

    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        n = graph.n
        width = max(1, (n - 1).bit_length())
        advice = AdviceAssignment(n)
        for u in range(n):
            if u == root:
                rank = 0
            else:
                rank = u + 1 if u < root else u
            advice.set(u, BitString.from_uint(rank, width))
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _RankProgram()

    def advice_bound_bits(self, n: int) -> float:
        return float(max(1, (n - 1).bit_length()))

    def round_bound(self, n: int) -> float:
        return 0.0


# ---------------------------------------------------------------------- #
# the no-advice baseline: flood the maximum identifier
# ---------------------------------------------------------------------- #


class _MaxIdFloodProgram(NodeProgram):
    """Flood the best identifier seen; the maximum elects itself."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._best = -1

    def init(self, ctx: NodeContext) -> None:
        self._best = ctx.node_id
        if ctx.degree == 0:
            ctx.halt(LEADER_OUTPUT)  # a singleton is its own leader
            return
        for port in ctx.ports():
            ctx.send(port, self._best)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        if inbox:
            incoming = max(inbox.values())
            if incoming > self._best:
                self._best = incoming
                if ctx.round < self._n:  # never send in the halting round
                    for port in ctx.ports():
                        ctx.send(port, self._best)
        if ctx.round >= self._n:
            ctx.halt(LEADER_OUTPUT if self._best == ctx.node_id else FOLLOWER_OUTPUT)


class MaxIdFloodBaseline(DistributedBaseline):
    """Elect the maximum identifier by flooding for ``n`` rounds.

    Runs on the non-anonymous variant: it reads the (unique) node
    identifiers and is given ``n`` for its round schedule — strictly
    more knowledge than the advising schemes receive, and still ``n``
    rounds instead of zero.
    """

    name = "maxid-flood"
    problem = "leader"
    requires_n = True

    def program_factory(self, graph: PortNumberedGraph) -> ProgramFactory:
        n = graph.n
        return lambda ctx: _MaxIdFloodProgram(n)

    def round_bound(self, graph: PortNumberedGraph) -> float:
        return float(graph.n)


# ---------------------------------------------------------------------- #
# the problem
# ---------------------------------------------------------------------- #


class LeaderProblem(Problem):
    """Exactly one node outputs ``"leader"``; everyone else follows."""

    name = "leader"
    title = "Leader election"
    output_statement = (
        'exactly one node outputs "leader" and every other node outputs '
        '"follower"; with a designated node, the leader must be that node'
    )
    schemes = {
        "flag": LeaderFlagScheme,
        "rank": LeaderRankScheme,
    }
    baselines = {
        "maxid-flood": MaxIdFloodBaseline,
    }

    def check_outputs(
        self, graph: Any, outputs: Dict[int, Any], expected_root: Optional[int] = None
    ) -> OutputCheck:
        n = graph.n
        out_list = [outputs.get(u) for u in range(n)]
        missing = sum(1 for value in out_list if value is None)
        if missing:
            return OutputCheck(False, f"{missing} node(s) produced no output")
        invalid = [
            u for u, value in enumerate(out_list)
            if value not in (LEADER_OUTPUT, FOLLOWER_OUTPUT)
        ]
        if invalid:
            u = invalid[0]
            return OutputCheck(False, f"node {u} output {out_list[u]!r}, expected leader/follower")
        leaders = [u for u, value in enumerate(out_list) if value == LEADER_OUTPUT]
        if len(leaders) != 1:
            return OutputCheck(False, f"expected exactly one leader, found {len(leaders)}")
        leader = leaders[0]
        if expected_root is not None and leader != expected_root:
            return OutputCheck(False, f"leader is {leader}, expected {expected_root}")
        return OutputCheck(True, "ok", root=leader)


register_problem(LeaderProblem())

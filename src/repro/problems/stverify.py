"""Spanning-tree verification: accept the candidate tree or reject it.

The classical problem hands every node a candidate set of incident tree
edges and asks the network to decide, jointly, whether the candidate is
a spanning tree.  Famously, one extra bit of advice per node changes
the landscape: distances-to-root advice (``O(log n)`` bits) lets every
node check consistency with its tree neighbours in **one round**, while
a minimal flag encoding needs only the tree itself but pays for it with
a root-to-leaf token wave (**depth + 1** rounds).  The two schemes below
realise exactly that correctness/round trade-off.

Framework deviation (analogous to D1/D2 in DESIGN.md): instances here
are plain weighted graphs, so the candidate tree itself travels inside
the advice — the oracle encodes each node's parent port in the reference
rooted MST.  The reported bit counts therefore *include* the tree
encoding (about ``log n`` bits per node); the schemes differ in what
they add on top: the distance scheme spends another ``~log n`` bits on
depths to finish in one round, the flag scheme adds nothing and spends
rounds instead.  A decoder that detects an inconsistency outputs
:data:`REJECT_OUTPUT`; with an honest oracle every run accepts, and the
soundness direction (corrupted advice gets rejected or times out) is
exercised by the test-suite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitReader, BitString, BitWriter
from repro.core.oracle import AdvisingScheme
from repro.core.problem import OutputCheck, Problem, register_problem
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree
from repro.problems.verify import check_outputs
from repro.problems.wakeup import port_width
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = [
    "REJECT_OUTPUT",
    "StDistanceScheme",
    "StFlagScheme",
    "StVerifyProblem",
]

#: output of a node that detected an inconsistency in the candidate tree
REJECT_OUTPUT = "reject"

#: the child-announcement and token payloads of the flag scheme
_CHILD = "c"
_TOKEN = "t"


# ---------------------------------------------------------------------- #
# the one-round scheme: verify advised depths
# ---------------------------------------------------------------------- #


class _DistanceProgram(NodeProgram):
    """Send my depth up the tree; check my children claim depth + 1."""

    def __init__(self) -> None:
        self._parent_port = ROOT_OUTPUT
        self._depth = 0

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        if (not reader.at_end()) and reader.read_bit() == 1:
            self._parent_port = ROOT_OUTPUT
            self._depth = 0
        else:
            self._parent_port = reader.read_uint(port_width(ctx.degree))
            self._depth = reader.read_uint(reader.remaining)
            ctx.send(self._parent_port, self._depth)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        # the inbox holds the advised depths of exactly my tree children
        if all(claimed == self._depth + 1 for claimed in inbox.values()):
            ctx.halt(self._parent_port)
        else:
            ctx.halt(REJECT_OUTPUT)


class StDistanceScheme(AdvisingScheme):
    """The one-round scheme: parent port plus depth, ``O(log n)`` bits.

    Every node tells its parent its advised depth; a node accepts iff
    every claim it hears is its own depth plus one.  Depths strictly
    decrease along accepted parent pointers down to the root's 0, so no
    cycle can survive the check — one round, ``n - 1`` messages.

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> report = run_scheme(StDistanceScheme(), random_connected_graph(32, 0.1, seed=1))
    >>> report.correct, report.rounds
    (True, 1)
    """

    name = "st-distance"
    problem = "stverify"

    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
        depth_width = max(1, max(tree.depth).bit_length())
        advice = AdviceAssignment(graph.n)
        degrees = graph._degrees.tolist()
        for u in range(graph.n):
            writer = BitWriter()
            if u == root:
                writer.write_bit(1)
            else:
                writer.write_bit(0)
                writer.write_uint(tree.parent_port[u], port_width(int(degrees[u])))
                writer.write_uint(tree.depth[u], depth_width)
            advice.set(u, writer.getvalue())
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _DistanceProgram()

    def advice_bound_bits(self, n: int) -> float:
        parent_bits = (n - 2).bit_length() if n > 2 else 0
        depth_bits = max(1, (n - 1).bit_length()) if n > 1 else 1
        return float(1 + parent_bits + depth_bits)

    def round_bound(self, n: int) -> float:
        return 1.0


# ---------------------------------------------------------------------- #
# the minimal scheme: verify by a token wave
# ---------------------------------------------------------------------- #


class _FlagProgram(NodeProgram):
    """Learn my children, then wait for the root's token to reach me."""

    def __init__(self) -> None:
        self._parent_port = ROOT_OUTPUT
        self._is_root = False
        self._child_ports: List[int] = []

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        self._is_root = (not reader.at_end()) and reader.read_bit() == 1
        if not self._is_root:
            self._parent_port = reader.read_uint(port_width(ctx.degree))
            ctx.send(self._parent_port, _CHILD)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        if ctx.round == 1:
            # round 1 delivers exactly the child announcements
            self._child_ports = sorted(inbox)
            if self._is_root:
                for port in self._child_ports:
                    ctx.send(port, _TOKEN)
                ctx.halt(ROOT_OUTPUT)
            return
        if inbox.get(self._parent_port) == _TOKEN:
            for port in self._child_ports:
                ctx.send(port, _TOKEN)
            ctx.halt(self._parent_port)


class StFlagScheme(AdvisingScheme):
    """The minimal scheme: just the tree, verified by reaching everyone.

    Beyond the candidate tree's own encoding the advice carries a single
    root flag.  The root floods a token down the advised tree; a node
    accepts when the token arrives.  If the advice does not describe a
    tree rooted at the flagged node, some node never hears the token and
    the run exceeds its round bound — rejection by timeout.  The price
    of the missing depth bits: ``depth + 1`` rounds and ``2(n - 1)``
    messages instead of one round.
    """

    name = "st-flag"
    problem = "stverify"

    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
        advice = AdviceAssignment(graph.n)
        degrees = graph._degrees.tolist()
        for u in range(graph.n):
            writer = BitWriter()
            if u == root:
                writer.write_bit(1)
            else:
                writer.write_bit(0)
                writer.write_uint(tree.parent_port[u], port_width(int(degrees[u])))
            advice.set(u, writer.getvalue())
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _FlagProgram()

    def advice_bound_bits(self, n: int) -> float:
        parent_bits = (n - 2).bit_length() if n > 2 else 0
        return float(1 + parent_bits)

    def round_bound(self, n: int) -> float:
        # the token crosses the advised tree within its depth <= n - 1
        return float(n)


# ---------------------------------------------------------------------- #
# the problem
# ---------------------------------------------------------------------- #


class StVerifyProblem(Problem):
    """Accept iff the advised candidate is a spanning tree of the instance.

    The candidate the built-in oracles advise is the reference rooted
    MST, so the harness-side verifier can be exact: no node may reject,
    and the accepted parent ports must reproduce a rooted MST.
    """

    name = "stverify"
    title = "Spanning-tree verification"
    output_statement = (
        "no node outputs \"reject\" and the accepted parent ports "
        "reproduce the candidate tree (the reference rooted MST)"
    )
    schemes = {
        "distance": StDistanceScheme,
        "flag": StFlagScheme,
    }
    baselines = {}

    def check_outputs(
        self, graph: Any, outputs: Dict[int, Any], expected_root: Optional[int] = None
    ) -> OutputCheck:
        rejecting = [u for u in range(graph.n) if outputs.get(u) == REJECT_OUTPUT]
        if rejecting:
            return OutputCheck(
                False, f"node {rejecting[0]} rejected the candidate tree"
            )
        return check_outputs(graph, outputs, expected_root=expected_root)


register_problem(StVerifyProblem())

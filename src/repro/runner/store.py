"""Sharded, WAL-mode SQLite result store — the default cache backend.

The one-file-per-task JSON cache (:mod:`repro.runner.cache`) is simple
and robust, but it tops out long before production-scale sweeps: a full
``specs/paper.toml`` grid already writes hundreds of files, and
million-task sweeps would mean millions of inodes, O(files) warm-up
stats and no transactional way to checkpoint a run.  This module keeps
the exact lookup/store contract of :class:`~repro.runner.cache.ResultCache`
(``get`` / ``put`` / ``put_many``, ``hits`` / ``misses`` counters, a
corrupt or version-mismatched entry is a miss) on top of a small number
of SQLite files:

* **Shard layout** — ``shard-00.sqlite`` ... ``shard-NN.sqlite`` inside
  the store directory; a task hash is routed by its leading hex digits
  (``int(key[:8], 16) % shards``), so concurrent sweeps writing disjoint
  regions of the key space rarely contend on the same file.  The shard
  count is fixed at creation and recorded in a ``store.layout`` claimed
  atomically (``os.link`` of a fully written temp file, so even two
  processes racing to create a brand-new directory agree): reopening a
  directory always adopts the layout on disk, and two openers can never
  disagree on routing.
* **Concurrency** — every shard runs in WAL mode (readers never block
  the writer, the writer never blocks readers) with a 30 s busy
  timeout; writes are batched upserts (``INSERT OR REPLACE``) inside
  one ``BEGIN IMMEDIATE`` transaction per shard, so parallel ``--jobs``
  sweeps and wholly concurrent invocations interleave safely.
* **Corruption recovery** — a shard that fails to open or query is
  treated as all-misses (matching ``ResultCache``'s corrupt-file
  semantics); the first write to it deletes and recreates the shard
  file, so one torn file costs recomputation, never a crash.
* **Byte identity** — rows are stored as the same JSON text the JSON
  backend writes (``repr``-round-tripping floats), so a sweep served
  from the store is byte-identical to a fresh or JSON-cached one.

:func:`open_result_store` is the backend selector behind the CLI's
``--cache-backend {json,sqlite}`` flag; ``repro store`` exposes
:meth:`SQLiteResultStore.stats`, :meth:`SQLiteResultStore.gc` and
:meth:`SQLiteResultStore.migrate_json_cache` for maintenance.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.runner.cache import CACHE_VERSION, ResultCache

__all__ = [
    "CACHE_BACKENDS",
    "DEFAULT_BUSY_TIMEOUT_MS",
    "DEFAULT_CACHE_BACKEND",
    "DEFAULT_LOCK_RETRIES",
    "DEFAULT_SHARDS",
    "STORE_SCHEMA_VERSION",
    "SQLiteResultStore",
    "open_result_store",
]

#: bump when the on-disk table layout changes; a shard carrying another
#: schema version is dropped and rebuilt (its rows become misses),
#: mirroring how the JSON cache treats version-mismatched files
STORE_SCHEMA_VERSION = 1

#: default shard count of a freshly created store.  Shards only need to
#: spread *file-level* contention between concurrent writers (row-level
#: conflicts are already resolved by the upsert), so a small power of
#: two is plenty; reopening an existing store ignores this and adopts
#: the on-disk layout.
DEFAULT_SHARDS = 4

#: selectable cache backends, in the order the CLI lists them
CACHE_BACKENDS = ("json", "sqlite")

#: the backend used when a plain directory path is given
DEFAULT_CACHE_BACKEND = "sqlite"

#: how long one SQLite call waits on another writer before raising
#: ``database is locked`` — set explicitly with ``PRAGMA busy_timeout``
#: (the ``connect(timeout=...)`` handler alone is invisible to
#: introspection and silently reset by some pragmas)
DEFAULT_BUSY_TIMEOUT_MS = 30_000

#: bounded retries a write gets after ``database is locked`` surfaces
#: *despite* the busy timeout (WAL checkpoint starvation under many
#: long-lived writers); each retry sleeps a seeded exponential backoff,
#: then the error is real and raises
DEFAULT_LOCK_RETRIES = 5

#: first lock-retry delay in seconds (doubles per attempt, capped)
_LOCK_BACKOFF_BASE = 0.05
_LOCK_BACKOFF_CAP = 2.0

ResultStore = Union[ResultCache, "SQLiteResultStore"]


def _is_locked(exc: sqlite3.Error) -> bool:
    """Whether an error is SQLite's transient lock/busy condition."""
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc)
    return "database is locked" in message or "database table is locked" in message


def _lock_backoff_delay(token: str, attempt: int) -> float:
    """The seeded backoff before lock-retry ``attempt`` (0-based).

    Exponential with a deterministic jitter derived from ``token`` (the
    shard identity plus the writer's pid), so concurrent writers that
    collided once fan out over different moments instead of stampeding
    the shard again in lockstep — without drawing from any global RNG.
    """
    base = min(_LOCK_BACKOFF_CAP, _LOCK_BACKOFF_BASE * (2**attempt))
    digest = hashlib.sha256(f"{token}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
    return base * (0.5 + jitter)


def open_result_store(
    directory: Union[str, Path], backend: str = DEFAULT_CACHE_BACKEND
) -> ResultStore:
    """Open the result store of the requested backend over ``directory``.

    Both backends implement the same contract (``get`` / ``put`` /
    ``put_many`` plus ``hits`` / ``misses``), so everything downstream of
    :func:`repro.runner.runner.run_tasks` is backend-agnostic.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     type(open_result_store(tmp, "json")).__name__
    'ResultCache'
    """
    if backend == "json":
        return ResultCache(directory)
    if backend == "sqlite":
        return SQLiteResultStore(directory)
    raise ValueError(
        f"cache backend must be one of {', '.join(CACHE_BACKENDS)}, got {backend!r}"
    )


class SQLiteResultStore:
    """N SQLite shard files implementing the ``ResultCache`` contract."""

    def __init__(
        self,
        directory: Union[str, Path],
        shards: int = DEFAULT_SHARDS,
        busy_timeout_ms: int = DEFAULT_BUSY_TIMEOUT_MS,
        lock_retries: int = DEFAULT_LOCK_RETRIES,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        #: lock-contention posture: how long a call blocks inside SQLite
        #: before ``database is locked``, and how many seeded-backoff
        #: retries a write gets on top (tests shrink both)
        self.busy_timeout_ms = busy_timeout_ms
        self.lock_retries = lock_retries
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ValueError(
                f"cannot use {self.directory!r} as a store directory: {exc}"
            ) from exc
        #: shard count: whatever ``store.layout`` records wins, so every
        #: opener of one directory routes keys identically — including
        #: two processes racing to create a brand-new directory, which
        #: the atomic layout claim serialises
        self.shards = self._claim_layout(shards)
        #: cache-hit / miss counters of this process (for reporting)
        self.hits = 0
        self.misses = 0
        self._conns: Dict[int, sqlite3.Connection] = {}
        self._pid = os.getpid()
        for index in range(self.shards):
            try:
                self._conn(index)
            except sqlite3.Error:
                # a corrupt shard file: its lookups miss and the first
                # write rebuilds it — opening the store must not fail
                pass

    # ------------------------------------------------------------------ #
    # shard plumbing
    # ------------------------------------------------------------------ #

    @property
    def layout_path(self) -> Path:
        """The file pinning this directory's shard count (JSON content;
        deliberately not ``*.json``, which is the cache-entry namespace
        of the JSON backend)."""
        return self.directory / "store.layout"

    def _claim_layout(self, requested: int) -> int:
        """Agree on the directory's shard count, atomically.

        Exactly one opener of a brand-new directory wins the claim; every
        other opener (concurrent or later) reads the winner's count.  The
        claim is an ``os.link`` of a *fully written* temp file, so a
        reader can never observe a partially written ``store.layout``.
        Directories created before the layout file existed fall back to
        counting the shard files on disk (and pin that count for future
        openers).
        """
        try:
            payload = json.loads(self.layout_path.read_text(encoding="utf-8"))
            return int(payload["shards"])
        except (OSError, ValueError, KeyError, TypeError):
            pass
        existing = sorted(self.directory.glob("shard-*.sqlite"))
        count = len(existing) if existing else requested
        blob = json.dumps({"schema_version": STORE_SCHEMA_VERSION, "shards": count})
        tmp = self.directory / f".layout.{os.getpid()}.tmp"
        tmp.write_text(blob, encoding="utf-8")
        try:
            os.link(tmp, self.layout_path)
        except FileExistsError:
            # another opener won the race: adopt its layout below
            pass
        except OSError:  # pragma: no cover - filesystems without hard links
            # non-atomic fallback; fine on filesystems that cannot race
            if not self.layout_path.exists():
                os.replace(tmp, self.layout_path)
                return count
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        payload = json.loads(self.layout_path.read_text(encoding="utf-8"))
        return int(payload["shards"])

    def shard_for(self, key: str) -> int:
        """The shard index a key routes to (stable across processes)."""
        try:
            prefix = int(key[:8], 16)
        except ValueError:
            # non-hash keys (tests, ad-hoc use) still need a stable route
            prefix = zlib.crc32(key.encode("utf-8"))
        return prefix % self.shards

    def path_for_shard(self, index: int) -> Path:
        """The file shard ``index`` lives in."""
        return self.directory / f"shard-{index:02d}.sqlite"

    def _connect(self, index: int) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path_for_shard(index),
            timeout=self.busy_timeout_ms / 1000.0,
            isolation_level=None,
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        # explicit busy handler: connect(timeout=...) sets the same thing,
        # but the pragma survives later pragma churn and is inspectable
        conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_ms)}")
        conn.execute("CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        row = conn.execute("SELECT value FROM meta WHERE key='schema_version'").fetchone()
        if row is not None and row[0] != str(STORE_SCHEMA_VERSION):
            # a shard written by another schema generation: its rows are
            # stale by definition — drop and rebuild, exactly like the
            # JSON cache overwriting a version-mismatched file
            conn.execute("DROP TABLE IF EXISTS results")
            conn.execute("DELETE FROM meta")
            row = None
        conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " task TEXT NOT NULL,"
            " result TEXT NOT NULL)"
        )
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES"
                " ('schema_version', ?), ('shards', ?), ('shard_index', ?)",
                (str(STORE_SCHEMA_VERSION), str(self.shards), str(index)),
            )
        return conn

    def _conn(self, index: int) -> sqlite3.Connection:
        # connections must not cross a fork: a child re-opens its own
        if os.getpid() != self._pid:
            self._conns = {}
            self._pid = os.getpid()
        conn = self._conns.get(index)
        if conn is None:
            conn = self._connect(index)
            self._conns[index] = conn
        return conn

    def _drop_conn(self, index: int) -> None:
        conn = self._conns.pop(index, None)
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close never fails in practice
                pass

    def _recover_shard(self, index: int) -> None:
        """Delete and recreate a shard that SQLite refuses to use.

        The JSON cache treats a corrupt file as a miss and overwrites it
        on the next ``put``; the shard-level equivalent is dropping the
        whole file (plus its WAL sidecars) and starting fresh — the rows
        it held become recomputable misses, never an error.
        """
        self._drop_conn(index)
        path = self.path_for_shard(index)
        for victim in (path, Path(f"{path}-wal"), Path(f"{path}-shm")):
            try:
                victim.unlink()
            except OSError:
                pass
        self._conn(index)

    def close(self) -> None:
        """Close every open connection (the store can be reopened)."""
        for index in list(self._conns):
            self._drop_conn(index)

    def __getstate__(self) -> Dict[str, Any]:
        # picklable for multiprocessing: connections are per-process
        state = self.__dict__.copy()
        state["_conns"] = {}
        return state

    # ------------------------------------------------------------------ #
    # the ResultCache contract
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result row for ``key``, or ``None`` on any miss."""
        try:
            row = (
                self._conn(self.shard_for(key))
                .execute("SELECT result FROM results WHERE key = ?", (key,))
                .fetchone()
            )
        except sqlite3.Error:
            # unreadable shard: every lookup into it is a miss; drop the
            # connection so a later write can rebuild the file
            self._drop_conn(self.shard_for(key))
            self.misses += 1
            return None
        if row is None:
            self.misses += 1
            return None
        try:
            result = json.loads(row[0])
        except ValueError:
            self.misses += 1
            return None
        if not isinstance(result, dict):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, task_content: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Atomically persist one result row under ``key``."""
        self.put_many([(key, task_content, result)])

    def put_many(
        self, items: Iterable[Tuple[str, Dict[str, Any], Dict[str, Any]]]
    ) -> None:
        """Upsert a batch of rows, one transaction per touched shard.

        The batch is the runner's checkpoint unit: a killed run loses at
        most the groups whose transaction had not committed yet, and a
        resumed run serves everything committed before the kill.
        """
        by_shard: Dict[int, List[Tuple[str, str, str]]] = {}
        for key, task_content, result in items:
            # no sort_keys, like the JSON backend: a row read back must
            # serialise byte-identically to a freshly computed one
            by_shard.setdefault(self.shard_for(key), []).append(
                (key, json.dumps(task_content), json.dumps(result))
            )
        for index, rows in by_shard.items():
            self._upsert_shard(index, rows)

    @staticmethod
    def _is_corruption(exc: sqlite3.Error) -> bool:
        """Whether an error means the shard *file* is beyond saving.

        Only actual corruption justifies deleting the shard: transient
        conditions — ``database is locked`` after the busy timeout, a
        full disk — raise :class:`sqlite3.OperationalError` and must
        surface to the caller, not destroy committed rows.
        """
        if isinstance(
            exc,
            (
                sqlite3.OperationalError,
                sqlite3.IntegrityError,
                sqlite3.ProgrammingError,
                sqlite3.InterfaceError,
            ),
        ):
            return False
        message = str(exc)
        return (
            type(exc) is sqlite3.DatabaseError
            or "malformed" in message
            or "not a database" in message
        )

    #: sleeping primitive of the lock-retry loop (tests stub it to count
    #: backoffs without waiting them out)
    _sleep = staticmethod(time.sleep)

    def _upsert_shard(self, index: int, rows: List[Tuple[str, str, str]]) -> None:
        lock_attempts = 0
        recovered = False
        while True:
            try:
                conn = self._conn(index)
                conn.execute("BEGIN IMMEDIATE")
                try:
                    conn.executemany(
                        "INSERT OR REPLACE INTO results (key, task, result) VALUES (?, ?, ?)",
                        rows,
                    )
                    conn.execute("COMMIT")
                except BaseException:
                    try:
                        conn.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass  # surface the original error, not the rollback's
                    raise
                return
            except sqlite3.Error as exc:
                # three tiers: a transient lock gets bounded seeded-backoff
                # retries (long-lived service writers must not surface it
                # as a failure); a corrupt shard file is rebuilt once and
                # the write retried; anything else (disk full, a bug) is a
                # real error worth surfacing — never grounds for deleting
                # committed rows
                if _is_locked(exc) and lock_attempts < self.lock_retries:
                    self._sleep(
                        _lock_backoff_delay(
                            f"{self.directory}:{index}:{os.getpid()}", lock_attempts
                        )
                    )
                    lock_attempts += 1
                    continue
                if recovered or not self._is_corruption(exc):
                    raise
                recovered = True
                self._recover_shard(index)

    # ------------------------------------------------------------------ #
    # maintenance (the `repro store` command)
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """Row counts and file sizes, per shard and total.

        A shard SQLite cannot query reports ``rows: None`` (corrupt —
        its lookups miss until a write rebuilds it).
        """
        per_shard: List[Dict[str, Any]] = []
        total_rows = 0
        total_bytes = 0
        for index in range(self.shards):
            path = self.path_for_shard(index)
            size = path.stat().st_size if path.exists() else 0
            try:
                rows = self._conn(index).execute("SELECT COUNT(*) FROM results").fetchone()[0]
            except sqlite3.Error:
                self._drop_conn(index)
                rows = None
            per_shard.append({"shard": index, "file": path.name, "rows": rows, "bytes": size})
            total_rows += rows or 0
            total_bytes += size
        return {
            "backend": "sqlite",
            "directory": str(self.directory),
            "schema_version": STORE_SCHEMA_VERSION,
            "shards": self.shards,
            "rows": total_rows,
            "bytes": total_bytes,
            "per_shard": per_shard,
        }

    def gc(self, vacuum: bool = True) -> Dict[str, int]:
        """Drop rows no current task hash can ever reference again.

        Task hashes mix in the library version and the backend's semantic
        version, so rows whose stored task content names another
        generation are dead weight: they can never be served, only grow
        the files.  Unparseable task content counts as dead too.
        """
        from repro.runner.tasks import TASK_FORMAT_VERSION, _library_version

        current_lib = _library_version()
        removed = 0
        kept = 0
        for index in range(self.shards):
            try:
                conn = self._conn(index)
                stored = conn.execute("SELECT key, task FROM results").fetchall()
            except sqlite3.Error:
                self._drop_conn(index)
                continue
            dead: List[Tuple[str]] = []
            for key, task_text in stored:
                try:
                    task = json.loads(task_text)
                    live = (
                        isinstance(task, dict)
                        and task.get("lib") == current_lib
                        and task.get("format") == TASK_FORMAT_VERSION
                    )
                except ValueError:
                    live = False
                if live:
                    kept += 1
                else:
                    dead.append((key,))
            if dead:
                conn.execute("BEGIN IMMEDIATE")
                try:
                    conn.executemany("DELETE FROM results WHERE key = ?", dead)
                    conn.execute("COMMIT")
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
                removed += len(dead)
                if vacuum:
                    # only a shard that actually shed rows has space to
                    # reclaim; VACUUM rewrites the whole file, so running
                    # it on untouched shards would be pure wasted I/O
                    conn.execute("VACUUM")
        return {"removed": removed, "kept": kept}

    def migrate_json_cache(
        self, json_dir: Union[str, Path], batch_size: int = 4096
    ) -> Dict[str, int]:
        """Import an existing JSON cache directory, transactionally.

        Every readable, current-version ``<hash>.json`` entry is upserted
        under its file-stem key; corrupt or version-mismatched files are
        skipped (they were misses in the JSON backend too).  The rows'
        JSON text is re-serialised through the same ``json.dumps`` both
        backends use, so migrated rows serve byte-identical sweeps.

        Entries land in batches of ``batch_size`` (each batch one
        transaction per touched shard), keeping memory flat however large
        the source directory is; upserts are idempotent, so an
        interrupted migration can simply be re-run.
        """
        items: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = []
        imported = 0
        skipped = 0
        for path in sorted(Path(json_dir).glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                skipped += 1
                continue
            if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
                skipped += 1
                continue
            result = payload.get("result")
            if not isinstance(result, dict):
                skipped += 1
                continue
            items.append((path.stem, payload.get("task") or {}, result))
            if len(items) >= batch_size:
                self.put_many(items)
                imported += len(items)
                items = []
        if items:
            self.put_many(items)
            imported += len(items)
        return {"imported": imported, "skipped": skipped}

"""Task execution: serial, or process-parallel with ``--jobs N``.

:func:`run_tasks` is the single entry point everything routes through —
``analysis/sweep.py``, the ``repro.report`` pipeline, the CLI's ``sweep
--jobs`` / ``bench`` commands and the benchmark suite.  Guarantees:

* **Determinism** — results come back in task order regardless of
  ``jobs`` or ``grouping``; workers return plain measured rows and all
  aggregation happens in the parent, so every execution mode is
  byte-identical.
* **Instance grouping** — with ``grouping="instance"`` (the default)
  cache misses are partitioned by :func:`repro.runner.plan.plan_groups`
  into groups sharing one graph instance, and each group runs against
  one :class:`~repro.runner.plan.InstanceContext`: the graph, Borůvka
  trace, rooted tree and per-scheme advice are built **once per group**
  instead of once per task.  With ``jobs=N`` whole groups are shipped to
  workers (instead of blind contiguous chunks), so the sharing holds in
  every worker process too.  ``grouping="none"`` keeps the historical
  per-task path for A/B comparison.
* **Caching** — with ``cache_dir`` set, cacheable tasks (registry-name
  target + :class:`GraphSpec` graph) are looked up / stored by their
  content hash (computed once per task and reused for lookup, store and
  planning).  ``cache_backend`` selects the storage: ``"sqlite"`` (the
  default — a sharded WAL store, see :mod:`repro.runner.store`) or
  ``"json"`` (one file per task, see :mod:`repro.runner.cache`).  A
  cache-warm call never constructs a single group.
* **Checkpointing** — results are committed to the cache *as each
  group's work completes* (batched upserts, streamed back from workers
  in deterministic chunk order), not in one flush at the end: a run
  killed mid-sweep keeps everything that finished.  With ``resume=True``
  a :class:`~repro.runner.manifest.RunManifest` ledger is checkpointed
  in the same rhythm, so ``repro sweep --resume`` / ``repro report
  --resume`` re-execute zero already-checkpointed tasks.
* **Progress** — ``progress=True`` reports done/total, cache hits and
  an ETA on stderr while the run executes (stdout artifacts stay
  byte-identical).

Workers rebuild schemes and graphs from the task description, so a task
is a few hundred bytes on the wire even when the instance it describes
has thousands of nodes.
"""

from __future__ import annotations

import math
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.manifest import RunManifest
from repro.runner.plan import (
    ExecutionStats,
    InstanceContext,
    StackedContext,
    StackedGroup,
    TaskGroup,
    plan_groups,
    plan_super_groups,
)
from repro.runner.progress import ProgressReporter
from repro.runner.store import DEFAULT_CACHE_BACKEND, SQLiteResultStore, open_result_store
from repro.runner.tasks import SweepTask

__all__ = ["LocalExecutor", "execute_task", "run_tasks", "GROUPING_MODES"]

#: accepted values of ``run_tasks(..., grouping=...)``
GROUPING_MODES = ("instance", "seed-stack", "none")


def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Run one task in isolation and return its measured row.

    The single-task view of the grouped executor: a fresh
    :class:`~repro.runner.plan.InstanceContext` per call, so rows are
    identical to grouped execution by construction.  Rows carry
    unrounded measurements; presentation rounding happens in the
    aggregation layer so cached and fresh results cannot diverge.
    """
    return InstanceContext().execute(task)


def _execute_chunk(chunk: Sequence[SweepTask]) -> List[Dict[str, Any]]:
    """Worker entry point of the ungrouped path: one contiguous slice."""
    return [execute_task(task) for task in chunk]


def _execute_group_chunk(
    chunk: Sequence[Union[TaskGroup, StackedGroup]],
) -> Tuple[List[Tuple[int, Dict[str, Any]]], Dict[str, float]]:
    """Worker entry point of the grouped paths: whole groups at a time.

    ``grouping="seed-stack"`` ships whole :class:`StackedGroup`\\ s, so
    the cross-seed sharing holds inside every worker process too.
    Returns ``(miss_index, row)`` pairs plus the worker's stage-seconds
    breakdown, so the parent can reassemble rows in task order and
    aggregate profiling data across processes.
    """
    stats = ExecutionStats()
    rows: List[Tuple[int, Dict[str, Any]]] = []
    for group in chunk:
        if isinstance(group, StackedGroup):
            rows.extend(StackedContext(group, stats=stats).execute_all())
        else:
            context = InstanceContext(stats=stats)
            for index, task in zip(group.indices, group.tasks):
                rows.append((index, context.execute(task)))
    return rows, stats.stage_seconds


def _fork_context():
    # fork shares the parent's sys.path (the repo may be run straight
    # from a checkout, without installation); fall back to the platform
    # default where fork does not exist
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _chunked(items: Sequence[Any], size: int) -> List[List[Any]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class LocalExecutor:
    """The default miss executor: in-process, or a local process pool.

    ``run_tasks`` plans the cache misses and hands the resulting units to
    an *executor*; this one runs them here (``jobs=1``) or fans chunks of
    them over worker processes.  The sweep service plugs in a
    :class:`repro.service.queue.QueueExecutor` instead, which routes the
    same units through a durable lease queue — planning, caching and
    byte-identity live in ``run_tasks`` and are shared by construction.

    The pool survives worker death: a SIGKILLed or OOM-killed worker used
    to strand ``Pool.imap`` forever — now the broken pool is detected,
    every chunk whose result was lost is requeued **once** on a fresh
    pool (with a warning on stderr), and a chunk lost twice raises
    instead of looping (it is killing its workers, which deserves a
    poison-task error, not an infinite respawn).
    """

    #: how often one chunk may take a worker down before it is treated as
    #: poison (the satellite contract: requeue the lost group once)
    MAX_CHUNK_REQUEUES = 1

    def __init__(self, jobs: int = 1, chunksize: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.chunksize = chunksize

    # ------------------------------------------------------------------ #
    # the executor contract (run_units / run_task_list)
    # ------------------------------------------------------------------ #

    def run_units(
        self,
        units: Sequence[Union[TaskGroup, StackedGroup]],
        commit: Callable[[List[Tuple[int, Dict[str, Any]]]], None],
        stats: Optional[ExecutionStats] = None,
    ) -> None:
        """Execute planned groups; ``commit`` receives ``(miss_index, row)``
        batches in deterministic (plan) order."""
        if self.jobs > 1 and len(units) > 1:
            chunks = _chunked(units, max(1, math.ceil(len(units) / (self.jobs * 4))))

            def _deliver(_, result: Tuple[List[Tuple[int, Dict[str, Any]]], Dict[str, float]]) -> None:
                chunk_rows, stage_seconds = result
                commit(list(chunk_rows))
                if stats is not None:
                    stats.merge_stage_dict(stage_seconds)

            self._run_chunks(_execute_group_chunk, chunks, _deliver)
            return
        for unit in units:
            if isinstance(unit, StackedGroup):
                commit(StackedContext(unit, stats=stats).execute_all())
            else:
                context = InstanceContext(stats=stats)
                commit(
                    [
                        (index, context.execute(task))
                        for index, task in zip(unit.indices, unit.tasks)
                    ]
                )

    def run_task_list(
        self,
        tasks: Sequence[SweepTask],
        commit: Callable[[List[Tuple[int, Dict[str, Any]]]], None],
    ) -> None:
        """Execute ungrouped tasks; ``commit`` receives ``(position, row)``
        batches in task order (the historical ``grouping="none"`` path)."""
        if self.jobs > 1 and len(tasks) > 1:
            chunksize = self.chunksize
            if chunksize is None:
                chunksize = max(1, math.ceil(len(tasks) / (self.jobs * 4)))
            chunks = _chunked(tasks, chunksize)
            offsets = [0]
            for chunk in chunks:
                offsets.append(offsets[-1] + len(chunk))

            def _deliver(index: int, chunk_rows: List[Dict[str, Any]]) -> None:
                commit(
                    [(offsets[index] + i, row) for i, row in enumerate(chunk_rows)]
                )

            self._run_chunks(_execute_chunk, chunks, _deliver)
            return
        for position, task in enumerate(tasks):
            commit([(position, execute_task(task))])

    # ------------------------------------------------------------------ #
    # pool plumbing with dead-worker recovery
    # ------------------------------------------------------------------ #

    def _run_chunks(
        self,
        fn: Callable[[Any], Any],
        chunks: Sequence[Any],
        deliver: Callable[[int, Any], None],
    ) -> None:
        """Run ``fn`` over every chunk on a process pool, delivering results
        in submission order as they stream back.

        A dead worker breaks the whole :class:`ProcessPoolExecutor`;
        completed futures keep their results, so only the chunks whose
        results were actually lost are resubmitted (each at most
        :data:`MAX_CHUNK_REQUEUES` times) on a fresh pool.  Delivery order
        is unaffected: chunk *i* is always delivered after chunk *i - 1*,
        exactly like the ordered ``imap`` this replaces, so the cache /
        checkpoint write sequence stays deterministic.
        """
        results: Dict[int, Any] = {}
        requeues: Dict[int, int] = {}
        next_to_deliver = 0
        while next_to_deliver < len(chunks):
            to_run = [
                i for i in range(next_to_deliver, len(chunks)) if i not in results
            ]
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, max(1, len(to_run))),
                mp_context=_fork_context(),
            )
            broken = False
            try:
                futures = {i: pool.submit(fn, chunks[i]) for i in to_run}
                for i in range(next_to_deliver, len(chunks)):
                    if i not in results:
                        try:
                            results[i] = futures[i].result()
                        except BrokenProcessPool:
                            broken = True
                            break
                    deliver(i, results.pop(i))
                    next_to_deliver = i + 1
                if not broken:
                    return
                # the pool died under us: harvest every future that did
                # complete (their results are intact), then requeue the rest
                for j, future in futures.items():
                    if j in results or j < next_to_deliver or not future.done():
                        continue
                    try:
                        results[j] = future.result()
                    except BrokenProcessPool:
                        pass
                lost = [
                    j for j in to_run if j >= next_to_deliver and j not in results
                ]
                for j in lost:
                    requeues[j] = requeues.get(j, 0) + 1
                    if requeues[j] > self.MAX_CHUNK_REQUEUES:
                        raise RuntimeError(
                            f"worker process died twice executing the same task "
                            f"group (chunk {j + 1}/{len(chunks)}); giving up on a "
                            "workload that keeps killing its workers"
                        )
                print(
                    f"warning: a worker process died (killed or crashed); "
                    f"requeued {len(lost)} lost task group chunk(s) on a fresh "
                    "pool",
                    file=sys.stderr,
                )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)


def run_tasks(
    tasks: Iterable[SweepTask],
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path, ResultCache, SQLiteResultStore]] = None,
    chunksize: Optional[int] = None,
    grouping: str = "instance",
    stats: Optional[ExecutionStats] = None,
    cache_backend: str = DEFAULT_CACHE_BACKEND,
    resume: bool = False,
    progress: bool = False,
    progress_label: str = "tasks",
    executor: Optional[Any] = None,
) -> List[Dict[str, Any]]:
    """Execute every task and return their rows **in task order**.

    ``jobs=1`` runs in-process (no pickling — closures and ad-hoc scheme
    instances are fine); ``jobs>1`` distributes cache misses over a
    process pool.  ``cache_dir`` may be a directory path (opened with
    ``cache_backend``: ``"sqlite"`` by default, ``"json"`` for the
    historical per-task files) or an already-open store/cache instance.
    ``grouping="instance"`` (default) batches tasks sharing a graph
    instance through one shared context; ``grouping="none"`` is the
    historical per-task execution.  ``resume=True`` checkpoints a run
    manifest alongside the cache (and requires one); ``progress=True``
    reports done/total + ETA on stderr.  ``stats`` may be an
    :class:`~repro.runner.plan.ExecutionStats` to be filled with cache
    counters and the per-stage timing breakdown.

    ``executor`` plugs in how planned misses actually run: by default a
    :class:`LocalExecutor` built from ``jobs``/``chunksize``; the sweep
    service passes a ``QueueExecutor`` that routes the identical units
    through its durable lease queue.  Planning, cache lookups,
    checkpointing and row order are identical either way — which is what
    keeps serial, ``--jobs N`` and service execution byte-identical.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if executor is None:
        executor = LocalExecutor(jobs=jobs, chunksize=chunksize)
    if grouping not in GROUPING_MODES:
        raise ValueError(
            f"grouping must be one of {', '.join(GROUPING_MODES)}, got {grouping!r}"
        )
    cache: Optional[Union[ResultCache, SQLiteResultStore]] = None
    if cache_dir is not None:
        if isinstance(cache_dir, (str, Path)):
            cache = open_result_store(cache_dir, backend=cache_backend)
        else:
            cache = cache_dir
    if resume and cache is None:
        raise ValueError("resume requires a result cache (pass cache_dir)")

    results: List[Optional[Dict[str, Any]]] = [None] * len(task_list)
    # one hash per task, reused for the lookup below, the store after,
    # and the resume manifest's run identity
    keys: List[Optional[str]] = (
        [task.task_hash() for task in task_list] if cache is not None else []
    )
    manifest: Optional[RunManifest] = None
    if resume and cache is not None:
        manifest = RunManifest.open(cache.directory, keys)

    miss_indices: List[int] = []
    resumed_hits = 0
    if cache is not None:
        for index, key in enumerate(keys):
            row = cache.get(key) if key is not None else None
            if row is not None:
                results[index] = row
                if manifest is not None and manifest.is_done(key):
                    resumed_hits += 1
            else:
                miss_indices.append(index)
    else:
        miss_indices = list(range(len(task_list)))
    if stats is not None:
        stats.cache_hits += len(task_list) - len(miss_indices)
        stats.cache_misses += len(miss_indices)

    reporter = (
        ProgressReporter(len(task_list), label=progress_label) if progress else None
    )
    if reporter is not None:
        reporter.add_cached(len(task_list) - len(miss_indices), resumed=resumed_hits)
    if manifest is not None:
        # cache hits are persisted by definition: fold them into the
        # ledger so it converges even when the cache outlives the run
        manifest.mark_done(
            [keys[index] for index in range(len(task_list)) if results[index] is not None]
        )

    def _commit(batch: List[Tuple[int, Dict[str, Any]]]) -> None:
        """Land one completed batch: rows, cache upsert, checkpoint, progress.

        Called in deterministic batch order (groups in plan order, chunks
        in submission order), so the cache/manifest write sequence — and
        therefore what a killed run keeps — is reproducible.
        """
        stored: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = []
        for index, row in batch:
            results[index] = row
            if cache is not None and keys[index] is not None:
                stored.append((keys[index], task_list[index].key_dict() or {}, row))
        if stored and cache is not None:
            cache.put_many(stored)
            if manifest is not None:
                manifest.mark_done([key for key, _, _ in stored])
        if reporter is not None:
            reporter.add_executed(len(batch))

    misses = [task_list[i] for i in miss_indices]

    def _commit_miss_rows(pairs: List[Tuple[int, Dict[str, Any]]]) -> None:
        # executors speak miss-list positions; translate to task indices
        _commit([(miss_indices[i], row) for i, row in pairs])

    try:
        if misses:
            if grouping in ("instance", "seed-stack"):
                groups = plan_groups(misses)
                units: Sequence[Union[TaskGroup, StackedGroup]] = groups
                if grouping == "seed-stack":
                    # collect same-signature seed groups into super-groups;
                    # everything unstackable stays on the per-instance path
                    units = plan_super_groups(groups)
                if stats is not None:
                    stats.groups += len(groups)
                    stats.grouped_tasks += len(misses)
                    stats.stacked_groups += sum(
                        1 for unit in units if isinstance(unit, StackedGroup)
                    )
                executor.run_units(units, _commit_miss_rows, stats=stats)
            else:
                executor.run_task_list(misses, _commit_miss_rows)
    finally:
        if reporter is not None:
            reporter.close()

    return results  # type: ignore[return-value]

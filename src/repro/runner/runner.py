"""Task execution: serial, or process-parallel with ``--jobs N``.

:func:`run_tasks` is the single entry point everything routes through —
``analysis/sweep.py``, the ``repro.report`` pipeline, the CLI's ``sweep
--jobs`` / ``bench`` commands and the benchmark suite.  Guarantees:

* **Determinism** — results come back in task order regardless of
  ``jobs`` or ``grouping``; workers return plain measured rows and all
  aggregation happens in the parent, so every execution mode is
  byte-identical.
* **Instance grouping** — with ``grouping="instance"`` (the default)
  cache misses are partitioned by :func:`repro.runner.plan.plan_groups`
  into groups sharing one graph instance, and each group runs against
  one :class:`~repro.runner.plan.InstanceContext`: the graph, Borůvka
  trace, rooted tree and per-scheme advice are built **once per group**
  instead of once per task.  With ``jobs=N`` whole groups are shipped to
  workers (instead of blind contiguous chunks), so the sharing holds in
  every worker process too.  ``grouping="none"`` keeps the historical
  per-task path for A/B comparison.
* **Caching** — with ``cache_dir`` set, cacheable tasks (registry-name
  target + :class:`GraphSpec` graph) are looked up / stored by their
  content hash (computed once per task and reused for lookup, store and
  planning).  ``cache_backend`` selects the storage: ``"sqlite"`` (the
  default — a sharded WAL store, see :mod:`repro.runner.store`) or
  ``"json"`` (one file per task, see :mod:`repro.runner.cache`).  A
  cache-warm call never constructs a single group.
* **Checkpointing** — results are committed to the cache *as each
  group's work completes* (batched upserts, streamed back from workers
  in deterministic chunk order), not in one flush at the end: a run
  killed mid-sweep keeps everything that finished.  With ``resume=True``
  a :class:`~repro.runner.manifest.RunManifest` ledger is checkpointed
  in the same rhythm, so ``repro sweep --resume`` / ``repro report
  --resume`` re-execute zero already-checkpointed tasks.
* **Progress** — ``progress=True`` reports done/total, cache hits and
  an ETA on stderr while the run executes (stdout artifacts stay
  byte-identical).

Workers rebuild schemes and graphs from the task description, so a task
is a few hundred bytes on the wire even when the instance it describes
has thousands of nodes.
"""

from __future__ import annotations

import math
import multiprocessing
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.manifest import RunManifest
from repro.runner.plan import (
    ExecutionStats,
    InstanceContext,
    StackedContext,
    StackedGroup,
    TaskGroup,
    plan_groups,
    plan_super_groups,
)
from repro.runner.progress import ProgressReporter
from repro.runner.store import DEFAULT_CACHE_BACKEND, SQLiteResultStore, open_result_store
from repro.runner.tasks import SweepTask

__all__ = ["execute_task", "run_tasks", "GROUPING_MODES"]

#: accepted values of ``run_tasks(..., grouping=...)``
GROUPING_MODES = ("instance", "seed-stack", "none")


def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Run one task in isolation and return its measured row.

    The single-task view of the grouped executor: a fresh
    :class:`~repro.runner.plan.InstanceContext` per call, so rows are
    identical to grouped execution by construction.  Rows carry
    unrounded measurements; presentation rounding happens in the
    aggregation layer so cached and fresh results cannot diverge.
    """
    return InstanceContext().execute(task)


def _execute_chunk(chunk: Sequence[SweepTask]) -> List[Dict[str, Any]]:
    """Worker entry point of the ungrouped path: one contiguous slice."""
    return [execute_task(task) for task in chunk]


def _execute_group_chunk(
    chunk: Sequence[Union[TaskGroup, StackedGroup]],
) -> Tuple[List[Tuple[int, Dict[str, Any]]], Dict[str, float]]:
    """Worker entry point of the grouped paths: whole groups at a time.

    ``grouping="seed-stack"`` ships whole :class:`StackedGroup`\\ s, so
    the cross-seed sharing holds inside every worker process too.
    Returns ``(miss_index, row)`` pairs plus the worker's stage-seconds
    breakdown, so the parent can reassemble rows in task order and
    aggregate profiling data across processes.
    """
    stats = ExecutionStats()
    rows: List[Tuple[int, Dict[str, Any]]] = []
    for group in chunk:
        if isinstance(group, StackedGroup):
            rows.extend(StackedContext(group, stats=stats).execute_all())
        else:
            context = InstanceContext(stats=stats)
            for index, task in zip(group.indices, group.tasks):
                rows.append((index, context.execute(task)))
    return rows, stats.stage_seconds


def _pool(jobs: int):
    # fork shares the parent's sys.path (the repo may be run straight
    # from a checkout, without installation); fall back to the platform
    # default where fork does not exist
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=jobs)


def _chunked(items: Sequence[Any], size: int) -> List[List[Any]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def run_tasks(
    tasks: Iterable[SweepTask],
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path, ResultCache, SQLiteResultStore]] = None,
    chunksize: Optional[int] = None,
    grouping: str = "instance",
    stats: Optional[ExecutionStats] = None,
    cache_backend: str = DEFAULT_CACHE_BACKEND,
    resume: bool = False,
    progress: bool = False,
    progress_label: str = "tasks",
) -> List[Dict[str, Any]]:
    """Execute every task and return their rows **in task order**.

    ``jobs=1`` runs in-process (no pickling — closures and ad-hoc scheme
    instances are fine); ``jobs>1`` distributes cache misses over a
    process pool.  ``cache_dir`` may be a directory path (opened with
    ``cache_backend``: ``"sqlite"`` by default, ``"json"`` for the
    historical per-task files) or an already-open store/cache instance.
    ``grouping="instance"`` (default) batches tasks sharing a graph
    instance through one shared context; ``grouping="none"`` is the
    historical per-task execution.  ``resume=True`` checkpoints a run
    manifest alongside the cache (and requires one); ``progress=True``
    reports done/total + ETA on stderr.  ``stats`` may be an
    :class:`~repro.runner.plan.ExecutionStats` to be filled with cache
    counters and the per-stage timing breakdown.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if grouping not in GROUPING_MODES:
        raise ValueError(
            f"grouping must be one of {', '.join(GROUPING_MODES)}, got {grouping!r}"
        )
    cache: Optional[Union[ResultCache, SQLiteResultStore]] = None
    if cache_dir is not None:
        if isinstance(cache_dir, (str, Path)):
            cache = open_result_store(cache_dir, backend=cache_backend)
        else:
            cache = cache_dir
    if resume and cache is None:
        raise ValueError("resume requires a result cache (pass cache_dir)")

    results: List[Optional[Dict[str, Any]]] = [None] * len(task_list)
    # one hash per task, reused for the lookup below, the store after,
    # and the resume manifest's run identity
    keys: List[Optional[str]] = (
        [task.task_hash() for task in task_list] if cache is not None else []
    )
    manifest: Optional[RunManifest] = None
    if resume and cache is not None:
        manifest = RunManifest.open(cache.directory, keys)

    miss_indices: List[int] = []
    resumed_hits = 0
    if cache is not None:
        for index, key in enumerate(keys):
            row = cache.get(key) if key is not None else None
            if row is not None:
                results[index] = row
                if manifest is not None and manifest.is_done(key):
                    resumed_hits += 1
            else:
                miss_indices.append(index)
    else:
        miss_indices = list(range(len(task_list)))
    if stats is not None:
        stats.cache_hits += len(task_list) - len(miss_indices)
        stats.cache_misses += len(miss_indices)

    reporter = (
        ProgressReporter(len(task_list), label=progress_label) if progress else None
    )
    if reporter is not None:
        reporter.add_cached(len(task_list) - len(miss_indices), resumed=resumed_hits)
    if manifest is not None:
        # cache hits are persisted by definition: fold them into the
        # ledger so it converges even when the cache outlives the run
        manifest.mark_done(
            [keys[index] for index in range(len(task_list)) if results[index] is not None]
        )

    def _commit(batch: List[Tuple[int, Dict[str, Any]]]) -> None:
        """Land one completed batch: rows, cache upsert, checkpoint, progress.

        Called in deterministic batch order (groups in plan order, chunks
        in submission order), so the cache/manifest write sequence — and
        therefore what a killed run keeps — is reproducible.
        """
        stored: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = []
        for index, row in batch:
            results[index] = row
            if cache is not None and keys[index] is not None:
                stored.append((keys[index], task_list[index].key_dict() or {}, row))
        if stored and cache is not None:
            cache.put_many(stored)
            if manifest is not None:
                manifest.mark_done([key for key, _, _ in stored])
        if reporter is not None:
            reporter.add_executed(len(batch))

    misses = [task_list[i] for i in miss_indices]
    try:
        if misses:
            if grouping in ("instance", "seed-stack"):
                groups = plan_groups(misses)
                units: Sequence[Union[TaskGroup, StackedGroup]] = groups
                if grouping == "seed-stack":
                    # collect same-signature seed groups into super-groups;
                    # everything unstackable stays on the per-instance path
                    units = plan_super_groups(groups)
                if stats is not None:
                    stats.groups += len(groups)
                    stats.grouped_tasks += len(misses)
                    stats.stacked_groups += sum(
                        1 for unit in units if isinstance(unit, StackedGroup)
                    )
                if jobs > 1 and len(misses) > 1:
                    chunks = _chunked(units, max(1, math.ceil(len(units) / (jobs * 4))))
                    with _pool(jobs) as pool:
                        # ordered imap: chunks stream back as they finish, so
                        # each one is committed (and checkpointed) without
                        # waiting for the whole sweep
                        for chunk_rows, stage_seconds in pool.imap(
                            _execute_group_chunk, chunks
                        ):
                            _commit(
                                [(miss_indices[i], row) for i, row in chunk_rows]
                            )
                            if stats is not None:
                                stats.merge_stage_dict(stage_seconds)
                else:
                    for unit in units:
                        if isinstance(unit, StackedGroup):
                            rows = StackedContext(unit, stats=stats).execute_all()
                            _commit([(miss_indices[i], row) for i, row in rows])
                        else:
                            context = InstanceContext(stats=stats)
                            _commit(
                                [
                                    (miss_indices[i], context.execute(task))
                                    for i, task in zip(unit.indices, unit.tasks)
                                ]
                            )
            elif jobs > 1 and len(misses) > 1:
                if chunksize is None:
                    chunksize = max(1, math.ceil(len(misses) / (jobs * 4)))
                chunks = _chunked(misses, chunksize)
                offset = 0
                with _pool(jobs) as pool:
                    for chunk_rows in pool.imap(_execute_chunk, chunks):
                        _commit(
                            [
                                (miss_indices[offset + i], row)
                                for i, row in enumerate(chunk_rows)
                            ]
                        )
                        offset += len(chunk_rows)
            else:
                for i, task in enumerate(misses):
                    _commit([(miss_indices[i], execute_task(task))])
    finally:
        if reporter is not None:
            reporter.close()

    return results  # type: ignore[return-value]

"""Task execution: serial, or process-parallel with ``--jobs N``.

:func:`run_tasks` is the single entry point everything routes through —
``analysis/sweep.py``, the ``repro.report`` pipeline, the CLI's ``sweep
--jobs`` / ``bench`` commands and the benchmark suite.  Guarantees:

* **Determinism** — results come back in task order regardless of
  ``jobs`` or ``grouping``; workers return plain measured rows and all
  aggregation happens in the parent, so every execution mode is
  byte-identical.
* **Instance grouping** — with ``grouping="instance"`` (the default)
  cache misses are partitioned by :func:`repro.runner.plan.plan_groups`
  into groups sharing one graph instance, and each group runs against
  one :class:`~repro.runner.plan.InstanceContext`: the graph, Borůvka
  trace, rooted tree and per-scheme advice are built **once per group**
  instead of once per task.  With ``jobs=N`` whole groups are shipped to
  workers (instead of blind contiguous chunks), so the sharing holds in
  every worker process too.  ``grouping="none"`` keeps the historical
  per-task path for A/B comparison.
* **Caching** — with ``cache_dir`` set, cacheable tasks (registry-name
  target + :class:`GraphSpec` graph) are looked up / stored by their
  content hash (computed once per task and reused for lookup, store and
  planning); see :mod:`repro.runner.cache` for the file format.  A
  cache-warm call never constructs a single group.

Workers rebuild schemes and graphs from the task description, so a task
is a few hundred bytes on the wire even when the instance it describes
has thousands of nodes.
"""

from __future__ import annotations

import math
import multiprocessing
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runner.cache import ResultCache
from repro.runner.plan import ExecutionStats, InstanceContext, TaskGroup, plan_groups
from repro.runner.tasks import SweepTask

__all__ = ["execute_task", "run_tasks", "GROUPING_MODES"]

#: accepted values of ``run_tasks(..., grouping=...)``
GROUPING_MODES = ("instance", "none")


def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Run one task in isolation and return its measured row.

    The single-task view of the grouped executor: a fresh
    :class:`~repro.runner.plan.InstanceContext` per call, so rows are
    identical to grouped execution by construction.  Rows carry
    unrounded measurements; presentation rounding happens in the
    aggregation layer so cached and fresh results cannot diverge.
    """
    return InstanceContext().execute(task)


def _execute_chunk(chunk: Sequence[SweepTask]) -> List[Dict[str, Any]]:
    """Worker entry point of the ungrouped path: one contiguous slice."""
    return [execute_task(task) for task in chunk]


def _execute_group_chunk(
    chunk: Sequence[TaskGroup],
) -> Tuple[List[Tuple[int, Dict[str, Any]]], Dict[str, float]]:
    """Worker entry point of the grouped path: whole groups at a time.

    Returns ``(miss_index, row)`` pairs plus the worker's stage-seconds
    breakdown, so the parent can reassemble rows in task order and
    aggregate profiling data across processes.
    """
    stats = ExecutionStats()
    rows: List[Tuple[int, Dict[str, Any]]] = []
    for group in chunk:
        context = InstanceContext(stats=stats)
        for index, task in zip(group.indices, group.tasks):
            rows.append((index, context.execute(task)))
    return rows, stats.stage_seconds


def _pool(jobs: int):
    # fork shares the parent's sys.path (the repo may be run straight
    # from a checkout, without installation); fall back to the platform
    # default where fork does not exist
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    return ctx.Pool(processes=jobs)


def _run_parallel(
    tasks: Sequence[SweepTask], jobs: int, chunksize: Optional[int]
) -> List[Dict[str, Any]]:
    """Ungrouped fan-out: contiguous chunks, results stay in task order."""
    if chunksize is None:
        chunksize = max(1, math.ceil(len(tasks) / (jobs * 4)))
    chunks = [list(tasks[i : i + chunksize]) for i in range(0, len(tasks), chunksize)]
    with _pool(jobs) as pool:
        nested = pool.map(_execute_chunk, chunks)
    return [row for chunk_rows in nested for row in chunk_rows]


def _run_parallel_groups(
    groups: Sequence[TaskGroup],
    jobs: int,
    total_tasks: int,
    stats: Optional[ExecutionStats],
) -> List[Dict[str, Any]]:
    """Grouped fan-out: whole groups per work item, never split.

    Splitting a group across workers would rebuild its shared artifacts
    in every worker — exactly the waste the planner exists to remove —
    so the unit of distribution is the group, bundled into ~``4*jobs``
    consecutive runs to keep pickling traffic low.
    """
    chunksize = max(1, math.ceil(len(groups) / (jobs * 4)))
    chunks = [list(groups[i : i + chunksize]) for i in range(0, len(groups), chunksize)]
    with _pool(jobs) as pool:
        nested = pool.map(_execute_group_chunk, chunks)
    rows: List[Optional[Dict[str, Any]]] = [None] * total_tasks
    for chunk_rows, stage_seconds in nested:
        for index, row in chunk_rows:
            rows[index] = row
        if stats is not None:
            stats.merge_stage_dict(stage_seconds)
    return rows  # type: ignore[return-value]


def run_tasks(
    tasks: Iterable[SweepTask],
    jobs: int = 1,
    cache_dir: Optional[Union[str, "ResultCache"]] = None,
    chunksize: Optional[int] = None,
    grouping: str = "instance",
    stats: Optional[ExecutionStats] = None,
) -> List[Dict[str, Any]]:
    """Execute every task and return their rows **in task order**.

    ``jobs=1`` runs in-process (no pickling — closures and ad-hoc scheme
    instances are fine); ``jobs>1`` distributes cache misses over a
    process pool.  ``cache_dir`` may be a directory path or an existing
    :class:`ResultCache`.  ``grouping="instance"`` (default) batches
    tasks sharing a graph instance through one shared context;
    ``grouping="none"`` is the historical per-task execution.  ``stats``
    may be an :class:`~repro.runner.plan.ExecutionStats` to be filled
    with cache counters and the per-stage timing breakdown.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if grouping not in GROUPING_MODES:
        raise ValueError(
            f"grouping must be one of {', '.join(GROUPING_MODES)}, got {grouping!r}"
        )
    cache: Optional[ResultCache] = None
    if cache_dir is not None:
        cache = cache_dir if isinstance(cache_dir, ResultCache) else ResultCache(cache_dir)

    results: List[Optional[Dict[str, Any]]] = [None] * len(task_list)
    # one hash per task, reused for the lookup below and the store after
    keys: List[Optional[str]] = (
        [task.task_hash() for task in task_list] if cache is not None else []
    )
    miss_indices: List[int] = []
    if cache is not None:
        for index, key in enumerate(keys):
            row = cache.get(key) if key is not None else None
            if row is not None:
                results[index] = row
            else:
                miss_indices.append(index)
    else:
        miss_indices = list(range(len(task_list)))
    if stats is not None:
        stats.cache_hits += len(task_list) - len(miss_indices)
        stats.cache_misses += len(miss_indices)

    misses = [task_list[i] for i in miss_indices]
    if misses:
        if grouping == "instance":
            groups = plan_groups(misses)
            if stats is not None:
                stats.groups += len(groups)
                stats.grouped_tasks += len(misses)
            if jobs > 1 and len(misses) > 1:
                computed = _run_parallel_groups(groups, jobs, len(misses), stats)
            else:
                computed = [None] * len(misses)  # type: ignore[assignment]
                for group in groups:
                    context = InstanceContext(stats=stats)
                    for index, task in zip(group.indices, group.tasks):
                        computed[index] = context.execute(task)
        elif jobs > 1 and len(misses) > 1:
            computed = _run_parallel(misses, jobs, chunksize)
        else:
            computed = [execute_task(task) for task in misses]
        for index, row in zip(miss_indices, computed):
            results[index] = row
            if cache is not None:
                key = keys[index]
                if key is not None:
                    cache.put(key, task_list[index].key_dict() or {}, row)

    return results  # type: ignore[return-value]

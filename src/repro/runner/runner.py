"""Task execution: serial, or process-parallel with ``--jobs N``.

:func:`run_tasks` is the single entry point everything routes through —
``analysis/sweep.py``, the CLI's ``sweep --jobs`` / ``bench`` commands
and the benchmark suite.  Guarantees:

* **Determinism** — results come back in task order regardless of
  ``jobs``; workers return plain measured rows and all aggregation
  happens in the parent, so the serial and parallel paths are
  byte-identical.
* **Chunking** — with ``jobs=N`` the miss list is split into ~``4*N``
  contiguous chunks, so inter-process traffic is one pickle per chunk
  instead of one per run.
* **Caching** — with ``cache_dir`` set, cacheable tasks (registry-name
  target + :class:`GraphSpec` graph) are looked up / stored by their
  content hash; see :mod:`repro.runner.cache` for the file format.

Workers rebuild schemes and graphs from the task description, so a task
is a few hundred bytes on the wire even when the instance it describes
has thousands of nodes.
"""

from __future__ import annotations

import math
import multiprocessing
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.oracle import run_scheme
from repro.distributed.base import run_baseline
from repro.runner.cache import ResultCache
from repro.runner.registry import resolve_baseline, resolve_scheme
from repro.runner.tasks import SweepTask

__all__ = ["execute_task", "run_tasks"]


def execute_task(task: SweepTask) -> Dict[str, Any]:
    """Run one task and return its measured row (plain JSON-able dict).

    Rows carry unrounded measurements; presentation rounding happens in
    the aggregation layer so cached and fresh results cannot diverge.
    """
    graph = task.build_graph()
    if task.kind == "scheme":
        scheme = resolve_scheme(task.target)
        report = run_scheme(
            scheme, graph, root=task.root % graph.n, backend=task.backend
        )
        return {
            "kind": "scheme",
            "scheme": report.scheme,
            "n": task.n,
            "seed": task.seed,
            "max_advice_bits": report.advice.max_bits,
            "avg_advice_bits": report.advice.average_bits,
            "total_advice_bits": report.advice.total_bits,
            "rounds": report.rounds,
            "max_edge_bits": report.metrics.max_edge_bits_per_round,
            "total_messages": report.metrics.total_messages,
            "total_message_bits": report.metrics.total_message_bits,
            "correct": report.correct,
        }
    baseline = resolve_baseline(task.target)
    report = run_baseline(baseline, graph)
    return {
        "kind": "baseline",
        "scheme": report.baseline,
        "n": task.n,
        "seed": task.seed,
        "rounds": report.rounds,
        "max_edge_bits": report.metrics.max_edge_bits_per_round,
        "total_messages": report.metrics.total_messages,
        "total_message_bits": report.metrics.total_message_bits,
        "correct": report.correct,
        "round_bound": report.round_bound,
    }


def _execute_chunk(chunk: Sequence[SweepTask]) -> List[Dict[str, Any]]:
    """Worker entry point: run one contiguous slice of the task list."""
    return [execute_task(task) for task in chunk]


def _run_parallel(
    tasks: Sequence[SweepTask], jobs: int, chunksize: Optional[int]
) -> List[Dict[str, Any]]:
    """Fan a task list over a process pool; results stay in task order."""
    if chunksize is None:
        chunksize = max(1, math.ceil(len(tasks) / (jobs * 4)))
    chunks = [list(tasks[i : i + chunksize]) for i in range(0, len(tasks), chunksize)]
    # fork shares the parent's sys.path (the repo may be run straight
    # from a checkout, without installation); fall back to the platform
    # default where fork does not exist
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    with ctx.Pool(processes=jobs) as pool:
        nested = pool.map(_execute_chunk, chunks)
    return [row for chunk_rows in nested for row in chunk_rows]


def run_tasks(
    tasks: Iterable[SweepTask],
    jobs: int = 1,
    cache_dir: Optional[Union[str, "ResultCache"]] = None,
    chunksize: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Execute every task and return their rows **in task order**.

    ``jobs=1`` runs in-process (no pickling — closures and ad-hoc scheme
    instances are fine); ``jobs>1`` distributes cache misses over a
    process pool.  ``cache_dir`` may be a directory path or an existing
    :class:`ResultCache`.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    cache: Optional[ResultCache] = None
    if cache_dir is not None:
        cache = cache_dir if isinstance(cache_dir, ResultCache) else ResultCache(cache_dir)

    results: List[Optional[Dict[str, Any]]] = [None] * len(task_list)
    miss_indices: List[int] = []
    if cache is not None:
        for index, task in enumerate(task_list):
            key = task.task_hash()
            row = cache.get(key) if key is not None else None
            if row is not None:
                results[index] = row
            else:
                miss_indices.append(index)
    else:
        miss_indices = list(range(len(task_list)))

    misses = [task_list[i] for i in miss_indices]
    if misses:
        if jobs > 1 and len(misses) > 1:
            computed = _run_parallel(misses, jobs, chunksize)
        else:
            computed = [execute_task(task) for task in misses]
        for index, row in zip(miss_indices, computed):
            results[index] = row
            if cache is not None:
                task = task_list[index]
                key = task.task_hash()
                if key is not None:
                    cache.put(key, task.key_dict() or {}, row)

    return results  # type: ignore[return-value]

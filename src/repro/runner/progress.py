"""Live progress of a running task list (stderr, throttled).

One line, rewritten in place, showing done/total, how many rows came
from the cache vs. were resumed vs. executed, and an ETA extrapolated
from the executed-task rate::

    sweep: 128/512 done (96 cached, 0 resumed) 12.3 tasks/s ETA 0:31

The reporter writes to ``stderr`` only — artifacts and ``--json``
output on ``stdout`` stay byte-identical whether progress is on or off.
When ``stderr`` is not a terminal the rewrite degrades to plain
newline-separated lines (still throttled), so CI logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Throttled done/total + ETA reporting for one ``run_tasks`` call."""

    def __init__(
        self,
        total: int,
        label: str = "tasks",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.2,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.cached = 0
        self.resumed = 0
        self.executed = 0
        self._start = time.perf_counter()
        self._last_emit = 0.0
        self._open_line = False

    @property
    def done(self) -> int:
        return self.cached + self.executed

    def add_cached(self, count: int, resumed: int = 0) -> None:
        """Record rows served by the cache (``resumed`` of them known
        to an earlier run's manifest)."""
        self.cached += count
        self.resumed += resumed
        self.emit()

    def add_executed(self, count: int) -> None:
        """Record freshly executed (and checkpointed) rows."""
        self.executed += count
        self.emit()

    def _eta_seconds(self) -> Optional[float]:
        remaining = self.total - self.done
        if remaining <= 0 or self.executed == 0:
            return None
        elapsed = time.perf_counter() - self._start
        if elapsed <= 0:
            return None
        return remaining / (self.executed / elapsed)

    def _line(self) -> str:
        parts = [f"{self.label}: {self.done}/{self.total} done"]
        parts.append(f"({self.cached} cached, {self.resumed} resumed)")
        elapsed = time.perf_counter() - self._start
        if self.executed and elapsed > 0:
            parts.append(f"{self.executed / elapsed:.1f} tasks/s")
        eta = self._eta_seconds()
        if eta is not None:
            minutes, seconds = divmod(int(eta + 0.5), 60)
            parts.append(f"ETA {minutes}:{seconds:02d}")
        return " ".join(parts)

    def emit(self, force: bool = False) -> None:
        """Write the current line (throttled unless ``force``)."""
        now = time.perf_counter()
        if not force and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        line = self._line()
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write(f"\r\x1b[2K{line}")
            self._open_line = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Emit the final state and terminate the in-place line."""
        self.emit(force=True)
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False

"""On-disk JSON cache of task results (the ``json`` cache backend).

The historical backend behind ``--cache-backend json``: simple,
dependency-free, and debuggable with ``cat``.  The default backend is
the sharded SQLite store (:mod:`repro.runner.store`), which implements
this same contract — ``get`` / ``put`` / ``put_many`` plus ``hits`` /
``misses`` — over a handful of transactional files instead of one inode
per task; ``repro store migrate`` imports a directory of this format.

Layout: one file per task under the cache directory, named
``<sha256-of-task>.json``, each containing::

    {
      "version": 2,          # cache format version
      "task":    {...},      # the canonical task content (for humans/debugging)
      "result":  {...}       # the measured result row
    }

The task content (and therefore the sha256 file name) includes the
execution backend (``engine`` / ``analytic``) and that backend's
semantic version — see :func:`repro.runner.tasks.backend_version` — so a
row measured on one backend can never be served for the other, and
bumping a backend's version invalidates exactly its own rows.  Version 1
entries (which predate the backend field) are treated as misses.

Entries are written atomically (temp file + ``os.replace``) so parallel
workers and concurrent sweeps can share a directory; a corrupt,
unreadable or version-mismatched file is treated as a miss and
overwritten.  The cache stores exactly what the worker returned —
unrounded floats survive the JSON round-trip bit-for-bit (``repr``
round-tripping), which is what keeps cached and fresh sweeps
byte-identical.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

__all__ = ["ResultCache", "CACHE_VERSION"]

#: 2: the task content gained the backend + backend_version fields
CACHE_VERSION = 2


class ResultCache:
    """A directory of ``<task-hash>.json`` result files."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ValueError(f"cannot use {self.directory!r} as a cache directory: {exc}") from exc
        #: cache-hit / miss counters of this process (for reporting)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """The file a result for ``key`` lives in."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result row for ``key``, or ``None`` on any miss."""
        try:
            payload = json.loads(self.path_for(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, task_content: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Atomically persist one result row under ``key``."""
        payload = {"version": CACHE_VERSION, "task": task_content, "result": result}
        target = self.path_for(key)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        # key order is preserved (no sort_keys): a row read back from the
        # cache must serialise byte-identically to a freshly computed one
        tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        os.replace(tmp, target)

    def put_many(
        self, items: Iterable[Tuple[str, Dict[str, Any], Dict[str, Any]]]
    ) -> None:
        """Persist a batch of rows (each file individually atomic).

        The JSON backend has no transactions, so a batch is simply a
        loop — the method exists to keep the two backends' contracts
        identical (the SQLite store turns it into one transaction per
        shard).
        """
        for key, task_content, result in items:
            self.put(key, task_content, result)

"""Execution planning: group sweep tasks that share an instance.

A sweep point runs *many* treatments — several advising schemes, two
execution backends, the no-advice baselines — over the *same* graph
instance, and each of those treatments needs the same expensive
preparations: build the graph, run the Borůvka trace, root the reference
MST, compute the oracle advice.  :func:`plan_groups` partitions a miss
list into :class:`TaskGroup`\\ s of tasks that share one instance, and
:class:`InstanceContext` executes a whole group against shared
artifacts, building each of them exactly once:

* the **graph** is built once per group (not once per task);
* the **Borůvka trace** and the **rooted reference tree** are built once
  per ``(instance, root)`` — they live in per-graph memos, which the
  grouping turns from "lucky when tasks happen to be adjacent" into a
  guarantee, including under ``--jobs N`` where the runner ships whole
  groups to workers instead of blind contiguous chunks;
* the **advice** of each scheme is computed once per ``(scheme, root)``
  and reused by every backend that runs that scheme.

Rows are byte-identical to per-task execution: every shared artifact is
a deterministic pure function of the instance, so sharing is observable
only as speed.  :class:`ExecutionStats` aggregates per-stage wall time
(graph / trace / advice / execute) and cache counters; ``repro bench
--profile`` surfaces it so future performance work can see where the
time goes.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.oracle import run_scheme
from repro.distributed.base import run_baseline
from repro.runner.registry import resolve_baseline, resolve_scheme
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = [
    "ExecutionStats",
    "InstanceContext",
    "StackedContext",
    "StackedGroup",
    "TaskGroup",
    "instance_key",
    "plan_groups",
    "plan_super_groups",
]

#: the stages a grouped execution is broken into, in reporting order
STAGES = ("graph", "trace", "advice", "execute")


@dataclass
class ExecutionStats:
    """What one :func:`~repro.runner.runner.run_tasks` call actually did.

    ``stage_seconds`` decomposes the executed (non-cached) work into the
    shared-preparation stages; a warm-cache run has every counter at
    zero except ``cache_hits`` — group construction is skipped entirely.
    """

    #: instance groups executed (0 when every task was a cache hit)
    groups: int = 0
    #: tasks executed through grouped contexts
    grouped_tasks: int = 0
    #: seed-stacked super-groups executed (``grouping="seed-stack"`` only)
    stacked_groups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: wall seconds per stage: graph build / trace / advice / execution
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def add_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def merge_stage_dict(self, stage_seconds: Dict[str, float]) -> None:
        """Fold a worker's stage breakdown into this one."""
        for stage, seconds in stage_seconds.items():
            self.add_stage(stage, seconds)

    def stages_dict(self) -> Dict[str, float]:
        """The stage breakdown in canonical order, rounded for reports."""
        return {
            stage: round(self.stage_seconds.get(stage, 0.0), 4) for stage in STAGES
        }


@dataclass(frozen=True)
class TaskGroup:
    """A maximal run of cache-miss tasks sharing one graph instance."""

    #: shared-instance identity, or ``None`` for an ungroupable task
    key: Optional[Hashable]
    #: positions of the group's tasks in the planned task list
    indices: Tuple[int, ...]
    tasks: Tuple[SweepTask, ...]


def instance_key(task: SweepTask) -> Optional[Hashable]:
    """The shared-instance identity of a task, or ``None`` if it has none.

    Tasks agree on the key exactly when :meth:`SweepTask.build_graph`
    builds the same instance (neither the root nor the problem is part
    of the key — traces and advice are memoised per ``(problem, target,
    root)`` inside the group, so a sweep point mixing, say, MST and
    leader-election tasks still builds its graph exactly once).  Tasks
    with ad-hoc factory callables have no comparable identity and become
    singleton groups.
    """
    if not isinstance(task.graph, GraphSpec):
        return None
    spec = task.graph.key_dict()
    return (spec["family"], spec["density"], task.n, task.seed)


def plan_groups(tasks: Sequence[SweepTask]) -> List[TaskGroup]:
    """Partition ``tasks`` into instance groups, in first-seen order.

    Every task lands in exactly one group (the groups' ``indices``
    partition ``range(len(tasks))``); tasks without an instance identity
    become singleton groups at their original position in the order.
    """
    order: List[Hashable] = []
    by_key: Dict[Hashable, Tuple[List[int], List[SweepTask]]] = {}
    for index, task in enumerate(tasks):
        key = instance_key(task)
        if key is None:
            key = ("__singleton__", index)
        bucket = by_key.get(key)
        if bucket is None:
            bucket = ([], [])
            by_key[key] = bucket
            order.append(key)
        bucket[0].append(index)
        bucket[1].append(task)
    return [
        TaskGroup(
            key=None if isinstance(key, tuple) and key and key[0] == "__singleton__" else key,
            indices=tuple(by_key[key][0]),
            tasks=tuple(by_key[key][1]),
        )
        for key in order
    ]


@dataclass(frozen=True)
class StackedGroup:
    """All instance groups of one sweep point, stackable across seeds.

    The member groups share everything but the seed — same family,
    density, requested size, root and treatment multiset — so the
    expensive per-instance preparations can run once over the whole
    stack: batched graph generation, one union Borůvka phase loop
    (:func:`repro.mst.boruvka.boruvka_trace_stacked`) and one capacity
    search per scheme across all seeds.
    """

    #: shared sweep-point identity: ``(family, density, n, root, treatments)``
    key: Hashable
    groups: Tuple[TaskGroup, ...]


def _stack_signature(group: TaskGroup) -> Optional[Hashable]:
    """What a group must agree on (besides the seed) to be stackable.

    ``None`` marks the group unstackable: no shared-instance identity
    (ad-hoc graph factories), mixed roots, non-registry targets (ad-hoc
    scheme objects cannot be instantiated once per seed), or scheme tasks
    of a problem other than ``mst`` (the stacked kernel batches Borůvka
    traces and MST advice; other problems keep the per-instance path).
    """
    if group.key is None:
        return None
    roots = {task.root for task in group.tasks}
    if len(roots) != 1:
        return None
    for task in group.tasks:
        if not isinstance(task.target, str):
            return None
        if task.kind == "scheme" and task.problem != "mst":
            return None
    family, density, n, _seed = group.key
    treatments = tuple(
        sorted(
            # the fault key must be a sortable tuple: one instance group
            # holds the same target under many faults (a robustness grid),
            # and mixing None with dataclasses would break the sort
            (
                t.kind,
                t.problem,
                t.target,
                t.backend,
                ()
                if t.fault is None
                else (t.fault.delta, t.fault.crash_rate, t.fault.recovery, t.fault.churn),
            )
            for t in group.tasks
        )
    )
    return (family, density, n, roots.pop(), treatments)


def plan_super_groups(
    groups: Sequence[TaskGroup],
) -> List[Union[TaskGroup, "StackedGroup"]]:
    """Collect instance groups that differ only in the seed into stacks.

    Groups with matching stack signatures (≥ 2 of them — a single seed
    gains nothing from stacking) are replaced by one :class:`StackedGroup`
    at the position of their first member; everything else — heterogeneous
    grids, partial-miss groups whose surviving treatments differ across
    seeds, non-MST problems, ad-hoc targets — passes through unchanged and
    runs on the plain per-instance path.
    """
    buckets: Dict[Hashable, List[int]] = {}
    for index, group in enumerate(groups):
        signature = _stack_signature(group)
        if signature is not None:
            buckets.setdefault(signature, []).append(index)
    stacked_at: Dict[int, StackedGroup] = {}
    absorbed = set()
    for signature, indices in buckets.items():
        if len(indices) >= 2:
            stacked_at[indices[0]] = StackedGroup(
                key=signature, groups=tuple(groups[i] for i in indices)
            )
            absorbed.update(indices)
    units: List[Union[TaskGroup, StackedGroup]] = []
    for index, group in enumerate(groups):
        if index in stacked_at:
            units.append(stacked_at[index])
        elif index not in absorbed:
            units.append(group)
    return units


#: per scheme class: whether ``compute_advice`` accepts a ``trace``
#: keyword (trace-driven oracles) — resolved once, not per task
_TRACE_PARAM_CACHE: Dict[type, bool] = {}


def _wants_trace(scheme: Any) -> bool:
    cls = type(scheme)
    cached = _TRACE_PARAM_CACHE.get(cls)
    if cached is None:
        try:
            parameters = inspect.signature(scheme.compute_advice).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            parameters = {}
        cached = "trace" in parameters
        _TRACE_PARAM_CACHE[cls] = cached
    return cached


class InstanceContext:
    """Shared artifacts of one instance group, built once and reused.

    The context is deliberately lazy: a group of baseline tasks never
    pays for a trace, a cache-warm group is never constructed at all.
    ``execute`` produces exactly the row :func:`repro.runner.runner.execute_task`
    produces — sharing is observable only as speed.
    """

    def __init__(self, stats: Optional[ExecutionStats] = None) -> None:
        self._graph = None
        self._stats = stats
        #: (problem, registry name, root) -> (scheme instance, computed advice)
        self._advice: Dict[Tuple[str, str, int], Tuple[Any, Any]] = {}

    # ------------------------------------------------------------------ #

    def _timed(self, stage: str, start: float) -> None:
        if self._stats is not None:
            self._stats.add_stage(stage, time.perf_counter() - start)

    def _instance(self, task: SweepTask):
        if self._graph is None:
            start = time.perf_counter()
            self._graph = task.build_graph()
            self._timed("graph", start)
        return self._graph

    def _scheme_and_advice(self, task: SweepTask, graph) -> Tuple[Any, Any]:
        """The task's scheme and its advice, shared across the group's backends."""
        root = task.root % graph.n
        memo_key = (
            (task.problem, task.target, root) if isinstance(task.target, str) else None
        )
        if memo_key is not None:
            cached = self._advice.get(memo_key)
            if cached is not None:
                return cached
        scheme = resolve_scheme(task.target, problem=task.problem)
        if _wants_trace(scheme):
            from repro.mst.boruvka import boruvka_trace

            start = time.perf_counter()
            trace = boruvka_trace(graph, root=root)
            self._timed("trace", start)
            start = time.perf_counter()
            advice = scheme.compute_advice(graph, root=root, trace=trace)
        else:
            start = time.perf_counter()
            advice = scheme.compute_advice(graph, root=root)
        self._timed("advice", start)
        if memo_key is not None:
            self._advice[memo_key] = (scheme, advice)
        return scheme, advice

    # ------------------------------------------------------------------ #

    def execute(self, task: SweepTask) -> Dict[str, Any]:
        """Run one task against the shared context and return its row."""
        graph = self._instance(task)
        if task.kind == "scheme":
            scheme, advice = self._scheme_and_advice(task, graph)
            start = time.perf_counter()
            report = run_scheme(
                scheme,
                graph,
                root=task.root % graph.n,
                backend=task.backend,
                advice=advice,
                fault=task.fault,
                fault_seed=task.seed,
            )
            self._timed("execute", start)
            return {
                "kind": "scheme",
                "problem": report.problem,
                "scheme": report.scheme,
                "n": task.n,
                "seed": task.seed,
                "max_advice_bits": report.advice.max_bits,
                "avg_advice_bits": report.advice.average_bits,
                "total_advice_bits": report.advice.total_bits,
                "rounds": report.rounds,
                "max_edge_bits": report.metrics.max_edge_bits_per_round,
                "total_messages": report.metrics.total_messages,
                "total_message_bits": report.metrics.total_message_bits,
                "correct": report.correct,
            }
        baseline = resolve_baseline(task.target, problem=task.problem)
        start = time.perf_counter()
        report = run_baseline(baseline, graph, fault=task.fault, fault_seed=task.seed)
        self._timed("execute", start)
        return {
            "kind": "baseline",
            "problem": report.problem,
            "scheme": report.baseline,
            "n": task.n,
            "seed": task.seed,
            "rounds": report.rounds,
            "max_edge_bits": report.metrics.max_edge_bits_per_round,
            "total_messages": report.metrics.total_messages,
            "total_message_bits": report.metrics.total_message_bits,
            "correct": report.correct,
            "round_bound": report.round_bound,
        }


class StackedContext:
    """One sweep point's shared artifacts, built across **all** its seeds.

    The seed-stacked big sibling of :class:`InstanceContext`: where the
    instance context builds the graph / trace / advice once per seed,
    this context builds them once per *stack* —

    * graphs of the ``random`` family come out of
      :func:`~repro.graphs.generators.random_connected_graph_batch`
      (RNG-stream-compatible with per-seed construction, so the
      instances are byte-identical); other families build per seed;
    * one union-find phase loop traces every seed's Borůvka run at once
      and pre-seeds each graph's trace and Kruskal memos;
    * each scheme's oracle runs through its ``compute_advice_batch``
      (the Theorem-3 variants share one capacity search across seeds).

    Execution then delegates to one pre-warmed :class:`InstanceContext`
    per seed, so rows are those of the per-instance path by
    construction.  Stage seconds are attributed once per super-group:
    the batched graph/trace/advice work is timed here, and the member
    contexts only ever add ``execute`` time (their shared artifacts are
    already in place).
    """

    def __init__(self, stacked: StackedGroup, stats: Optional[ExecutionStats] = None) -> None:
        self._stacked = stacked
        self._stats = stats
        self._contexts: Optional[List[InstanceContext]] = None

    def _timed(self, stage: str, start: float) -> None:
        if self._stats is not None:
            self._stats.add_stage(stage, time.perf_counter() - start)

    def _prepare(self) -> List[InstanceContext]:
        if self._contexts is not None:
            return self._contexts
        groups = self._stacked.groups
        rep = groups[0].tasks[0]

        start = time.perf_counter()
        spec = rep.graph.key_dict()
        if spec["family"] == "random":
            from repro.graphs.generators import random_connected_graph_batch

            graphs = random_connected_graph_batch(
                rep.n,
                spec["density"],
                seeds=[group.tasks[0].seed for group in groups],
            )
        else:
            graphs = [group.tasks[0].build_graph() for group in groups]
        self._timed("graph", start)

        root = rep.root % graphs[0].n
        scheme_pairs: List[Tuple[str, str]] = []
        for task in groups[0].tasks:
            if task.kind == "scheme" and (task.problem, task.target) not in scheme_pairs:
                scheme_pairs.append((task.problem, task.target))

        traces = None
        if scheme_pairs:
            from repro.mst.boruvka import boruvka_trace_stacked

            start = time.perf_counter()
            traces = boruvka_trace_stacked(graphs, root=root)
            self._timed("trace", start)

        contexts: List[InstanceContext] = []
        for graph in graphs:
            context = InstanceContext(stats=self._stats)
            context._graph = graph
            contexts.append(context)

        if scheme_pairs:
            start = time.perf_counter()
            for problem, target in scheme_pairs:
                schemes = [resolve_scheme(target, problem=problem) for _ in groups]
                advices = type(schemes[0]).compute_advice_batch(
                    schemes, graphs, root=root, traces=traces
                )
                for context, scheme, advice in zip(contexts, schemes, advices):
                    context._advice[(problem, target, root)] = (scheme, advice)
            self._timed("advice", start)

        self._contexts = contexts
        return contexts

    def execute_all(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Run every task of every member group; ``(index, row)`` pairs.

        Indices are the member groups' planned positions (the miss-list
        positions assigned by :func:`plan_groups`), rows are exactly the
        per-instance rows.
        """
        contexts = self._prepare()
        rows: List[Tuple[int, Dict[str, Any]]] = []
        for group, context in zip(self._stacked.groups, contexts):
            for index, task in zip(group.indices, group.tasks):
                rows.append((index, context.execute(task)))
        return rows

"""Run manifests: the checkpoint ledger behind ``--resume``.

A manifest identifies one *run* — an ordered list of task hashes — and
records which of those tasks have completed.  The result cache is the
authority on rows (a resumed run re-reads them from there); the
manifest's job is orchestration:

* it gives a killed run a durable identity, so ``repro sweep --resume``
  / ``repro report --resume`` with the same workload find their own
  ledger and report how much of the run was already done;
* it is checkpointed **per completed group** (atomic temp-file +
  ``os.replace`` rewrite, same discipline as the JSON cache), in the
  same breath as the group's rows are committed to the store — so the
  set of checkpointed hashes is always a subset of the rows actually
  persisted, and a resumed run re-executes zero checkpointed tasks.

Layout: ``<cache-dir>/manifests/run-<id>.json`` where ``<id>`` is the
sha256 of the ordered task-hash list — the same workload always resumes
the same manifest, and different workloads can never collide::

    {
      "version": 1,
      "run_id": "<sha256 prefix>",
      "total": 96,               # cacheable tasks in the run
      "finished": false,         # every task checkpointed?
      "completed": ["<hash>", ...]
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, List, Optional, Set

__all__ = ["MANIFEST_VERSION", "RunManifest", "atomic_write_json", "run_id_for"]

MANIFEST_VERSION = 1


def atomic_write_json(path: Path, payload: Any) -> None:
    """Atomically (re)write one JSON checkpoint file.

    Temp file + ``os.replace`` in the target directory: a reader can
    observe the old checkpoint or the new one, never a torn write.  This
    is the single checkpoint discipline of the runner *and* the sweep
    service — run manifests, queue job records and service artifacts
    metadata all go through here, so "how job state reaches disk" has
    exactly one implementation to audit.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    os.replace(tmp, path)


def run_id_for(keys: Iterable[Optional[str]]) -> str:
    """The stable identity of a run: sha256 over its ordered task hashes.

    Uncacheable tasks (hash ``None``) participate as placeholders so two
    runs differing only in uncacheable work still get distinct ledgers.
    """
    blob = json.dumps(list(keys), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class RunManifest:
    """The on-disk completion ledger of one run."""

    def __init__(self, path: Path, run_id: str, total: int, completed: Set[str]) -> None:
        self.path = path
        self.run_id = run_id
        self.total = total
        self.completed = completed
        #: completed hashes found on disk when the manifest was opened —
        #: what a resumed run inherited, for progress reporting
        self.resumed = len(completed)

    @classmethod
    def open(cls, directory: Path, keys: List[Optional[str]]) -> "RunManifest":
        """Load the run's manifest from ``directory``, or start a fresh one.

        ``keys`` is the run's ordered task-hash list (``None`` for
        uncacheable tasks, which are never checkpointed).  A readable
        manifest with the matching ``run_id`` resumes; anything corrupt
        or mismatched is ignored and rewritten on the first checkpoint.
        """
        run_id = run_id_for(keys)
        path = Path(directory) / "manifests" / f"run-{run_id}.json"
        known = {key for key in keys if key is not None}
        # unique hashes: a grid may name the same task twice (e.g. a
        # trade-off point that also sits on a sweep curve), and the
        # completed set can only ever hold each hash once
        total = len(known)
        completed: Set[str] = set()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if (
                isinstance(payload, dict)
                and payload.get("version") == MANIFEST_VERSION
                and payload.get("run_id") == run_id
            ):
                # only hashes the run actually contains: a doctored or
                # stale ledger cannot inflate the completed set
                completed = set(payload.get("completed", ())) & known
        except (OSError, ValueError):
            pass
        return cls(path, run_id, total, completed)

    @property
    def finished(self) -> bool:
        return len(self.completed) >= self.total

    def is_done(self, key: Optional[str]) -> bool:
        return key is not None and key in self.completed

    def mark_done(self, keys: Iterable[Optional[str]]) -> None:
        """Record completed tasks and checkpoint the ledger atomically."""
        added = False
        for key in keys:
            if key is not None and key not in self.completed:
                self.completed.add(key)
                added = True
        if added:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Atomically rewrite the ledger (temp file + ``os.replace``)."""
        atomic_write_json(
            self.path,
            {
                "version": MANIFEST_VERSION,
                "run_id": self.run_id,
                "total": self.total,
                "finished": self.finished,
                "completed": sorted(self.completed),
            },
        )

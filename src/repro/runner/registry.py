"""Names for schemes, baselines and graph families.

The runner describes work declaratively — ``("theorem3", GraphSpec
("random", 0.05), n, seed)`` — so that a task can be pickled to a worker
process and hashed into a stable cache key.  This module owns the name
tables that resolution goes through; the CLI re-exports them so
``--scheme`` choices and runner targets can never drift apart.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

from repro.core.oracle import AdvisingScheme
from repro.core.scheme_average import AverageConstantScheme
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.distributed.base import DistributedMSTBaseline
from repro.distributed.boruvka_sync import SynchronizedBoruvkaMST
from repro.distributed.full_info import FullInformationMST
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    power_law_graph,
    random_connected_graph,
    random_geometric_graph,
    torus_graph,
)
from repro.graphs.lowerbound_family import build_gn
from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = [
    "SCHEMES",
    "BASELINES",
    "BACKENDS",
    "GRAPH_FAMILIES",
    "resolve_scheme",
    "resolve_baseline",
    "build_graph",
]

#: execution backends a scheme task may request (see
#: :func:`repro.core.oracle.run_scheme`); baselines always use the engine
from repro.simulator.backends import BACKENDS  # noqa: E402  (re-export)

#: scheme name -> factory
SCHEMES: Dict[str, Callable[[], AdvisingScheme]] = {
    "trivial": TrivialRankScheme,
    "theorem2": AverageConstantScheme,
    "theorem3": ShortAdviceScheme,
    "theorem3-level": LevelAdviceScheme,
}

#: baseline name -> factory
BASELINES: Dict[str, Callable[[], DistributedMSTBaseline]] = {
    "ghs": SynchronizedBoruvkaMST,
    "full-info": FullInformationMST,
}

#: graph family names understood by :func:`build_graph` (the CLI's
#: ``--graph`` choices and the report specs' ``graph.family`` values)
GRAPH_FAMILIES = (
    "random",
    "complete",
    "cycle",
    "grid",
    "torus",
    "hypercube",
    "geometric",
    "powerlaw",
    "gn",
)


def resolve_scheme(scheme: Union[str, AdvisingScheme]) -> AdvisingScheme:
    """Turn a registry name into a scheme instance (instances pass through)."""
    if isinstance(scheme, str):
        try:
            return SCHEMES[scheme]()
        except KeyError:
            raise ValueError(
                f"unknown scheme {scheme!r}; known: {', '.join(sorted(SCHEMES))}"
            ) from None
    return scheme


def resolve_baseline(baseline: Union[str, DistributedMSTBaseline]) -> DistributedMSTBaseline:
    """Turn a registry name into a baseline instance (instances pass through)."""
    if isinstance(baseline, str):
        try:
            return BASELINES[baseline]()
        except KeyError:
            raise ValueError(
                f"unknown baseline {baseline!r}; known: {', '.join(sorted(BASELINES))}"
            ) from None
    return baseline


def build_graph(family: str, n: int, seed: int, density: float = 0.05) -> PortNumberedGraph:
    """Build one instance of a named graph family (shared with the CLI).

    ``n`` is a *requested* size; structured families round it to the
    nearest realisable shape (``grid``/``torus`` to a square side,
    ``hypercube`` to a power of two, ``gn`` to an even split across its
    two cliques), so always read the actual size off the returned
    instance.  ``density`` only shapes the ``random`` family.

    >>> build_graph("hypercube", 30, seed=0).n  # rounded to 2^5
    32
    >>> build_graph("torus", 16, seed=0).n
    16
    """
    if family == "random":
        return random_connected_graph(n, min(1.0, density), seed=seed)
    if family == "complete":
        return complete_graph(n, seed=seed)
    if family == "cycle":
        return cycle_graph(n, seed=seed)
    if family == "grid":
        side = max(2, int(math.isqrt(n)))
        return grid_graph(side, side, seed=seed)
    if family == "torus":
        side = max(3, int(math.isqrt(n)))
        return torus_graph(side, side, seed=seed)
    if family == "hypercube":
        dim = max(1, round(math.log2(max(n, 2))))
        return hypercube_graph(dim, seed=seed)
    if family == "geometric":
        return random_geometric_graph(n, seed=seed)
    if family == "powerlaw":
        return power_law_graph(max(n, 2), attach=2, seed=seed)
    if family == "gn":
        return build_gn(max(2, n // 2), seed=seed).graph
    raise ValueError(f"unknown graph kind {family!r}; known: {', '.join(GRAPH_FAMILIES)}")

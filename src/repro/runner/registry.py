"""Names for problems, schemes, baselines and graph families.

The runner describes work declaratively — ``("theorem3", GraphSpec
("random", 0.05), n, seed)`` — so that a task can be pickled to a worker
process and hashed into a stable cache key.  Resolution goes through the
problem registry of :mod:`repro.core.problem`: a target is either a
*qualified* name (``"mst/theorem3"``, ``"leader/flag"``) or a bare name
resolved against a problem (the default problem ``mst`` when none is
given), so every pre-existing name keeps meaning what it meant.  The CLI
re-exports the tables so ``--scheme``/``--problem`` choices and runner
targets can never drift apart.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Union

from repro.core.oracle import AdvisingScheme
from repro.core.problem import (
    DEFAULT_PROBLEM,
    get_problem,
    problem_names,
    qualified_names,
    split_target,
)
from repro.distributed.base import DistributedBaseline, DistributedMSTBaseline
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    power_law_graph,
    random_connected_graph,
    random_geometric_graph,
    torus_graph,
)
from repro.graphs.lowerbound_family import build_gn
from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = [
    "SCHEMES",
    "BASELINES",
    "BACKENDS",
    "GRAPH_FAMILIES",
    "problem_names",
    "qualified_names",
    "resolve_target",
    "resolve_scheme",
    "resolve_baseline",
    "build_graph",
]

#: execution backends a scheme task may request (see
#: :func:`repro.core.oracle.run_scheme`); baselines always use the engine
from repro.simulator.backends import BACKENDS  # noqa: E402  (re-export)

#: bare scheme name -> factory, for the default (MST) problem — the
#: historical tables, now views of the problem registry
SCHEMES: Dict[str, Callable[[], AdvisingScheme]] = dict(get_problem(DEFAULT_PROBLEM).schemes)

#: bare baseline name -> factory, for the default (MST) problem
BASELINES: Dict[str, Callable[[], DistributedBaseline]] = dict(
    get_problem(DEFAULT_PROBLEM).baselines
)

#: graph family names understood by :func:`build_graph` (the CLI's
#: ``--graph`` choices and the report specs' ``graph.family`` values)
GRAPH_FAMILIES = (
    "random",
    "complete",
    "cycle",
    "grid",
    "torus",
    "hypercube",
    "geometric",
    "powerlaw",
    "gn",
)


def resolve_target(
    kind: str,
    target: Union[str, AdvisingScheme, DistributedBaseline],
    problem: Optional[str] = None,
):
    """Turn a registry name into a scheme or baseline instance.

    ``kind`` is ``"scheme"`` or ``"baseline"``.  Instances pass through
    untouched.  Strings may be qualified (``"leader/flag"``) or bare
    (``"theorem3"``); bare names resolve against ``problem`` (default:
    ``mst``).  A qualifier that contradicts an explicit ``problem`` is an
    error, and unknown names are reported against the full
    problem-qualified vocabulary.

    >>> resolve_target("scheme", "theorem3").name
    'theorem3-main'
    >>> resolve_target("scheme", "leader/flag").name
    'leader-flag'
    >>> resolve_target("baseline", "flood", problem="wakeup").name
    'flood'
    """
    if kind not in ("scheme", "baseline"):
        raise ValueError(f"kind must be 'scheme' or 'baseline', got {kind!r}")
    if not isinstance(target, str):
        return target
    qualifier, bare = split_target(target)
    if qualifier is not None and problem is not None and qualifier != problem:
        raise ValueError(
            f"target {target!r} is qualified for problem {qualifier!r} "
            f"but problem {problem!r} was requested"
        )
    problem_obj = get_problem(qualifier or problem or DEFAULT_PROBLEM)
    table = problem_obj.schemes if kind == "scheme" else problem_obj.baselines
    try:
        return table[bare]()
    except KeyError:
        raise ValueError(
            f"unknown {kind} {target!r}; known: {', '.join(qualified_names(kind))}"
        ) from None


def resolve_scheme(
    scheme: Union[str, AdvisingScheme], problem: Optional[str] = None
) -> AdvisingScheme:
    """Turn a registry name into a scheme instance (instances pass through)."""
    return resolve_target("scheme", scheme, problem=problem)


def resolve_baseline(
    baseline: Union[str, DistributedMSTBaseline], problem: Optional[str] = None
) -> DistributedBaseline:
    """Turn a registry name into a baseline instance (instances pass through)."""
    return resolve_target("baseline", baseline, problem=problem)


def build_graph(family: str, n: int, seed: int, density: float = 0.05) -> PortNumberedGraph:
    """Build one instance of a named graph family (shared with the CLI).

    ``n`` is a *requested* size; structured families round it to the
    nearest realisable shape (``grid``/``torus`` to a square side,
    ``hypercube`` to a power of two, ``gn`` to an even split across its
    two cliques), so always read the actual size off the returned
    instance.  ``density`` only shapes the ``random`` family.

    >>> build_graph("hypercube", 30, seed=0).n  # rounded to 2^5
    32
    >>> build_graph("torus", 16, seed=0).n
    16
    """
    if family == "random":
        return random_connected_graph(n, min(1.0, density), seed=seed)
    if family == "complete":
        return complete_graph(n, seed=seed)
    if family == "cycle":
        return cycle_graph(n, seed=seed)
    if family == "grid":
        side = max(2, int(math.isqrt(n)))
        return grid_graph(side, side, seed=seed)
    if family == "torus":
        side = max(3, int(math.isqrt(n)))
        return torus_graph(side, side, seed=seed)
    if family == "hypercube":
        dim = max(1, round(math.log2(max(n, 2))))
        return hypercube_graph(dim, seed=seed)
    if family == "geometric":
        return random_geometric_graph(n, seed=seed)
    if family == "powerlaw":
        return power_law_graph(max(n, 2), attach=2, seed=seed)
    if family == "gn":
        return build_gn(max(2, n // 2), seed=seed).graph
    raise ValueError(f"unknown graph kind {family!r}; known: {', '.join(GRAPH_FAMILIES)}")

"""Process-parallel experiment runner.

Reproducing the paper's trade-off curves takes thousands of simulated
runs across sizes, seeds, schemes and graph families.  This subpackage
amortises that workload:

* :mod:`~repro.runner.registry` — names for every scheme, baseline and
  graph family, so a unit of work can be described declaratively;
* :mod:`~repro.runner.tasks` — :class:`GraphSpec` (a picklable,
  hashable graph factory) and :class:`SweepTask` (one ``(target, graph,
  n, seed)`` work unit with a stable content hash);
* :mod:`~repro.runner.cache` — the ``json`` cache backend: one result
  file per task hash;
* :mod:`~repro.runner.store` — the default ``sqlite`` backend: a
  sharded, WAL-mode SQLite store with batched transactional upserts,
  plus ``stats`` / ``gc`` / JSON-cache migration maintenance;
* :mod:`~repro.runner.manifest` — run manifests, the per-group
  checkpoint ledger behind ``--resume``;
* :mod:`~repro.runner.progress` — live done/total + ETA reporting on
  stderr;
* :mod:`~repro.runner.plan` — the execution planner: cache misses are
  grouped by shared graph instance (:func:`plan_groups`), and each
  group runs against one :class:`InstanceContext` that builds the
  graph, Borůvka trace, rooted tree and per-scheme advice exactly once;
* :mod:`~repro.runner.runner` — :func:`run_tasks`, which executes a
  task list serially or over a ``multiprocessing`` pool (``jobs=N``),
  shipping whole instance groups to workers, with deterministic,
  task-order result merging.

``analysis/sweep.py``, the ``repro.report`` pipeline, the ``sweep
--jobs`` / ``bench`` CLI commands and the ``benchmarks/`` suite all
route through :func:`run_tasks`, so the serial, parallel, grouped and
ungrouped paths produce byte-identical aggregated results.
"""

from repro.runner.cache import ResultCache
from repro.runner.manifest import RunManifest
from repro.runner.plan import ExecutionStats, InstanceContext, TaskGroup, plan_groups
from repro.runner.progress import ProgressReporter
from repro.runner.registry import (
    BACKENDS,
    BASELINES,
    GRAPH_FAMILIES,
    SCHEMES,
    build_graph,
    problem_names,
    qualified_names,
    resolve_baseline,
    resolve_scheme,
    resolve_target,
)
from repro.runner.runner import GROUPING_MODES, execute_task, run_tasks
from repro.runner.store import (
    CACHE_BACKENDS,
    DEFAULT_CACHE_BACKEND,
    DEFAULT_SHARDS,
    STORE_SCHEMA_VERSION,
    SQLiteResultStore,
    open_result_store,
)
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = [
    "BACKENDS",
    "BASELINES",
    "CACHE_BACKENDS",
    "DEFAULT_CACHE_BACKEND",
    "DEFAULT_SHARDS",
    "GRAPH_FAMILIES",
    "GROUPING_MODES",
    "SCHEMES",
    "STORE_SCHEMA_VERSION",
    "ExecutionStats",
    "GraphSpec",
    "InstanceContext",
    "ProgressReporter",
    "ResultCache",
    "RunManifest",
    "SQLiteResultStore",
    "SweepTask",
    "TaskGroup",
    "build_graph",
    "execute_task",
    "open_result_store",
    "plan_groups",
    "problem_names",
    "qualified_names",
    "resolve_baseline",
    "resolve_scheme",
    "resolve_target",
    "run_tasks",
]

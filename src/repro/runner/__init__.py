"""Process-parallel experiment runner.

Reproducing the paper's trade-off curves takes thousands of simulated
runs across sizes, seeds, schemes and graph families.  This subpackage
amortises that workload:

* :mod:`~repro.runner.registry` — names for every scheme, baseline and
  graph family, so a unit of work can be described declaratively;
* :mod:`~repro.runner.tasks` — :class:`GraphSpec` (a picklable,
  hashable graph factory) and :class:`SweepTask` (one ``(target, graph,
  n, seed)`` work unit with a stable content hash);
* :mod:`~repro.runner.cache` — an on-disk JSON result cache keyed by
  the task hash;
* :mod:`~repro.runner.runner` — :func:`run_tasks`, which executes a
  task list serially or over a ``multiprocessing`` pool (``jobs=N``)
  with chunking and deterministic, task-order result merging.

``analysis/sweep.py``, the ``sweep --jobs`` / ``bench`` CLI commands and
the ``benchmarks/`` suite all route through :func:`run_tasks`, so the
serial and parallel paths produce byte-identical aggregated results.
"""

from repro.runner.cache import ResultCache
from repro.runner.registry import (
    BACKENDS,
    BASELINES,
    GRAPH_FAMILIES,
    SCHEMES,
    build_graph,
    resolve_baseline,
    resolve_scheme,
)
from repro.runner.runner import execute_task, run_tasks
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = [
    "BACKENDS",
    "BASELINES",
    "GRAPH_FAMILIES",
    "SCHEMES",
    "GraphSpec",
    "ResultCache",
    "SweepTask",
    "build_graph",
    "execute_task",
    "resolve_baseline",
    "resolve_scheme",
    "run_tasks",
]

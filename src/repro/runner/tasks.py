"""Work units of the experiment runner.

A :class:`SweepTask` is one simulated run: an advising scheme or
baseline, a graph instance description, a size and a seed.  Tasks are
plain frozen dataclasses so they can be

* pickled to a ``multiprocessing`` worker,
* hashed into a stable cache key (:meth:`SweepTask.task_hash`), and
* compared for equality in tests.

:class:`GraphSpec` is the declarative counterpart of the ad-hoc
``factory(n, seed)`` closures the analysis layer historically used: it
*is* callable with ``(n, seed)`` (so it is a drop-in ``GraphFactory``),
but being a frozen dataclass of primitives it also pickles and hashes.
Tasks built from registry names and ``GraphSpec`` objects are cacheable;
tasks carrying arbitrary instances or closures still run (serially, or
in parallel when picklable) but bypass the on-disk cache because their
content has no stable identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

from repro.core.oracle import AdvisingScheme
from repro.core.problem import DEFAULT_PROBLEM, split_target
from repro.distributed.base import DistributedMSTBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.runner.registry import build_graph
from repro.simulator.adversary import FaultSpec
from repro.simulator.backends import BACKENDS

__all__ = [
    "GraphSpec",
    "SweepTask",
    "TASK_FORMAT_VERSION",
    "backend_version",
    "task_from_wire",
    "task_to_wire",
]

#: bump when the result-row or hashing format changes; stored inside the
#: hash input so stale cache entries can never be mistaken for fresh ones
#: (4: the key grew the fault axis (adversarial execution);
#:  3: the key and the result rows grew the problem axis;
#:  2: the key grew the execution backend and its semantic version)
TASK_FORMAT_VERSION = 4


def backend_version(backend: str) -> int:
    """Semantic version of an execution backend, mixed into cache keys.

    A cached row must identify *how* it was computed, not just on what:
    an engine row and an analytic row for the same workload are only
    interchangeable because the equivalence suite says so today, and a
    future change to either implementation must invalidate only its own
    rows.  Imported lazily to keep ``repro.runner`` importable without
    the simulator.
    """
    if backend == "engine":
        from repro.simulator.engine import ENGINE_VERSION

        return ENGINE_VERSION
    if backend == "analytic":
        from repro.simulator.analytic import ANALYTIC_VERSION

        return ANALYTIC_VERSION
    raise ValueError(f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")


def _library_version() -> str:
    """The installed ``repro`` version, mixed into every cache key.

    A cached row is only as fresh as the code that produced it: a new
    release may change simulation semantics (engine accounting, scheme
    decoders, graph generators), so keys from older versions must never
    be served.  Imported lazily to avoid a cycle with ``repro.__init__``.
    """
    import repro

    return getattr(repro, "__version__", "0")


#: small per-process memo of built instances: a sweep runs several
#: schemes (and both backends) over the *same* ``(family, n, seed)``
#: instances back to back, and rebuilding the graph — plus its cached
#: derivations (reference MST, Borůvka trace, adjacency tables) — per
#: scheme was the single largest shared cost per point.  Instances are
#: immutable, so sharing the object across tasks is observable only as
#: speed.  Bounded FIFO to keep worker memory flat.
_GRAPH_MEMO: Dict[Any, PortNumberedGraph] = {}
_GRAPH_MEMO_LIMIT = 16


def clear_graph_memo() -> None:
    """Drop all memoised instances (benchmarks call this between timed
    passes so every backend pays the cold construction cost)."""
    _GRAPH_MEMO.clear()


@dataclass(frozen=True)
class GraphSpec:
    """A picklable, hashable description of one graph family workload.

    Families come from :data:`repro.runner.registry.GRAPH_FAMILIES`; a
    spec is callable like the ``factory(n, seed)`` closures it replaced:

    >>> spec = GraphSpec("hypercube")
    >>> spec(16, seed=0).n  # builds the instance (memoised per process)
    16
    >>> GraphSpec("cycle").key_dict()  # density only shapes "random"
    {'family': 'cycle', 'density': None}
    """

    #: family name understood by :func:`repro.runner.registry.build_graph`
    family: str = "random"
    #: extra-edge probability (only meaningful for ``random``)
    density: float = 0.05

    def build(self, n: int, seed: int) -> PortNumberedGraph:
        """Materialise the instance of size ``n`` for ``seed`` (memoised)."""
        key = (self.family, self.density if self.family == "random" else None, n, seed)
        graph = _GRAPH_MEMO.get(key)
        if graph is None:
            graph = build_graph(self.family, n, seed, self.density)
            if len(_GRAPH_MEMO) >= _GRAPH_MEMO_LIMIT:
                _GRAPH_MEMO.pop(next(iter(_GRAPH_MEMO)))
            _GRAPH_MEMO[key] = graph
        return graph

    # GraphFactory-compatible: a GraphSpec can be passed anywhere a
    # ``factory(n, seed)`` callable was expected
    __call__ = build

    def key_dict(self) -> Dict[str, Any]:
        """Canonical content for hashing.

        ``density`` only shapes the ``random`` family (see
        :func:`~repro.runner.registry.build_graph`), so it is normalised
        away for every other family — otherwise identical workloads
        would hash to different cache keys.
        """
        return {
            "family": self.family,
            # mirror build_graph's clamp so equivalent workloads share a key
            "density": min(1.0, self.density) if self.family == "random" else None,
        }


@dataclass(frozen=True)
class SweepTask:
    """One simulated run inside a sweep.

    Tasks built from registry names and a :class:`GraphSpec` are
    *cacheable*: their content hashes to a stable sha256 key that
    includes the library version and the execution backend's semantic
    version, so stale or cross-backend rows are never served.

    Targets live on a *problem* axis: bare names resolve against the
    ``problem`` field (default ``mst``, so every historical task keeps
    its meaning) and qualified names (``"leader/flag"``) normalise into
    ``(problem, bare_name)`` at construction.

    >>> task = SweepTask("scheme", "theorem3", GraphSpec("random", 0.05), n=64, seed=0)
    >>> task.cacheable
    True
    >>> task.task_hash() == task.task_hash()  # content-addressed, stable
    True
    >>> engine_key = task.task_hash()
    >>> from dataclasses import replace
    >>> replace(task, backend="analytic").task_hash() == engine_key
    False
    >>> from repro.simulator.adversary import FaultSpec
    >>> replace(task, fault=FaultSpec(delta=2)).task_hash() == engine_key
    False
    >>> replace(task, fault=FaultSpec()).fault is None  # null fault normalised
    True
    >>> replace(task, fault=FaultSpec()).task_hash() == engine_key
    True
    >>> qualified = SweepTask("scheme", "leader/flag", GraphSpec(), 16, 0)
    >>> qualified.problem, qualified.target  # qualifier normalised away
    ('leader', 'flag')
    >>> qualified == SweepTask("scheme", "flag", GraphSpec(), 16, 0, problem="leader")
    True
    >>> SweepTask("scheme", "leader/flag", GraphSpec(), 16, 0, problem="wakeup")
    Traceback (most recent call last):
        ...
    ValueError: target 'leader/flag' contradicts problem 'wakeup'
    >>> SweepTask("baseline", "ghs", GraphSpec(), 16, 0, backend="analytic")
    Traceback (most recent call last):
        ...
    ValueError: baselines have no analytic model; use backend='engine'
    """

    #: ``"scheme"`` or ``"baseline"``
    kind: str
    #: registry name (cacheable) or a picklable instance (not cacheable)
    target: Union[str, AdvisingScheme, DistributedMSTBaseline]
    #: graph description: a :class:`GraphSpec` (cacheable) or any
    #: ``factory(n, seed)`` callable (not cacheable)
    graph: Union[GraphSpec, Callable[[int, int], PortNumberedGraph]]
    n: int
    seed: int
    root: int = 0
    #: execution backend: ``"engine"`` simulates the decoder round by
    #: round, ``"analytic"`` computes the metrics from the Borůvka trace
    backend: str = "engine"
    #: the problem the target solves; bare string targets resolve against
    #: it, instance targets override it with their own declaration
    problem: str = DEFAULT_PROBLEM
    #: adversarial execution model (``None`` = the synchronous engine);
    #: a *null* spec is normalised to ``None`` so the zero point of a
    #: robustness grid hashes — and caches — like a fault-free task
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in ("scheme", "baseline"):
            raise ValueError(f"kind must be 'scheme' or 'baseline', got {self.kind!r}")
        if isinstance(self.target, str):
            qualifier, bare = split_target(self.target)
            if qualifier is not None:
                if self.problem not in (DEFAULT_PROBLEM, qualifier):
                    raise ValueError(
                        f"target {self.target!r} contradicts problem {self.problem!r}"
                    )
                object.__setattr__(self, "problem", qualifier)
                object.__setattr__(self, "target", bare)
        else:
            # an instance knows its own problem; keep the task's axis honest
            object.__setattr__(
                self, "problem", getattr(self.target, "problem", DEFAULT_PROBLEM)
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(BACKENDS)}, got {self.backend!r}"
            )
        if self.kind == "baseline" and self.backend != "engine":
            raise ValueError("baselines have no analytic model; use backend='engine'")
        if self.fault is not None and self.fault.is_null:
            object.__setattr__(self, "fault", None)
        if self.fault is not None:
            if self.backend != "engine":
                raise ValueError("adversarial execution requires backend='engine'")
            if self.fault.churn and self.problem != "mst":
                raise ValueError("edge-weight churn is only defined for the MST problem")

    @property
    def cacheable(self) -> bool:
        """Whether the task's content has a stable identity on disk."""
        return isinstance(self.target, str) and isinstance(self.graph, GraphSpec)

    def key_dict(self) -> Optional[Dict[str, Any]]:
        """Canonical JSON-able content, or ``None`` when not cacheable."""
        if not self.cacheable:
            return None
        return {
            "format": TASK_FORMAT_VERSION,
            "lib": _library_version(),
            "kind": self.kind,
            "problem": self.problem,
            "target": self.target,
            "graph": self.graph.key_dict(),
            "n": self.n,
            "seed": self.seed,
            "root": self.root,
            # backend + its semantic version: analytic and engine rows can
            # never be served for each other, and bumping either backend's
            # version invalidates exactly its own cached rows
            "backend": self.backend,
            "backend_version": backend_version(self.backend),
            # the fault axis; ``None`` for every fault-free task (including
            # normalised null specs), so historical workloads keep one key
            # per backend and ADVERSARY_VERSION bumps touch only faulty rows
            "fault": self.fault.key_dict() if self.fault is not None else None,
        }

    def task_hash(self) -> Optional[str]:
        """Stable sha256 cache key, or ``None`` when not cacheable."""
        content = self.key_dict()
        if content is None:
            return None
        blob = json.dumps(content, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build_graph(self) -> PortNumberedGraph:
        """Materialise this task's graph instance."""
        return self.graph(self.n, self.seed)


def task_to_wire(task: SweepTask) -> Dict[str, Any]:
    """A JSON-able description of one *cacheable* task.

    The sweep service ships task groups through its lease queue as plain
    JSON, so only tasks with a declarative identity — registry-name
    target plus :class:`GraphSpec` graph — can travel; ad-hoc scheme
    instances and factory closures have no wire form (they cannot be
    cached either, for the same reason).

    >>> task = SweepTask("scheme", "theorem3", GraphSpec("random", 0.1), 16, 0)
    >>> task_from_wire(task_to_wire(task)) == task
    True
    """
    if not task.cacheable:
        raise ValueError(
            "only cacheable tasks (registry-name target + GraphSpec graph) "
            "have a wire form"
        )
    return {
        "kind": task.kind,
        "problem": task.problem,
        "target": task.target,
        "family": task.graph.family,
        "density": task.graph.density,
        "n": task.n,
        "seed": task.seed,
        "root": task.root,
        "backend": task.backend,
        "fault": (
            {
                "delta": task.fault.delta,
                "crash_rate": task.fault.crash_rate,
                "recovery": task.fault.recovery,
                "churn": task.fault.churn,
            }
            if task.fault is not None
            else None
        ),
    }


def task_from_wire(payload: Dict[str, Any]) -> SweepTask:
    """Rebuild a :class:`SweepTask` from its :func:`task_to_wire` form.

    Validation is the constructors' own — a malformed payload raises the
    same :class:`ValueError`/:class:`TypeError` a direct construction
    would, which is what lets the sweep service treat undecodable queue
    items as failed (and eventually quarantined) work instead of crashing
    the worker.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"wire task must be a dict, got {type(payload).__name__}")
    fault = payload.get("fault")
    return SweepTask(
        kind=payload["kind"],
        target=payload["target"],
        graph=GraphSpec(payload["family"], payload["density"]),
        n=payload["n"],
        seed=payload["seed"],
        root=payload.get("root", 0),
        backend=payload.get("backend", "engine"),
        problem=payload.get("problem", DEFAULT_PROBLEM),
        fault=FaultSpec(**fault) if fault is not None else None,
    )

"""repro — reproduction of "Local MST computation with short advice" (SPAA 2007).

The library implements the paper's advising schemes for distributed
Minimum Spanning Tree computation together with every substrate they
need: a port-numbered weighted-graph model, sequential MST algorithms
and the Borůvka fragment machinery, a synchronous LOCAL/CONGEST
message-passing simulator, and no-advice distributed MST baselines.
The advising framework itself is problem-agnostic: :mod:`repro.problems`
hosts further instantiations (leader election, wake-up/broadcast,
spanning-tree verification) on the same engine and runner.

Quickstart
----------

>>> from repro import random_connected_graph, ShortAdviceScheme, run_scheme
>>> graph = random_connected_graph(64, 0.05, seed=1)
>>> report = run_scheme(ShortAdviceScheme(), graph, root=0)
>>> report.correct
True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-theorem reproduction results.
"""

from repro.graphs import (
    PortNumberedGraph,
    LocalView,
    build_gn,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    fooling_family,
    grid_graph,
    hypercube_graph,
    path_graph,
    power_law_graph,
    random_connected_graph,
    random_geometric_graph,
    random_spanning_tree_graph,
    star_graph,
    torus_graph,
)
from repro.mst import (
    boruvka_mst,
    boruvka_trace,
    build_rooted_tree,
    kruskal_mst,
    prim_mst,
)
from repro.core import (
    AdviceAssignment,
    AdvisingScheme,
    AverageConstantScheme,
    BitString,
    LevelAdviceScheme,
    Problem,
    SchemeReport,
    ShortAdviceScheme,
    TrivialRankScheme,
    check_outputs,
    get_problem,
    problem_names,
    register_problem,
    run_scheme,
)
from repro.simulator import RunMetrics, run_sync
from repro.runner import GraphSpec, SweepTask, run_tasks

__version__ = "1.7.0"

__all__ = [
    "__version__",
    # graphs
    "PortNumberedGraph",
    "LocalView",
    "build_gn",
    "caterpillar_graph",
    "complete_graph",
    "cycle_graph",
    "fooling_family",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "power_law_graph",
    "random_connected_graph",
    "random_geometric_graph",
    "random_spanning_tree_graph",
    "star_graph",
    "torus_graph",
    # mst
    "boruvka_mst",
    "boruvka_trace",
    "build_rooted_tree",
    "kruskal_mst",
    "prim_mst",
    # core
    "AdviceAssignment",
    "AdvisingScheme",
    "AverageConstantScheme",
    "BitString",
    "LevelAdviceScheme",
    "Problem",
    "SchemeReport",
    "ShortAdviceScheme",
    "TrivialRankScheme",
    "check_outputs",
    "get_problem",
    "problem_names",
    "register_problem",
    "run_scheme",
    # simulator
    "RunMetrics",
    "run_sync",
    # runner
    "GraphSpec",
    "SweepTask",
    "run_tasks",
]

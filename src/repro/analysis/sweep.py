"""Parameter sweeps over instance sizes.

A sweep runs one advising scheme (or no-advice baseline) on a family of
instances of growing size and collects, per size, the quantities the
paper's theorems bound: maximum / average advice bits, rounds, and the
per-edge message size.  Multiple seeds per size are aggregated by mean
(for averages) and maximum (for worst-case quantities), which is the
conservative choice when checking upper bounds.

Execution routes through :mod:`repro.runner`: every ``(size, seed)``
pair becomes one :class:`~repro.runner.tasks.SweepTask`, so a sweep can
run over a process pool (``jobs=N``) and/or against an on-disk result
cache (``cache_dir=...``).  Workers return raw per-run rows and all
aggregation happens here, in task order — the serial and parallel paths
therefore produce byte-identical results.

Schemes and baselines may be passed as instances (as before) or as
registry names (``"theorem3"``, ``"ghs"``, ...); only name +
:class:`~repro.runner.tasks.GraphSpec` workloads are cacheable, because
ad-hoc instances and closures have no stable content hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.core.oracle import AdvisingScheme
from repro.distributed.base import DistributedMSTBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.runner.registry import resolve_baseline, resolve_scheme
from repro.runner.runner import run_tasks
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = [
    "GraphFactory",
    "SweepResult",
    "default_graph_factory",
    "run_scheme_sweep",
    "run_baseline_sweep",
]

#: ``factory(n, seed) -> PortNumberedGraph``
GraphFactory = Callable[[int, int], PortNumberedGraph]


def default_graph_factory(extra_edge_prob: float = 0.05) -> GraphSpec:
    """The default workload: random connected graphs with the given density.

    Returns a :class:`~repro.runner.tasks.GraphSpec` — callable like the
    closure it used to be, but picklable (usable with ``jobs > 1``) and
    hashable (usable with the result cache).
    """
    return GraphSpec("random", extra_edge_prob)


@dataclass
class SweepResult:
    """Rows of one sweep (one row per instance size)."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def series(self, column: str) -> List[Any]:
        """The values of one column, in row order."""
        return [row[column] for row in self.rows]

    def to_text(self, columns: Optional[Sequence[str]] = None) -> str:
        """Aligned text rendering of the sweep."""
        return format_table(self.rows, columns=columns, title=self.name)


def run_scheme_sweep(
    scheme: Union[str, AdvisingScheme],
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1, 2),
    root: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend: str = "engine",
) -> SweepResult:
    """Run ``scheme`` on every size in ``sizes`` and aggregate per size.

    ``backend="analytic"`` computes every point from the Borůvka trace
    instead of simulating the decoder (same metrics, measurably faster —
    see :mod:`repro.simulator.analytic`); backends hash into distinct
    cache keys, so an engine cache is never served to an analytic sweep.
    """
    factory = graph_factory if graph_factory is not None else default_graph_factory()
    scheme_obj = resolve_scheme(scheme)
    tasks = [
        SweepTask(
            kind="scheme",
            target=scheme,
            graph=factory,
            n=n,
            seed=seed,
            root=root,
            backend=backend,
        )
        for n in sizes
        for seed in seeds
    ]
    raw = run_tasks(tasks, jobs=jobs, cache_dir=cache_dir)

    result = SweepResult(name=scheme_obj.name)
    per_size = len(seeds)
    for index, n in enumerate(sizes):
        group = raw[index * per_size : (index + 1) * per_size]
        max_advice = 0
        avg_advice = 0.0
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        for row in group:
            max_advice = max(max_advice, row["max_advice_bits"])
            avg_advice += row["avg_advice_bits"]
            rounds = max(rounds, row["rounds"])
            max_edge_bits = max(max_edge_bits, row["max_edge_bits"])
            all_correct = all_correct and row["correct"]
        log_n = math.log2(max(n, 2))
        result.rows.append(
            {
                "scheme": scheme_obj.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": max_advice,
                "avg_advice_bits": round(avg_advice / len(seeds), 3),
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "advice_bound": scheme_obj.advice_bound_bits(n),
                "round_bound": scheme_obj.round_bound(n),
            }
        )
    return result


def run_baseline_sweep(
    baseline: Union[str, DistributedMSTBaseline],
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Run a no-advice baseline on every size in ``sizes``."""
    factory = graph_factory if graph_factory is not None else default_graph_factory()
    baseline_obj = resolve_baseline(baseline)
    tasks = [
        SweepTask(kind="baseline", target=baseline, graph=factory, n=n, seed=seed)
        for n in sizes
        for seed in seeds
    ]
    raw = run_tasks(tasks, jobs=jobs, cache_dir=cache_dir)

    result = SweepResult(name=baseline_obj.name)
    per_size = len(seeds)
    for index, n in enumerate(sizes):
        group = raw[index * per_size : (index + 1) * per_size]
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        bound: Optional[float] = None
        for row in group:
            rounds = max(rounds, row["rounds"])
            max_edge_bits = max(max_edge_bits, row["max_edge_bits"])
            all_correct = all_correct and row["correct"]
            bound = row["round_bound"]
        log_n = math.log2(max(n, 2))
        result.rows.append(
            {
                "scheme": baseline_obj.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": 0,
                "avg_advice_bits": 0.0,
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "round_bound": bound,
            }
        )
    return result

"""Parameter sweeps over instance sizes.

A sweep runs one advising scheme (or no-advice baseline) on a family of
instances of growing size and collects, per size, the quantities the
paper's theorems bound: maximum / average advice bits, rounds, and the
per-edge message size.  Multiple seeds per size are aggregated by mean
(for averages) and maximum (for worst-case quantities), which is the
conservative choice when checking upper bounds.

Execution routes through :mod:`repro.runner`: every ``(size, seed)``
pair becomes one :class:`~repro.runner.tasks.SweepTask`, so a sweep can
run over a process pool (``jobs=N``) and/or against an on-disk result
cache (``cache_dir=...``).  Workers return raw per-run rows and all
aggregation happens here, in task order — the serial and parallel paths
therefore produce byte-identical results.

Schemes and baselines may be passed as instances (as before) or as
registry names (``"theorem3"``, ``"ghs"``, ...); only name +
:class:`~repro.runner.tasks.GraphSpec` workloads are cacheable, because
ad-hoc instances and closures have no stable content hash.  Names
resolve on the problem axis: bare names against ``problem`` (default
``mst``), qualified names (``"leader/flag"``) directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.core.oracle import AdvisingScheme
from repro.core.problem import DEFAULT_PROBLEM
from repro.distributed.base import DistributedMSTBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.runner.registry import resolve_baseline, resolve_scheme
from repro.runner.runner import run_tasks
from repro.runner.store import DEFAULT_CACHE_BACKEND
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = [
    "GraphFactory",
    "SweepResult",
    "aggregate_baseline_rows",
    "aggregate_scheme_rows",
    "default_graph_factory",
    "resolve_actual_sizes",
    "run_scheme_sweep",
    "run_baseline_sweep",
]


def resolve_actual_sizes(
    factory: "GraphFactory", sizes: Sequence[int], seed: int = 0
) -> List[int]:
    """Map requested sizes to the sizes the factory actually realises.

    Structured families round a requested ``n`` to the nearest realisable
    shape (grid/torus to squares, hypercube to powers of two, ``gn`` to
    an even clique split), and derived columns — ``log2_n``,
    ``congest_factor``, the theoretical bounds — must be computed at the
    *real* size or they quietly describe a different instance.  Builds
    one instance per size to read ``n`` off it; instances are memoised
    per process, so the sweep pays this construction anyway.
    """
    return [factory(n, seed).n for n in sizes]

#: ``factory(n, seed) -> PortNumberedGraph``
GraphFactory = Callable[[int, int], PortNumberedGraph]


def default_graph_factory(extra_edge_prob: float = 0.05) -> GraphSpec:
    """The default workload: random connected graphs with the given density.

    Returns a :class:`~repro.runner.tasks.GraphSpec` — callable like the
    closure it used to be, but picklable (usable with ``jobs > 1``) and
    hashable (usable with the result cache).
    """
    return GraphSpec("random", extra_edge_prob)


@dataclass
class SweepResult:
    """Rows of one sweep (one row per instance size)."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def series(self, column: str) -> List[Any]:
        """The values of one column, in row order."""
        return [row[column] for row in self.rows]

    def to_text(self, columns: Optional[Sequence[str]] = None) -> str:
        """Aligned text rendering of the sweep."""
        return format_table(self.rows, columns=columns, title=self.name)


def run_scheme_sweep(
    scheme: Union[str, AdvisingScheme],
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1, 2),
    root: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    backend: str = "engine",
    grouping: str = "instance",
    cache_backend: str = DEFAULT_CACHE_BACKEND,
    resume: bool = False,
    progress: bool = False,
    problem: Optional[str] = None,
) -> SweepResult:
    """Run ``scheme`` on every size in ``sizes`` and aggregate per size.

    ``backend="analytic"`` computes every point from the Borůvka trace
    instead of simulating the decoder (same metrics, measurably faster —
    see :mod:`repro.simulator.analytic`); backends hash into distinct
    cache keys, so an engine cache is never served to an analytic sweep.

    Schemes may be registry names or instances; ``jobs``/``cache_dir``
    fan the runs over worker processes and an on-disk cache without
    changing a byte of the result.  ``cache_backend`` picks the cache
    storage (sharded SQLite store by default, ``"json"`` for per-task
    files); ``resume=True`` checkpoints a run manifest so a killed sweep
    restarts without recomputing finished work, and ``progress=True``
    reports done/total + ETA on stderr:

    >>> result = run_scheme_sweep("trivial", sizes=[8, 16], seeds=(0, 1))
    >>> [row["n"] for row in result.rows]
    [8, 16]
    >>> all(row["correct"] and row["rounds"] == 0 for row in result.rows)
    True
    >>> parallel = run_scheme_sweep("trivial", sizes=[8, 16], seeds=(0, 1), jobs=2)
    >>> parallel.rows == result.rows  # byte-identical to serial
    True
    """
    factory = graph_factory if graph_factory is not None else default_graph_factory()
    scheme_obj = resolve_scheme(scheme, problem=problem)
    task_problem = getattr(scheme_obj, "problem", DEFAULT_PROBLEM)
    tasks = [
        SweepTask(
            kind="scheme",
            target=scheme,
            graph=factory,
            n=n,
            seed=seed,
            root=root,
            backend=backend,
            problem=task_problem,
        )
        for n in sizes
        for seed in seeds
    ]
    raw = run_tasks(
        tasks,
        jobs=jobs,
        cache_dir=cache_dir,
        grouping=grouping,
        cache_backend=cache_backend,
        resume=resume,
        progress=progress,
        progress_label="sweep",
    )
    return SweepResult(
        name=scheme_obj.name,
        rows=aggregate_scheme_rows(
            scheme_obj,
            resolve_actual_sizes(factory, sizes, seeds[0] if seeds else 0),
            len(seeds),
            raw,
        ),
    )


def aggregate_scheme_rows(
    scheme_obj: AdvisingScheme,
    sizes: Sequence[int],
    seeds_per_size: int,
    raw: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Aggregate raw per-run scheme rows into one row per size.

    ``raw`` must be in task order — all seeds of ``sizes[0]`` first, then
    all seeds of ``sizes[1]``, and so on (exactly how the sweep and
    report pipelines lay out their task grids).  Worst-case quantities
    (max advice, rounds, per-edge bits) aggregate by maximum — the
    conservative choice when checking upper bounds — and average advice
    by mean.  Shared by :func:`run_scheme_sweep` and the
    :mod:`repro.report` pipeline so both render identical tables.
    """
    rows: List[Dict[str, Any]] = []
    for index, n in enumerate(sizes):
        group = raw[index * seeds_per_size : (index + 1) * seeds_per_size]
        max_advice = 0
        avg_advice = 0.0
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        for row in group:
            max_advice = max(max_advice, row["max_advice_bits"])
            avg_advice += row["avg_advice_bits"]
            rounds = max(rounds, row["rounds"])
            max_edge_bits = max(max_edge_bits, row["max_edge_bits"])
            all_correct = all_correct and row["correct"]
        log_n = math.log2(max(n, 2))
        rows.append(
            {
                "problem": getattr(scheme_obj, "problem", DEFAULT_PROBLEM),
                "scheme": scheme_obj.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": max_advice,
                "avg_advice_bits": round(avg_advice / seeds_per_size, 3),
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "advice_bound": scheme_obj.advice_bound_bits(n),
                "round_bound": scheme_obj.round_bound(n),
            }
        )
    return rows


def run_baseline_sweep(
    baseline: Union[str, DistributedMSTBaseline],
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    grouping: str = "instance",
    cache_backend: str = DEFAULT_CACHE_BACKEND,
    resume: bool = False,
    progress: bool = False,
    problem: Optional[str] = None,
) -> SweepResult:
    """Run a no-advice baseline on every size in ``sizes``."""
    factory = graph_factory if graph_factory is not None else default_graph_factory()
    baseline_obj = resolve_baseline(baseline, problem=problem)
    tasks = [
        SweepTask(
            kind="baseline",
            target=baseline,
            graph=factory,
            n=n,
            seed=seed,
            problem=getattr(baseline_obj, "problem", DEFAULT_PROBLEM),
        )
        for n in sizes
        for seed in seeds
    ]
    raw = run_tasks(
        tasks,
        jobs=jobs,
        cache_dir=cache_dir,
        grouping=grouping,
        cache_backend=cache_backend,
        resume=resume,
        progress=progress,
        progress_label="sweep",
    )
    return SweepResult(
        name=baseline_obj.name,
        rows=aggregate_baseline_rows(
            baseline_obj,
            resolve_actual_sizes(factory, sizes, seeds[0] if seeds else 0),
            len(seeds),
            raw,
        ),
    )


def aggregate_baseline_rows(
    baseline_obj: DistributedMSTBaseline,
    sizes: Sequence[int],
    seeds_per_size: int,
    raw: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Aggregate raw per-run baseline rows into one row per size.

    The baseline counterpart of :func:`aggregate_scheme_rows`: same
    layout contract (``raw`` in task order, sizes-major), same
    aggregation policy, advice columns pinned to zero.
    """
    rows: List[Dict[str, Any]] = []
    for index, n in enumerate(sizes):
        group = raw[index * seeds_per_size : (index + 1) * seeds_per_size]
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        bound: Optional[float] = None
        for row in group:
            rounds = max(rounds, row["rounds"])
            max_edge_bits = max(max_edge_bits, row["max_edge_bits"])
            all_correct = all_correct and row["correct"]
            bound = row["round_bound"]
        log_n = math.log2(max(n, 2))
        rows.append(
            {
                "problem": getattr(baseline_obj, "problem", DEFAULT_PROBLEM),
                "scheme": baseline_obj.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": 0,
                "avg_advice_bits": 0.0,
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "round_bound": bound,
            }
        )
    return rows

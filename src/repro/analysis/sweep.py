"""Parameter sweeps over instance sizes.

A sweep runs one advising scheme (or no-advice baseline) on a family of
instances of growing size and collects, per size, the quantities the
paper's theorems bound: maximum / average advice bits, rounds, and the
per-edge message size.  Multiple seeds per size are aggregated by mean
(for averages) and maximum (for worst-case quantities), which is the
conservative choice when checking upper bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.oracle import AdvisingScheme, run_scheme
from repro.distributed.base import DistributedMSTBaseline, run_baseline
from repro.graphs.generators import random_connected_graph
from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = [
    "GraphFactory",
    "SweepResult",
    "default_graph_factory",
    "run_scheme_sweep",
    "run_baseline_sweep",
]

#: ``factory(n, seed) -> PortNumberedGraph``
GraphFactory = Callable[[int, int], PortNumberedGraph]


def default_graph_factory(extra_edge_prob: float = 0.05) -> GraphFactory:
    """The default workload: random connected graphs with the given density."""

    def factory(n: int, seed: int) -> PortNumberedGraph:
        return random_connected_graph(n, extra_edge_prob, seed=seed)

    return factory


@dataclass
class SweepResult:
    """Rows of one sweep (one row per instance size)."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def series(self, column: str) -> List[Any]:
        """The values of one column, in row order."""
        return [row[column] for row in self.rows]

    def to_text(self, columns: Optional[Sequence[str]] = None) -> str:
        """Aligned text rendering of the sweep."""
        return format_table(self.rows, columns=columns, title=self.name)


def run_scheme_sweep(
    scheme: AdvisingScheme,
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1, 2),
    root: int = 0,
) -> SweepResult:
    """Run ``scheme`` on every size in ``sizes`` and aggregate per size."""
    factory = graph_factory or default_graph_factory()
    result = SweepResult(name=scheme.name)
    for n in sizes:
        max_advice = 0
        avg_advice = 0.0
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        for seed in seeds:
            graph = factory(n, seed)
            report = run_scheme(scheme, graph, root=root % graph.n)
            max_advice = max(max_advice, report.advice.max_bits)
            avg_advice += report.advice.average_bits
            rounds = max(rounds, report.rounds)
            max_edge_bits = max(max_edge_bits, report.metrics.max_edge_bits_per_round)
            all_correct = all_correct and report.correct
        log_n = math.log2(max(n, 2))
        result.rows.append(
            {
                "scheme": scheme.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": max_advice,
                "avg_advice_bits": round(avg_advice / len(seeds), 3),
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "advice_bound": scheme.advice_bound_bits(n),
                "round_bound": scheme.round_bound(n),
            }
        )
    return result


def run_baseline_sweep(
    baseline: DistributedMSTBaseline,
    sizes: Sequence[int],
    graph_factory: Optional[GraphFactory] = None,
    seeds: Sequence[int] = (0, 1),
) -> SweepResult:
    """Run a no-advice baseline on every size in ``sizes``."""
    factory = graph_factory or default_graph_factory()
    result = SweepResult(name=baseline.name)
    for n in sizes:
        rounds = 0
        max_edge_bits = 0
        all_correct = True
        bound: Optional[float] = None
        for seed in seeds:
            graph = factory(n, seed)
            report = run_baseline(baseline, graph)
            rounds = max(rounds, report.rounds)
            max_edge_bits = max(max_edge_bits, report.metrics.max_edge_bits_per_round)
            all_correct = all_correct and report.correct
            bound = report.round_bound
        log_n = math.log2(max(n, 2))
        result.rows.append(
            {
                "scheme": baseline.name,
                "n": n,
                "log2_n": round(log_n, 2),
                "max_advice_bits": 0,
                "avg_advice_bits": 0.0,
                "rounds": rounds,
                "rounds_per_log_n": round(rounds / log_n, 2),
                "max_edge_bits": max_edge_bits,
                "congest_factor": round(max_edge_bits / log_n, 2),
                "correct": all_correct,
                "round_bound": bound,
            }
        )
    return result

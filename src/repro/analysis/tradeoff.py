"""The advice-size / round-complexity trade-off (experiment E6).

The paper's results form a trade-off curve for the MST problem:

===========================  =====================  ==================
scheme                        max advice             rounds
===========================  =====================  ==================
no advice (CONGEST)           0                      ``Ω̃(√n)`` [18]
no advice (LOCAL)             0                      ``D + 1``
trivial (Section 1)           ``⌈log n⌉``            0
Theorem 2                     ``O(log² n)``          1
Theorem 3                     ``O(1)``               ``O(log n)``
===========================  =====================  ==================

:func:`tradeoff_rows` measures the achievable side of this table on a
concrete instance (all schemes plus both baselines), and
:func:`theoretical_tradeoff_rows` states the claimed bounds for the same
``n`` so the benchmark can print them side by side.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.core.oracle import run_scheme
from repro.core.scheme_average import AverageConstantScheme
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.scheme_main import ShortAdviceScheme
from repro.core.scheme_trivial import TrivialRankScheme
from repro.distributed.base import run_baseline
from repro.distributed.boruvka_sync import SynchronizedBoruvkaMST
from repro.distributed.full_info import FullInformationMST
from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = ["tradeoff_rows", "theoretical_tradeoff_rows"]


def tradeoff_rows(
    graph: PortNumberedGraph,
    root: int = 0,
    include_baselines: bool = True,
    include_level_variant: bool = True,
) -> List[Dict[str, Any]]:
    """Measured trade-off table for one instance: one row per scheme/baseline."""
    rows: List[Dict[str, Any]] = []
    schemes = [TrivialRankScheme(), AverageConstantScheme(), ShortAdviceScheme()]
    if include_level_variant:
        schemes.append(LevelAdviceScheme())
    for scheme in schemes:
        report = run_scheme(scheme, graph, root=root)
        rows.append(report.as_row())
    if include_baselines:
        for baseline in (FullInformationMST(), SynchronizedBoruvkaMST()):
            rows.append(run_baseline(baseline, graph).as_row())
    return rows


def theoretical_tradeoff_rows(n: int) -> List[Dict[str, Any]]:
    """The paper's claimed bounds, instantiated for a given ``n``."""
    log_n = math.ceil(math.log2(max(n, 2)))
    return [
        {
            "scheme": "no advice (CONGEST) [18]",
            "max_advice_bits": 0,
            "rounds": f"Omega~(sqrt(n)) ~ {int(math.sqrt(n))}",
        },
        {
            "scheme": "no advice (LOCAL)",
            "max_advice_bits": 0,
            "rounds": "D + 1",
        },
        {
            "scheme": "trivial (Section 1)",
            "max_advice_bits": log_n,
            "rounds": 0,
        },
        {
            "scheme": "Theorem 2",
            "max_advice_bits": f"O(log^2 n) ~ {log_n * (log_n + 3)}",
            "rounds": 1,
        },
        {
            "scheme": "Theorem 3",
            "max_advice_bits": "O(1) (paper: 12)",
            "rounds": f"<= 9 log n = {9 * log_n}",
        },
    ]

"""Plain-text and Markdown rendering of result rows.

Benchmarks print the same "table" a paper would show: one row per
parameter setting, one column per measured quantity.  Rows are plain
dictionaries so they can also be dumped to JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_markdown_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` as an aligned fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(header[k]), max((len(r[k]) for r in body), default=0))
        for k in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render ``rows`` as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |"]
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)

"""Experiment-layer helpers: parameter sweeps, result tables, trade-off reports.

The benchmarks under ``benchmarks/`` and the example scripts under
``examples/`` are thin wrappers around this subpackage: ``sweep`` runs a
scheme or baseline over a family of instance sizes, ``tables`` renders
the resulting rows as aligned text / Markdown, and ``tradeoff`` builds
the advice-size versus round-complexity comparison that summarises the
paper's results (experiment E6 in DESIGN.md).
"""

from repro.analysis.tables import format_markdown_table, format_table
from repro.analysis.sweep import (
    SweepResult,
    default_graph_factory,
    run_baseline_sweep,
    run_scheme_sweep,
)
from repro.analysis.tradeoff import theoretical_tradeoff_rows, tradeoff_rows

__all__ = [
    "format_markdown_table",
    "format_table",
    "SweepResult",
    "default_graph_factory",
    "run_baseline_sweep",
    "run_scheme_sweep",
    "theoretical_tradeoff_rows",
    "tradeoff_rows",
]

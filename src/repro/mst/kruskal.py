"""Kruskal's algorithm under the canonical ``(weight, edge_id)`` order.

The returned edge set is the library's reference MST ``T*``: because all
edges are compared under one global total order, the result is unique
even when edge weights are duplicated, and it coincides with the output
of :func:`repro.mst.boruvka.boruvka_mst` and :func:`repro.mst.prim.prim_mst`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.union_find import UnionFind

__all__ = ["kruskal_mst"]


def kruskal_mst(graph: PortNumberedGraph) -> List[int]:
    """Edge ids of the reference MST ``T*`` of ``graph``.

    Raises ``ValueError`` if the graph is not connected (the paper's
    model only considers connected networks).
    """
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    uf = UnionFind(graph.n)
    tree: List[int] = []
    for eid in order:
        eid = int(eid)
        if uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid])):
            tree.append(eid)
            if len(tree) == graph.n - 1:
                break
    return sorted(tree)

"""Kruskal's algorithm under the canonical ``(weight, edge_id)`` order.

The returned edge set is the library's reference MST ``T*``: because all
edges are compared under one global total order, the result is unique
even when edge weights are duplicated, and it coincides with the output
of :func:`repro.mst.boruvka.boruvka_mst` and :func:`repro.mst.prim.prim_mst`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.union_find import UnionFind

__all__ = ["kruskal_mst"]


def kruskal_mst(graph: PortNumberedGraph) -> List[int]:
    """Edge ids of the reference MST ``T*`` of ``graph``.

    Raises ``ValueError`` if the graph is not connected (the paper's
    model only considers connected networks).

    The reference MST is a pure function of the (immutable) graph, so
    the result is memoised on the instance — oracles and verifiers ask
    for ``T*`` of the same graph several times per run.
    """
    cached = getattr(graph, "_kruskal_cache", None)
    if cached is not None:
        return list(cached)
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    uf = UnionFind(graph.n)
    edge_u = graph.edge_u.tolist()
    edge_v = graph.edge_v.tolist()
    tree: List[int] = []
    for eid in order.tolist():
        if uf.union(edge_u[eid], edge_v[eid]):
            tree.append(eid)
            if len(tree) == graph.n - 1:
                break
    tree.sort()
    graph._kruskal_cache = tuple(tree)
    return tree

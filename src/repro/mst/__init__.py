"""Sequential MST algorithms and the Borůvka fragment machinery.

This subpackage is the *reference* side of the reproduction: the oracles
of the advising schemes (``repro.core``) run these algorithms on the
whole instance to decide what advice to hand out, and the verifiers use
them to check distributed outputs.

Contents
--------

``union_find``
    A rank + path-compression disjoint-set forest.
``kruskal`` / ``prim``
    Classic sequential MST algorithms under the canonical
    ``(weight, edge_id)`` total order, so that all components of the
    library agree on one reference MST ``T*`` even with duplicate
    weights.
``rooted_tree``
    Rooted-tree representation of an MST: parent pointers, parent ports,
    depths, up/down edge orientation (Section 2.2 of the paper).
``boruvka``
    The paper's Borůvka variant (Section 2.2): a fragment is *active* at
    phase ``i`` iff its size is ``< 2^i``; every active fragment selects
    its minimum outgoing MST edge; the full per-phase trace (fragments,
    choosing nodes, selected edges, levels) is recorded for the oracles.
``fragments``
    Fragment forests: membership, induced subtrees ``T_F``, fragment
    roots ``r_F``, DFS orders, the contracted fragment tree ``T_i`` and
    its levels.
``verify``
    MST verification (weight comparison + cut/cycle properties) and
    rooted-tree validity checks.
"""

from repro.mst.union_find import UnionFind
from repro.mst.kruskal import kruskal_mst
from repro.mst.prim import prim_mst
from repro.mst.rooted_tree import RootedSpanningTree, build_rooted_tree
from repro.mst.boruvka import (
    BoruvkaPhase,
    BoruvkaTrace,
    FragmentSelection,
    boruvka_mst,
    boruvka_trace,
)
from repro.mst.fragments import FragmentPartition, FragmentTree
from repro.mst.verify import (
    is_minimum_spanning_tree,
    is_spanning_tree,
    verify_cycle_property,
    verify_cut_property,
)

__all__ = [
    "UnionFind",
    "kruskal_mst",
    "prim_mst",
    "RootedSpanningTree",
    "build_rooted_tree",
    "BoruvkaPhase",
    "BoruvkaTrace",
    "FragmentSelection",
    "boruvka_mst",
    "boruvka_trace",
    "FragmentPartition",
    "FragmentTree",
    "is_minimum_spanning_tree",
    "is_spanning_tree",
    "verify_cycle_property",
    "verify_cut_property",
]

"""The paper's Borůvka variant (Section 2.2) with full per-phase tracing.

The construction proceeds in phases.  Before phase 1 every node is a
singleton fragment.  At phase ``i`` only the fragments of size smaller
than ``2^i`` are *active*; every active fragment selects its minimum
outgoing edge (under the canonical ``(weight, edge_id)`` order, which
subsumes the paper's "ties are broken using the port numbers, remaining
ties arbitrarily" rule with one globally consistent choice), and all
fragments connected by selected edges merge into one fragment for phase
``i + 1``.  Lemma 1 of the paper: after phase ``i`` every fragment has
at least ``2^i`` nodes, hence at most ``⌈log₂ n⌉`` phases are ever
needed.

Two entry points are provided:

:func:`boruvka_mst`
    Just the MST edge ids — an independent reference implementation used
    to cross-check Kruskal and Prim.

:func:`boruvka_trace`
    The full :class:`BoruvkaTrace`: for every phase, the fragment
    partition, the contracted fragment tree with its levels, and one
    :class:`FragmentSelection` record per active fragment (choosing
    node, selected edge, orientation, DFS position, ...).  The oracles
    of ``repro.core`` are written directly against this trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.fragments import FragmentPartition, FragmentTree
from repro.mst.rooted_tree import RootedSpanningTree, build_rooted_tree
from repro.mst.union_find import UnionFind

__all__ = [
    "FragmentSelection",
    "BoruvkaPhase",
    "BoruvkaTrace",
    "boruvka_mst",
    "boruvka_trace",
    "boruvka_trace_stacked",
]


@dataclass(frozen=True)
class FragmentSelection:
    """The edge selected by one active fragment at one phase."""

    phase: int
    fragment: int
    fragment_size: int
    choosing_node: int
    selected_edge: int
    port_at_choosing: int
    weight: float
    #: 1-based rank of the selected edge in the ``index`` order at the choosing node
    rank_at_choosing: int
    #: the paper's ``index_u(e) = (x_u, y_u)`` at the choosing node
    index_pair: Tuple[int, int]
    #: ``True`` iff the selected edge leads towards the global root at the choosing node
    is_up: bool
    target_node: int
    target_fragment: int
    level_of_fragment: int
    level_of_target_fragment: int
    #: 1-based position of the choosing node in the DFS preorder of ``T_F``
    choosing_dfs_index: int


class BoruvkaPhase:
    """Everything that happened at one phase of the construction.

    The per-selection data is stored as one NumPy column per
    :class:`FragmentSelection` field (``arrays``); the tuple of
    :class:`FragmentSelection` records is materialised lazily on first
    access to :attr:`selections` — the hot consumers (the packers and
    the analytic backend) read the columns directly.
    """

    __slots__ = (
        "index",
        "partition",
        "fragment_tree",
        "active",
        "selected_edge_ids",
        "arrays",
        "_selections",
    )

    def __init__(
        self,
        index: int,
        partition: FragmentPartition,
        fragment_tree: FragmentTree,
        active: Tuple[int, ...],
        selected_edge_ids: Tuple[int, ...],
        arrays: Optional[Dict[str, np.ndarray]] = None,
        selections: Optional[Tuple[FragmentSelection, ...]] = None,
    ):
        self.index = index
        self.partition = partition
        self.fragment_tree = fragment_tree
        self.active = active
        #: de-duplicated edge ids selected at this phase
        self.selected_edge_ids = selected_edge_ids
        #: per-selection columns, ordered by fragment index (see
        #: :data:`SELECTION_COLUMNS`)
        if arrays is None:
            arrays = _selection_arrays(selections or ())
        self.arrays = arrays
        self._selections = selections

    @property
    def selections(self) -> Tuple[FragmentSelection, ...]:
        """Per-fragment selection records (lazy view of :attr:`arrays`)."""
        if self._selections is None:
            a = self.arrays
            fields = zip(
                a["fragment"].tolist(),
                a["fragment_size"].tolist(),
                a["choosing_node"].tolist(),
                a["selected_edge"].tolist(),
                a["port_at_choosing"].tolist(),
                a["weight"].tolist(),
                a["rank_at_choosing"].tolist(),
                a["index_x"].tolist(),
                a["index_y"].tolist(),
                a["is_up"].tolist(),
                a["target_node"].tolist(),
                a["target_fragment"].tolist(),
                a["level_of_fragment"].tolist(),
                a["level_of_target_fragment"].tolist(),
                a["choosing_dfs_index"].tolist(),
            )
            self._selections = tuple(
                FragmentSelection(
                    phase=self.index,
                    fragment=f,
                    fragment_size=size,
                    choosing_node=node,
                    selected_edge=eid,
                    port_at_choosing=p,
                    weight=w,
                    rank_at_choosing=rank,
                    index_pair=(x, y),
                    is_up=up,
                    target_node=tgt,
                    target_fragment=tf,
                    level_of_fragment=lf,
                    level_of_target_fragment=lt,
                    choosing_dfs_index=dfs,
                )
                for f, size, node, eid, p, w, rank, x, y, up, tgt, tf, lf, lt, dfs in fields
            )
        return self._selections

    def selection_for_fragment(self, f: int) -> Optional[FragmentSelection]:
        """The selection made by fragment ``f`` at this phase, if any."""
        for sel in self.selections:
            if sel.fragment == f:
                return sel
        return None


def _selection_arrays(
    selections: Sequence[FragmentSelection],
) -> Dict[str, np.ndarray]:
    """Column view of explicit selection records (slow path, small inputs)."""
    return {
        "fragment": np.asarray([s.fragment for s in selections], dtype=np.int64),
        "fragment_size": np.asarray(
            [s.fragment_size for s in selections], dtype=np.int64
        ),
        "choosing_node": np.asarray(
            [s.choosing_node for s in selections], dtype=np.int64
        ),
        "selected_edge": np.asarray(
            [s.selected_edge for s in selections], dtype=np.int64
        ),
        "port_at_choosing": np.asarray(
            [s.port_at_choosing for s in selections], dtype=np.int64
        ),
        "weight": np.asarray([s.weight for s in selections], dtype=np.float64),
        "rank_at_choosing": np.asarray(
            [s.rank_at_choosing for s in selections], dtype=np.int64
        ),
        "index_x": np.asarray([s.index_pair[0] for s in selections], dtype=np.int64),
        "index_y": np.asarray([s.index_pair[1] for s in selections], dtype=np.int64),
        "is_up": np.asarray([s.is_up for s in selections], dtype=bool),
        "target_node": np.asarray([s.target_node for s in selections], dtype=np.int64),
        "target_fragment": np.asarray(
            [s.target_fragment for s in selections], dtype=np.int64
        ),
        "level_of_fragment": np.asarray(
            [s.level_of_fragment for s in selections], dtype=np.int64
        ),
        "level_of_target_fragment": np.asarray(
            [s.level_of_target_fragment for s in selections], dtype=np.int64
        ),
        "choosing_dfs_index": np.asarray(
            [s.choosing_dfs_index for s in selections], dtype=np.int64
        ),
    }


@dataclass
class BoruvkaTrace:
    """The complete run of the paper's Borůvka variant on one instance."""

    graph: PortNumberedGraph
    root: int
    tree: RootedSpanningTree
    phases: List[BoruvkaPhase]

    @property
    def num_phases(self) -> int:
        """Number of phases until a single fragment remained."""
        return len(self.phases)

    def phase(self, i: int) -> BoruvkaPhase:
        """Phase ``i`` (1-based)."""
        return self.phases[i - 1]

    def selected_before_phase(self, i: int) -> List[int]:
        """All edge ids selected strictly before phase ``i`` (1-based)."""
        out: Set[int] = set()
        for ph in self.phases[: i - 1]:
            out.update(ph.selected_edge_ids)
        return sorted(out)

    def partition_before_phase(self, i: int) -> FragmentPartition:
        """The fragment partition at the beginning of phase ``i`` (1-based).

        For ``i`` beyond the last recorded phase this returns the
        partition obtained after the final phase (which may still have
        several fragments if the trace was truncated with
        ``max_phases``).
        """
        if 1 <= i <= len(self.phases):
            return self.phases[i - 1].partition
        # the beyond-the-end partition is the same object for every such
        # ``i``; build it once (the analytic backend asks for it once per
        # remaining phase window plus once for the final collection)
        cached = getattr(self, "_final_partition", None)
        if cached is None:
            cached = FragmentPartition.from_selected_edges(
                self.tree, self.selected_before_phase(len(self.phases) + 1)
            )
            self._final_partition = cached
        return cached

    def mst_edge_ids(self) -> List[int]:
        """Edge ids of the MST produced by the run (the reference tree's edges)."""
        return sorted(self.tree.edge_ids)


# ---------------------------------------------------------------------- #
# vectorised per-phase minimum-outgoing-edge selection
# ---------------------------------------------------------------------- #


def _minimum_outgoing_edges(
    num_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    reps: np.ndarray,
    sorted_u: np.ndarray,
    sorted_v: np.ndarray,
    order: np.ndarray,
    ru: Optional[np.ndarray] = None,
    rv: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per fragment, its first outgoing edge in the canonical order.

    Works on raw endpoint arrays so the same kernel serves one instance
    and the seed-stacked disjoint union of a whole sweep point.
    ``sorted_u`` / ``sorted_v`` are the edge endpoints arranged in the
    canonical ``(weight, edge_id)`` order (``order`` maps a canonical
    position back to the edge id).  A fragment's minimum outgoing edge is
    its *first occurrence* in that order, found with one reversed fancy
    assignment per endpoint side (later writes are overwritten by earlier
    positions) — ``O(m)`` per phase with no per-phase sort, and exactly
    the edge the historical scan found, including the ``(weight,
    edge_id)`` tie-breaking.

    Returns ``(fragments, edge_ids, choosing_nodes)``: for every
    fragment representative with at least one outgoing edge, the
    selected edge id and the endpoint inside the fragment.

    ``ru`` / ``rv`` may carry the endpoint representatives if the caller
    already gathered them (the stacked loop does, for its crossing-edge
    filter) — the kernel then skips its own two gathers.
    """
    if ru is None:
        ru = reps[sorted_u]
    if rv is None:
        rv = reps[sorted_v]
    inter = np.flatnonzero(ru != rv)
    if inter.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    sentinel = order.size
    first_u = np.full(num_nodes, sentinel, dtype=np.int64)
    first_v = np.full(num_nodes, sentinel, dtype=np.int64)
    rev = inter[::-1]
    first_u[ru[rev]] = rev
    first_v[rv[rev]] = rev
    best = np.minimum(first_u, first_v)
    frags = np.flatnonzero(best < sentinel)
    win_pos = best[frags]
    eids = order[win_pos]
    nodes = np.where(first_u[frags] == win_pos, edge_u[eids], edge_v[eids])
    return frags, eids, nodes


# ---------------------------------------------------------------------- #
# plain Borůvka (independent MST reference)
# ---------------------------------------------------------------------- #


def boruvka_mst(graph: PortNumberedGraph) -> List[int]:
    """Edge ids of the reference MST computed by classic Borůvka.

    All fragments (no active/passive distinction) select their minimum
    outgoing edge under the canonical ``(weight, edge_id)`` order each
    phase.  Because the order is a single global total order, the union
    of the selections never contains a cycle and the result equals the
    reference MST ``T*`` of Kruskal and Prim.
    """
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    uf = UnionFind(graph.n)
    tree: Set[int] = set()
    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    sorted_u = graph.edge_u[order]
    sorted_v = graph.edge_v[order]
    while uf.component_count > 1:
        _, edge_ids, _ = _minimum_outgoing_edges(
            graph.n, graph.edge_u, graph.edge_v, uf.roots_array(), sorted_u, sorted_v, order
        )
        if edge_ids.size == 0:  # pragma: no cover - cannot happen on a connected graph
            break
        for eid in sorted(set(edge_ids.tolist())):
            # the same edge can be the minimum of both of its fragments; the
            # second union is then a no-op and the edge is already in the tree
            if uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid])):
                tree.add(eid)
    return sorted(tree)


# ---------------------------------------------------------------------- #
# the paper's variant, with tracing
# ---------------------------------------------------------------------- #


def boruvka_trace(
    graph: PortNumberedGraph,
    root: int = 0,
    max_phases: Optional[int] = None,
) -> BoruvkaTrace:
    """Run the paper's active/passive Borůvka variant and record everything.

    Parameters
    ----------
    graph:
        The instance (must be connected).
    root:
        The node chosen as the root ``r`` of the resulting MST; the
        up/down orientation of selected edges and the fragment levels are
        defined relative to ``r``.
    max_phases:
        If given, stop recording after this many phases even if several
        fragments remain (the Theorem-3 oracle only needs
        ``⌈log₂ log₂ n⌉`` phases).  The reference MST and the rooted tree
        are always computed from a full run.
    """
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    if not 0 <= root < graph.n:
        raise ValueError("root out of range")

    # full traces are memoised per (graph, root): the trace is a pure
    # function of the immutable instance, and every trace-driven scheme
    # (theorem2 / theorem3 / theorem3-level) plus the analytic backend
    # asks for the same one when run over the same instance
    if max_phases is None:
        memo = getattr(graph, "_trace_cache", None)
        if memo is None:
            memo = {}
            graph._trace_cache = memo
        cached = memo.get(root)
        if cached is not None:
            return cached

    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    sorted_u = graph.edge_u[order]
    sorted_v = graph.edge_v[order]

    # ---------- raw phase loop (membership + selections only) ----------
    uf = UnionFind(graph.n)
    raw_phases: List[Dict] = []
    all_selected: Set[int] = set()
    phase_index = 0
    while uf.component_count > 1:
        phase_index += 1
        threshold = 1 << phase_index
        reps = uf.roots_array()
        sizes = np.bincount(reps, minlength=graph.n)

        # first outgoing edge in canonical order, per active fragment
        # (arrays are ordered by fragment representative — the historical
        # ``sorted(rep -> selection)`` iteration order)
        frag_reps, edge_ids, nodes = _minimum_outgoing_edges(
            graph.n, graph.edge_u, graph.edge_v, reps, sorted_u, sorted_v, order
        )
        active = sizes[frag_reps] < threshold
        sel_eids = edge_ids[active]
        sel_nodes = nodes[active]

        new_edges = np.unique(sel_eids).tolist()
        raw_phases.append(
            {
                "index": phase_index,
                "sel_eids": sel_eids,
                "sel_nodes": sel_nodes,
                "new_edges": new_edges,
            }
        )
        for eid in new_edges:
            uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid]))
            all_selected.add(eid)
        if phase_index > graph.n:  # pragma: no cover - safety net
            raise RuntimeError("Borůvka did not converge")

    mst_edges = sorted(all_selected)
    if len(mst_edges) != graph.n - 1:  # pragma: no cover - internal invariant
        raise RuntimeError("Borůvka produced a non-spanning edge set")
    tree = build_rooted_tree(graph, mst_edges, root=root)

    phases = _annotate_phases(graph, tree, raw_phases, max_phases)
    trace = BoruvkaTrace(graph=graph, root=root, tree=tree, phases=phases)
    if max_phases is None:
        graph._trace_cache[root] = trace
    return trace


def _annotate_phases(
    graph: PortNumberedGraph,
    tree: RootedSpanningTree,
    raw_phases: List[Dict],
    max_phases: Optional[int] = None,
) -> List[BoruvkaPhase]:
    """Turn raw per-phase selections into fully annotated :class:`BoruvkaPhase`\\ s.

    Partitions are rebuilt incrementally: one union-find accumulates the
    selected edges phase by phase, and each phase's partition is one bulk
    roots_array pass instead of a fresh union-find over all earlier edges;
    every per-selection field (ports, ranks, index pairs, orientations,
    levels, DFS indices) is gathered with one vectorised pass per phase.
    Shared by the single-instance tracer and the seed-stacked kernel
    (which records raw selections for a whole sweep point in one union
    loop and annotates each seed separately).
    """
    phases: List[BoruvkaPhase] = []
    limit = len(raw_phases) if max_phases is None else min(max_phases, len(raw_phases))
    annotate_uf = UnionFind(graph.n)
    parent_edge_arr = np.asarray(tree.parent_edge, dtype=np.int64)
    slot_rank, slot_x, slot_y = graph._slot_orders()
    offsets = graph._offsets
    for raw in raw_phases[:limit]:
        i = raw["index"]
        partition = FragmentPartition.from_roots(tree, annotate_uf.roots_array())
        ftree = partition.fragment_tree()
        active = tuple(partition.active_fragments(i))
        eids = raw["sel_eids"]
        choosing = raw["sel_nodes"]
        frag_of = partition.fragment_of_array()
        at_u = graph.edge_u[eids] == choosing
        target = np.where(at_u, graph.edge_v[eids], graph.edge_u[eids])
        port = np.where(at_u, graph.edge_port_u[eids], graph.edge_port_v[eids])
        slot = offsets[choosing] + port
        frag = frag_of[choosing]
        counts = partition.fragment_sizes_array()
        levels = ftree.depth_array() % 2
        target_frag = frag_of[target]
        arrays = {
            "fragment": frag,
            "fragment_size": counts[frag],
            "choosing_node": choosing,
            "selected_edge": eids,
            "port_at_choosing": port,
            "weight": graph.edge_w[eids],
            "rank_at_choosing": slot_rank[slot] + 1,
            "index_x": slot_x[slot] + 1,
            "index_y": slot_y[slot] + 1,
            "is_up": parent_edge_arr[choosing] == eids,
            "target_node": target,
            "target_fragment": target_frag,
            "level_of_fragment": levels[frag],
            "level_of_target_fragment": levels[target_frag],
            "choosing_dfs_index": partition.preorder_positions()[choosing] + 1,
        }
        phases.append(
            BoruvkaPhase(
                index=i,
                partition=partition,
                fragment_tree=ftree,
                active=active,
                selected_edge_ids=tuple(raw["new_edges"]),
                arrays=arrays,
            )
        )
        new_edges = raw["new_edges"]
        union = annotate_uf.union
        for a, b in zip(
            graph.edge_u[new_edges].tolist(), graph.edge_v[new_edges].tolist()
        ):
            union(a, b)
    return phases


# ---------------------------------------------------------------------- #
# the seed-stacked kernel: all seeds of one sweep point in one union loop
# ---------------------------------------------------------------------- #


def boruvka_trace_stacked(
    graphs: Sequence[PortNumberedGraph],
    root: int = 0,
) -> List[BoruvkaTrace]:
    """Trace every instance of one sweep point through **one** phase loop.

    The instances (all of the same size ``n``) are stacked into a
    disjoint union: node ``u`` of seed ``s`` becomes ``s*n + u`` and the
    edge ids of seed ``s`` are offset by the edge counts of the seeds
    before it.  One canonical ``(weight, edge_id)`` lexsort and one
    union-find phase loop then drive every seed at once:

    * within one seed, the union order restricted to its edges equals its
      own canonical order (the edge-id offset is monotonic), and
      fragments never span seeds, so each seed's per-phase selections are
      exactly those of its solo :func:`boruvka_trace` run;
    * a seed participates at global phase ``i`` while it still has more
      than one fragment — a contiguous prefix of the global phases, so
      its local phase numbering (and with it the ``2^i`` activity
      thresholds) matches the solo run phase by phase, including phases
      where every fragment of the seed is passive;
    * selections come back ordered by union fragment representative,
      which is seed-major: each seed's slice is contiguous.

    Per seed the raw selections are annotated with the shared
    :func:`_annotate_phases` pass, the rooted reference tree is built
    (and memoised) as usual, the Kruskal memo is pre-seeded with the MST
    (identical by the shared canonical order), and the finished
    :class:`BoruvkaTrace` is installed in the instance's trace memo — so
    every downstream consumer (oracles, the analytic backend) sees
    exactly the objects a per-seed run would have produced.
    """
    graphs = list(graphs)
    if not graphs:
        return []
    n = graphs[0].n
    for g in graphs:
        if g.n != n:
            raise ValueError("seed stacking requires instances of one size")
        if not g.is_connected():
            raise ValueError("MST is undefined on a disconnected graph")
    if not 0 <= root < n:
        raise ValueError("root out of range")

    num_seeds = len(graphs)
    total_nodes = num_seeds * n
    edge_counts = np.asarray([g.m for g in graphs], dtype=np.int64)
    e_off = np.zeros(num_seeds + 1, dtype=np.int64)
    np.cumsum(edge_counts, out=e_off[1:])
    edge_u_all = np.concatenate([g.edge_u + s * n for s, g in enumerate(graphs)])
    edge_v_all = np.concatenate([g.edge_v + s * n for s, g in enumerate(graphs)])
    # Fragments never span seeds, so the kernel below only ever compares
    # positions of edges *within* one seed: a seed-major concatenation of
    # the per-seed canonical (weight, edge_id) orders serves as the global
    # order, and sixteen small sorts beat one big one.  A stable argsort
    # ties by position, i.e. by edge id — exactly the canonical order;
    # integral weights (every built-in weight mode) sort as int64, where
    # the stable sort is a radix pass instead of a float mergesort.
    order_parts = []
    for s, g in enumerate(graphs):
        w = g.edge_w
        w_int = w.astype(np.int64)
        if np.array_equal(w_int, w):
            part = np.argsort(w_int, kind="stable")
        else:
            part = np.argsort(w, kind="stable")
        order_parts.append(part + e_off[s])
    order = np.concatenate(order_parts)
    sorted_u = edge_u_all[order]
    sorted_v = edge_v_all[order]

    uf = UnionFind(total_nodes)
    raw_per_seed: List[List[Dict]] = [[] for _ in range(num_seeds)]
    selected_per_seed: List[Set[int]] = [set() for _ in range(num_seeds)]
    phase_index = 0
    while uf.component_count > num_seeds:
        phase_index += 1
        threshold = 1 << phase_index
        reps = uf.roots_array()
        sizes = np.bincount(reps, minlength=total_nodes)
        # fragments still open, per seed: distinct representatives live in
        # their seed's node block, so counting non-empty size slots per
        # block replaces a hash-based unique pass
        comp = np.count_nonzero(sizes.reshape(num_seeds, n), axis=1)
        frag_reps, edge_ids, nodes = _minimum_outgoing_edges(
            total_nodes, edge_u_all, edge_v_all, reps, sorted_u, sorted_v, order
        )
        active = sizes[frag_reps] < threshold
        sel_eids = edge_ids[active]
        sel_nodes = nodes[active]
        seed_of = sel_nodes // n
        bounds = np.searchsorted(seed_of, np.arange(num_seeds + 1))
        for s in np.flatnonzero(comp > 1).tolist():
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            local_eids = sel_eids[lo:hi] - e_off[s]
            new_edges = np.unique(local_eids).tolist()
            raw_per_seed[s].append(
                {
                    "index": phase_index,
                    "sel_eids": local_eids,
                    "sel_nodes": sel_nodes[lo:hi] - s * n,
                    "new_edges": new_edges,
                }
            )
            selected_per_seed[s].update(new_edges)
        uniq_eids = np.unique(sel_eids)
        union = uf.union
        for a, b in zip(
            edge_u_all[uniq_eids].tolist(), edge_v_all[uniq_eids].tolist()
        ):
            union(a, b)
        if phase_index > n:  # pragma: no cover - safety net
            raise RuntimeError("Borůvka did not converge")

    traces: List[BoruvkaTrace] = []
    for s, g in enumerate(graphs):
        mst_edges = sorted(selected_per_seed[s])
        if len(mst_edges) != n - 1:  # pragma: no cover - internal invariant
            raise RuntimeError("Borůvka produced a non-spanning edge set")
        # the Borůvka MST equals the Kruskal MST under the shared canonical
        # order; pre-seeding the memo spares the non-trace schemes a full
        # Kruskal pass per seed
        if getattr(g, "_kruskal_cache", None) is None:
            g._kruskal_cache = tuple(mst_edges)
        tree = build_rooted_tree(g, mst_edges, root=root)
        trace = BoruvkaTrace(
            graph=g,
            root=root,
            tree=tree,
            phases=_annotate_phases(g, tree, raw_per_seed[s]),
        )
        memo = getattr(g, "_trace_cache", None)
        if memo is None:
            memo = {}
            g._trace_cache = memo
        memo[root] = trace
        traces.append(trace)
    return traces

"""The paper's Borůvka variant (Section 2.2) with full per-phase tracing.

The construction proceeds in phases.  Before phase 1 every node is a
singleton fragment.  At phase ``i`` only the fragments of size smaller
than ``2^i`` are *active*; every active fragment selects its minimum
outgoing edge (under the canonical ``(weight, edge_id)`` order, which
subsumes the paper's "ties are broken using the port numbers, remaining
ties arbitrarily" rule with one globally consistent choice), and all
fragments connected by selected edges merge into one fragment for phase
``i + 1``.  Lemma 1 of the paper: after phase ``i`` every fragment has
at least ``2^i`` nodes, hence at most ``⌈log₂ n⌉`` phases are ever
needed.

Two entry points are provided:

:func:`boruvka_mst`
    Just the MST edge ids — an independent reference implementation used
    to cross-check Kruskal and Prim.

:func:`boruvka_trace`
    The full :class:`BoruvkaTrace`: for every phase, the fragment
    partition, the contracted fragment tree with its levels, and one
    :class:`FragmentSelection` record per active fragment (choosing
    node, selected edge, orientation, DFS position, ...).  The oracles
    of ``repro.core`` are written directly against this trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.fragments import FragmentPartition, FragmentTree
from repro.mst.rooted_tree import RootedSpanningTree, build_rooted_tree
from repro.mst.union_find import UnionFind

__all__ = [
    "FragmentSelection",
    "BoruvkaPhase",
    "BoruvkaTrace",
    "boruvka_mst",
    "boruvka_trace",
]


@dataclass(frozen=True)
class FragmentSelection:
    """The edge selected by one active fragment at one phase."""

    phase: int
    fragment: int
    fragment_size: int
    choosing_node: int
    selected_edge: int
    port_at_choosing: int
    weight: float
    #: 1-based rank of the selected edge in the ``index`` order at the choosing node
    rank_at_choosing: int
    #: the paper's ``index_u(e) = (x_u, y_u)`` at the choosing node
    index_pair: Tuple[int, int]
    #: ``True`` iff the selected edge leads towards the global root at the choosing node
    is_up: bool
    target_node: int
    target_fragment: int
    level_of_fragment: int
    level_of_target_fragment: int
    #: 1-based position of the choosing node in the DFS preorder of ``T_F``
    choosing_dfs_index: int


@dataclass(frozen=True)
class BoruvkaPhase:
    """Everything that happened at one phase of the construction."""

    index: int
    partition: FragmentPartition
    fragment_tree: FragmentTree
    active: Tuple[int, ...]
    selections: Tuple[FragmentSelection, ...]
    #: de-duplicated edge ids selected at this phase
    selected_edge_ids: Tuple[int, ...]

    def selection_for_fragment(self, f: int) -> Optional[FragmentSelection]:
        """The selection made by fragment ``f`` at this phase, if any."""
        for sel in self.selections:
            if sel.fragment == f:
                return sel
        return None


@dataclass
class BoruvkaTrace:
    """The complete run of the paper's Borůvka variant on one instance."""

    graph: PortNumberedGraph
    root: int
    tree: RootedSpanningTree
    phases: List[BoruvkaPhase]

    @property
    def num_phases(self) -> int:
        """Number of phases until a single fragment remained."""
        return len(self.phases)

    def phase(self, i: int) -> BoruvkaPhase:
        """Phase ``i`` (1-based)."""
        return self.phases[i - 1]

    def selected_before_phase(self, i: int) -> List[int]:
        """All edge ids selected strictly before phase ``i`` (1-based)."""
        out: Set[int] = set()
        for ph in self.phases[: i - 1]:
            out.update(ph.selected_edge_ids)
        return sorted(out)

    def partition_before_phase(self, i: int) -> FragmentPartition:
        """The fragment partition at the beginning of phase ``i`` (1-based).

        For ``i`` beyond the last recorded phase this returns the
        partition obtained after the final phase (which may still have
        several fragments if the trace was truncated with
        ``max_phases``).
        """
        if 1 <= i <= len(self.phases):
            return self.phases[i - 1].partition
        # the beyond-the-end partition is the same object for every such
        # ``i``; build it once (the analytic backend asks for it once per
        # remaining phase window plus once for the final collection)
        cached = getattr(self, "_final_partition", None)
        if cached is None:
            cached = FragmentPartition.from_selected_edges(
                self.tree, self.selected_before_phase(len(self.phases) + 1)
            )
            self._final_partition = cached
        return cached

    def mst_edge_ids(self) -> List[int]:
        """Edge ids of the MST produced by the run (the reference tree's edges)."""
        return sorted(self.tree.edge_ids)


# ---------------------------------------------------------------------- #
# vectorised per-phase minimum-outgoing-edge selection
# ---------------------------------------------------------------------- #


def _minimum_outgoing_edges(
    graph: PortNumberedGraph,
    reps: np.ndarray,
    sorted_u: np.ndarray,
    sorted_v: np.ndarray,
    order: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per fragment, its first outgoing edge in the canonical order.

    ``sorted_u`` / ``sorted_v`` are the edge endpoints arranged in the
    canonical ``(weight, edge_id)`` order (``order`` maps a canonical
    position back to the edge id).  A fragment's minimum outgoing edge is
    its *first occurrence* in that order, found with one reversed fancy
    assignment per endpoint side (later writes are overwritten by earlier
    positions) — ``O(m)`` per phase with no per-phase sort, and exactly
    the edge the historical scan found, including the ``(weight,
    edge_id)`` tie-breaking.

    Returns ``(fragments, edge_ids, choosing_nodes)``: for every
    fragment representative with at least one outgoing edge, the
    selected edge id and the endpoint inside the fragment.
    """
    ru = reps[sorted_u]
    rv = reps[sorted_v]
    inter = np.flatnonzero(ru != rv)
    if inter.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    sentinel = order.size
    first_u = np.full(graph.n, sentinel, dtype=np.int64)
    first_v = np.full(graph.n, sentinel, dtype=np.int64)
    rev = inter[::-1]
    first_u[ru[rev]] = rev
    first_v[rv[rev]] = rev
    best = np.minimum(first_u, first_v)
    frags = np.flatnonzero(best < sentinel)
    win_pos = best[frags]
    eids = order[win_pos]
    nodes = np.where(first_u[frags] == win_pos, graph.edge_u[eids], graph.edge_v[eids])
    return frags, eids, nodes


# ---------------------------------------------------------------------- #
# plain Borůvka (independent MST reference)
# ---------------------------------------------------------------------- #


def boruvka_mst(graph: PortNumberedGraph) -> List[int]:
    """Edge ids of the reference MST computed by classic Borůvka.

    All fragments (no active/passive distinction) select their minimum
    outgoing edge under the canonical ``(weight, edge_id)`` order each
    phase.  Because the order is a single global total order, the union
    of the selections never contains a cycle and the result equals the
    reference MST ``T*`` of Kruskal and Prim.
    """
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    uf = UnionFind(graph.n)
    tree: Set[int] = set()
    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    sorted_u = graph.edge_u[order]
    sorted_v = graph.edge_v[order]
    while uf.component_count > 1:
        _, edge_ids, _ = _minimum_outgoing_edges(
            graph, uf.roots_array(), sorted_u, sorted_v, order
        )
        if edge_ids.size == 0:  # pragma: no cover - cannot happen on a connected graph
            break
        for eid in sorted(set(edge_ids.tolist())):
            # the same edge can be the minimum of both of its fragments; the
            # second union is then a no-op and the edge is already in the tree
            if uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid])):
                tree.add(eid)
    return sorted(tree)


# ---------------------------------------------------------------------- #
# the paper's variant, with tracing
# ---------------------------------------------------------------------- #


def boruvka_trace(
    graph: PortNumberedGraph,
    root: int = 0,
    max_phases: Optional[int] = None,
) -> BoruvkaTrace:
    """Run the paper's active/passive Borůvka variant and record everything.

    Parameters
    ----------
    graph:
        The instance (must be connected).
    root:
        The node chosen as the root ``r`` of the resulting MST; the
        up/down orientation of selected edges and the fragment levels are
        defined relative to ``r``.
    max_phases:
        If given, stop recording after this many phases even if several
        fragments remain (the Theorem-3 oracle only needs
        ``⌈log₂ log₂ n⌉`` phases).  The reference MST and the rooted tree
        are always computed from a full run.
    """
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    if not 0 <= root < graph.n:
        raise ValueError("root out of range")

    # full traces are memoised per (graph, root): the trace is a pure
    # function of the immutable instance, and every trace-driven scheme
    # (theorem2 / theorem3 / theorem3-level) plus the analytic backend
    # asks for the same one when run over the same instance
    if max_phases is None:
        memo = getattr(graph, "_trace_cache", None)
        if memo is None:
            memo = {}
            graph._trace_cache = memo
        cached = memo.get(root)
        if cached is not None:
            return cached

    order = np.lexsort((np.arange(graph.m), graph.edge_w))
    sorted_u = graph.edge_u[order]
    sorted_v = graph.edge_v[order]

    # ---------- raw phase loop (membership + selections only) ----------
    uf = UnionFind(graph.n)
    raw_phases: List[Dict] = []
    all_selected: Set[int] = set()
    phase_index = 0
    while uf.component_count > 1:
        phase_index += 1
        threshold = 1 << phase_index
        reps = uf.roots_array()
        sizes = np.bincount(reps, minlength=graph.n)

        # first outgoing edge in canonical order, per active fragment
        # (arrays are ordered by fragment representative — the historical
        # ``sorted(rep -> selection)`` iteration order)
        frag_reps, edge_ids, nodes = _minimum_outgoing_edges(
            graph, reps, sorted_u, sorted_v, order
        )
        active = sizes[frag_reps] < threshold
        sel_eids = edge_ids[active]
        sel_nodes = nodes[active]

        new_edges = np.unique(sel_eids).tolist()
        raw_phases.append(
            {
                "index": phase_index,
                "sel_eids": sel_eids,
                "sel_nodes": sel_nodes,
                "new_edges": new_edges,
            }
        )
        for eid in new_edges:
            uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid]))
            all_selected.add(eid)
        if phase_index > graph.n:  # pragma: no cover - safety net
            raise RuntimeError("Borůvka did not converge")

    mst_edges = sorted(all_selected)
    if len(mst_edges) != graph.n - 1:  # pragma: no cover - internal invariant
        raise RuntimeError("Borůvka produced a non-spanning edge set")
    tree = build_rooted_tree(graph, mst_edges, root=root)

    # ---------- annotate phases ----------
    # partitions are rebuilt incrementally: one union-find accumulates the
    # selected edges phase by phase, and each phase's partition is one bulk
    # roots_array pass instead of a fresh union-find over all earlier edges;
    # every per-selection field (ports, ranks, index pairs, orientations,
    # levels, DFS indices) is gathered with one vectorised pass per phase
    phases: List[BoruvkaPhase] = []
    limit = len(raw_phases) if max_phases is None else min(max_phases, len(raw_phases))
    annotate_uf = UnionFind(graph.n)
    parent_edge_arr = np.asarray(tree.parent_edge, dtype=np.int64)
    slot_rank, slot_x, slot_y = graph._slot_orders()
    offsets = graph._offsets
    for raw in raw_phases[:limit]:
        i = raw["index"]
        partition = FragmentPartition.from_roots(tree, annotate_uf.roots_array())
        ftree = partition.fragment_tree()
        active = tuple(partition.active_fragments(i))
        eids = raw["sel_eids"]
        choosing = raw["sel_nodes"]
        frag_of = partition.fragment_of_array()
        at_u = graph.edge_u[eids] == choosing
        target = np.where(at_u, graph.edge_v[eids], graph.edge_u[eids])
        port = np.where(at_u, graph.edge_port_u[eids], graph.edge_port_v[eids])
        slot = offsets[choosing] + port
        frag = frag_of[choosing]
        counts = np.fromiter(
            (len(g) for g in partition.members), dtype=np.int64,
            count=partition.num_fragments,
        )
        levels = np.asarray(ftree.depth, dtype=np.int64) % 2
        target_frag = frag_of[target]
        fields = zip(
            frag.tolist(),
            counts[frag].tolist(),
            choosing.tolist(),
            eids.tolist(),
            port.tolist(),
            graph.edge_w[eids].tolist(),
            (slot_rank[slot] + 1).tolist(),
            (slot_x[slot] + 1).tolist(),
            (slot_y[slot] + 1).tolist(),
            (parent_edge_arr[choosing] == eids).tolist(),
            target.tolist(),
            target_frag.tolist(),
            levels[frag].tolist(),
            levels[target_frag].tolist(),
            (partition.preorder_positions()[choosing] + 1).tolist(),
        )
        selections = [
            FragmentSelection(
                phase=i,
                fragment=f,
                fragment_size=size,
                choosing_node=node,
                selected_edge=eid,
                port_at_choosing=p,
                weight=w,
                rank_at_choosing=rank,
                index_pair=(x, y),
                is_up=up,
                target_node=tgt,
                target_fragment=tf,
                level_of_fragment=lf,
                level_of_target_fragment=lt,
                choosing_dfs_index=dfs,
            )
            for f, size, node, eid, p, w, rank, x, y, up, tgt, tf, lf, lt, dfs in fields
        ]
        phases.append(
            BoruvkaPhase(
                index=i,
                partition=partition,
                fragment_tree=ftree,
                active=active,
                selections=tuple(selections),
                selected_edge_ids=tuple(raw["new_edges"]),
            )
        )
        for eid in raw["new_edges"]:
            annotate_uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid]))

    trace = BoruvkaTrace(graph=graph, root=root, tree=tree, phases=phases)
    if max_phases is None:
        graph._trace_cache[root] = trace
    return trace

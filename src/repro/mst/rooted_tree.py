"""Rooted spanning trees and the up/down edge orientation of the paper.

The MST problem of the paper asks every node to output the *port number*
of the edge leading to its parent in some rooted MST ``T`` (the root
outputs that it is the root).  :class:`RootedSpanningTree` is the
simulation-level object representing such a rooted tree: it knows parent
pointers, parent ports, depths and subtree structure, and can produce
the expected per-node outputs that the distributed decoders are checked
against.

Section 2.2 of the paper orients every tree edge from the point of view
of a node ``v``: the edge is *up at v* when it is the first edge on the
path from ``v`` to the root, and *down at v* otherwise.  This is exactly
``edge == parent_edge(v)`` here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = ["ROOT_OUTPUT", "RootedSpanningTree", "build_rooted_tree"]

#: Sentinel output value produced by the root node ("I am the root").
ROOT_OUTPUT = -1


@dataclass(frozen=True)
class RootedSpanningTree:
    """A spanning tree of a port-numbered graph, rooted at ``root``."""

    graph: PortNumberedGraph
    root: int
    #: parent node index per node (``-1`` for the root)
    parent: Tuple[int, ...]
    #: edge id of the parent edge per node (``-1`` for the root)
    parent_edge: Tuple[int, ...]
    #: port (at the child) of the parent edge per node (``-1`` for the root)
    parent_port: Tuple[int, ...]
    #: hop depth per node (0 for the root)
    depth: Tuple[int, ...]
    #: sorted edge ids of the tree
    edge_ids: Tuple[int, ...]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    def is_root(self, u: int) -> bool:
        """``True`` iff ``u`` is the root."""
        return u == self.root

    def children(self, u: int) -> List[int]:
        """Children of ``u``, ordered by the ``index_u`` order of the child edges.

        The order matters: the paper's fragment machinery walks subtrees
        "guided by the indexes of the edges ... lower index first".
        """
        return list(self.children_table()[u])

    def children_table(self) -> Tuple[Tuple[int, ...], ...]:
        """Children of every node, each ordered by the ``index_u`` order.

        Computed once in a single bulk pass over the tree edges (the
        fragment machinery asks for children of the same tree across
        every Borůvka phase, so a per-call port scan is quadratic in
        practice) and cached on the instance.
        """
        cached = getattr(self, "_children_table", None)
        if cached is not None:
            return cached
        graph = self.graph
        # rank every child's parent edge at the parent in one bulk gather
        # over the cached slot order, then group children by (parent,
        # rank) with a single lexsort — no per-node rank_of_port calls
        parent = np.asarray(self.parent, dtype=np.int64)
        children = np.flatnonzero(parent >= 0)
        if children.size == 0:
            table = tuple(() for _ in range(graph.n))
            object.__setattr__(self, "_children_table", table)
            return table
        parents = parent[children]
        eids = np.asarray(self.parent_edge, dtype=np.int64)[children]
        at_u = graph.edge_u[eids] == parents
        port_at_parent = np.where(at_u, graph.edge_port_u[eids], graph.edge_port_v[eids])
        rank = graph._slot_orders()[0][graph._offsets[parents] + port_at_parent]
        order = np.lexsort((children, rank, parents))
        kids = children[order].tolist()
        counts = np.bincount(parents, minlength=graph.n)
        bounds = np.concatenate(([0], np.cumsum(counts))).tolist()
        table = tuple(
            tuple(kids[bounds[u] : bounds[u + 1]]) for u in range(graph.n)
        )
        object.__setattr__(self, "_children_table", table)
        return table

    def preorder(self) -> "np.ndarray":
        """DFS preorder of the whole tree (children in ``index_u`` order).

        Computed once and cached; the companion :meth:`preorder_index`
        and :meth:`subtree_span` arrays turn every subtree into a
        contiguous interval of preorder positions, which is what lets the
        fragment machinery and the analytic backend replace per-node tree
        walks with NumPy segment operations.
        """
        cached = getattr(self, "_preorder", None)
        if cached is None:
            table = self.children_table()
            order: List[int] = []
            stack = [self.root]
            while stack:
                u = stack.pop()
                order.append(u)
                stack.extend(reversed(table[u]))
            cached = np.asarray(order, dtype=np.int64)
            object.__setattr__(self, "_preorder", cached)
        return cached

    def preorder_index(self) -> "np.ndarray":
        """Position of every node in :meth:`preorder` (``pos[preorder[k]] == k``)."""
        cached = getattr(self, "_preorder_index", None)
        if cached is None:
            order = self.preorder()
            cached = np.empty(self.n, dtype=np.int64)
            cached[order] = np.arange(self.n)
            object.__setattr__(self, "_preorder_index", cached)
        return cached

    def subtree_span(self) -> "np.ndarray":
        """Per node, one past the last preorder position of its subtree.

        ``preorder()[preorder_index()[u] : subtree_span()[u]]`` is exactly
        the subtree rooted at ``u`` — the classic Euler-interval view.
        """
        cached = getattr(self, "_subtree_span", None)
        if cached is None:
            order = self.preorder()
            # walk the preorder once; a node's interval closes when the
            # walk first reaches a position whose depth is not deeper
            end = np.empty(self.n, dtype=np.int64)
            depth = self.depth
            stack: List[int] = []
            for k, u in enumerate(order.tolist()):
                d = depth[u]
                while stack and depth[stack[-1]] >= d:
                    end[stack.pop()] = k
                stack.append(u)
            for u in stack:
                end[u] = self.n
            cached = end  # indexed by node; values are preorder positions
            object.__setattr__(self, "_subtree_span", cached)
        return cached

    def subtree_nodes(self, u: int) -> List[int]:
        """All nodes of the subtree rooted at ``u`` (preorder)."""
        out: List[int] = []
        stack = [u]
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(reversed(self.children(x)))
        return out

    def subtree_size(self, u: int) -> int:
        """Number of nodes in the subtree rooted at ``u``."""
        return len(self.subtree_nodes(u))

    def path_to_root(self, u: int) -> List[int]:
        """Nodes on the path from ``u`` to the root, inclusive."""
        path = [u]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return path

    def is_up_edge_at(self, node: int, edge_id: int) -> bool:
        """``True`` iff ``edge_id`` is *up at* ``node`` (leads towards the root)."""
        return self.parent_edge[node] == edge_id

    def contains_edge(self, edge_id: int) -> bool:
        """``True`` iff ``edge_id`` is a tree edge."""
        return edge_id in set(self.edge_ids)

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #

    def expected_outputs(self) -> Dict[int, int]:
        """The per-node outputs the MST problem requires for this rooted tree.

        Every non-root node maps to the port of its parent edge; the root
        maps to :data:`ROOT_OUTPUT`.
        """
        out: Dict[int, int] = {}
        for u in range(self.n):
            out[u] = ROOT_OUTPUT if u == self.root else int(self.parent_port[u])
        return out

    def total_weight(self) -> float:
        """Sum of the tree edge weights."""
        return self.graph.total_weight(self.edge_ids)

    def nodes_by_depth(self) -> List[List[int]]:
        """Nodes grouped by depth (index 0 = the root)."""
        buckets: List[List[int]] = [[] for _ in range(max(self.depth) + 1)]
        for u in range(self.n):
            buckets[self.depth[u]].append(u)
        return buckets


def build_rooted_tree(
    graph: PortNumberedGraph,
    tree_edge_ids: Iterable[int],
    root: int = 0,
) -> RootedSpanningTree:
    """Root the spanning tree given by ``tree_edge_ids`` at ``root``.

    Raises ``ValueError`` if the edge set is not a spanning tree of
    ``graph``.  Results are memoised per ``(root, edge set)`` on the
    (immutable) graph instance: the Borůvka tracer, the trivial scheme's
    Kruskal tree and the analytic backend all root the same MST of the
    same instance, and the tree object itself carries useful caches
    (children table, preorder, subtree spans).
    """
    edge_ids = sorted(int(e) for e in tree_edge_ids)
    memo = getattr(graph, "_rooted_tree_cache", None)
    if memo is None:
        memo = {}
        graph._rooted_tree_cache = memo
    memo_key = (root, tuple(edge_ids))
    cached = memo.get(memo_key)
    if cached is not None:
        return cached
    if len(edge_ids) != graph.n - 1:
        raise ValueError(
            f"a spanning tree of {graph.n} nodes needs {graph.n - 1} edges, "
            f"got {len(edge_ids)}"
        )
    if len(set(edge_ids)) != len(edge_ids):
        raise ValueError("duplicate edge ids in the tree edge set")

    # adjacency restricted to the tree (plain array reads, no EdgeRef)
    eids_arr = np.asarray(edge_ids, dtype=np.int64)
    eu = graph.edge_u[eids_arr].tolist()
    ev = graph.edge_v[eids_arr].tolist()
    pu = graph.edge_port_u[eids_arr].tolist()
    pv = graph.edge_port_v[eids_arr].tolist()
    adjacency: List[List[Tuple[int, int, int]]] = [[] for _ in range(graph.n)]
    for k, eid in enumerate(edge_ids):
        adjacency[eu[k]].append((ev[k], eid, pv[k]))
        adjacency[ev[k]].append((eu[k], eid, pu[k]))

    parent = [-1] * graph.n
    parent_edge = [-1] * graph.n
    parent_port = [-1] * graph.n
    depth = [-1] * graph.n
    depth[root] = 0
    queue = deque([root])
    visited = 1
    while queue:
        u = queue.popleft()
        du = depth[u]
        for v, eid, port_v in adjacency[u]:
            if depth[v] >= 0 or v == root:
                continue
            depth[v] = du + 1
            parent[v] = u
            parent_edge[v] = eid
            parent_port[v] = port_v
            visited += 1
            queue.append(v)
    if visited != graph.n:
        raise ValueError("the given edge set does not span the graph")

    tree = RootedSpanningTree(
        graph=graph,
        root=root,
        parent=tuple(parent),
        parent_edge=tuple(parent_edge),
        parent_port=tuple(parent_port),
        depth=tuple(depth),
        edge_ids=tuple(edge_ids),
    )
    memo[memo_key] = tree
    return tree

"""MST and spanning-tree verification.

The distributed decoders output one port per node; the schemes are only
considered correct when these outputs describe a rooted spanning tree of
minimum total weight.  This module provides the checks:

* :func:`is_spanning_tree` — structural check of an edge set;
* :func:`is_minimum_spanning_tree` — weight-optimality via comparison
  with the reference MST (sound because MST weight is unique even when
  the MST itself is not);
* :func:`verify_cut_property` / :func:`verify_cycle_property` — the two
  classical exchange arguments, checked explicitly; they are used by the
  property-based tests and by the ``G_n`` uniqueness check of Theorem 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.union_find import UnionFind

__all__ = [
    "is_spanning_tree",
    "is_minimum_spanning_tree",
    "verify_cut_property",
    "verify_cycle_property",
    "unique_mst_edge_ids",
]


def is_spanning_tree(graph: PortNumberedGraph, edge_ids: Iterable[int]) -> bool:
    """``True`` iff ``edge_ids`` form a spanning tree of ``graph``."""
    ids = list(dict.fromkeys(int(e) for e in edge_ids))
    if len(ids) != graph.n - 1:
        return False
    uf = UnionFind(graph.n)
    for eid in ids:
        if not 0 <= eid < graph.m:
            return False
        if not uf.union(int(graph.edge_u[eid]), int(graph.edge_v[eid])):
            return False  # cycle
    return uf.component_count == 1


def is_minimum_spanning_tree(
    graph: PortNumberedGraph, edge_ids: Iterable[int], tolerance: float = 1e-9
) -> bool:
    """``True`` iff ``edge_ids`` form a spanning tree of minimum total weight."""
    ids = list(int(e) for e in edge_ids)
    if not is_spanning_tree(graph, ids):
        return False
    reference = kruskal_mst(graph)
    return abs(graph.total_weight(ids) - graph.total_weight(reference)) <= tolerance


def verify_cut_property(graph: PortNumberedGraph, edge_ids: Iterable[int]) -> bool:
    """Check the cut property of a spanning tree.

    For every tree edge ``e``: removing ``e`` splits the tree into two
    components, and ``e`` must be a minimum-weight edge crossing that
    cut.  Every MST satisfies this, and any spanning tree satisfying it
    is an MST.
    """
    ids = sorted(int(e) for e in edge_ids)
    if not is_spanning_tree(graph, ids):
        return False
    id_set = set(ids)
    for eid in ids:
        uf = UnionFind(graph.n)
        for other in ids:
            if other != eid:
                uf.union(int(graph.edge_u[other]), int(graph.edge_v[other]))
        w = float(graph.edge_w[eid])
        side = uf.find(int(graph.edge_u[eid]))
        for cand in range(graph.m):
            cu = uf.find(int(graph.edge_u[cand]))
            cv = uf.find(int(graph.edge_v[cand]))
            if cu == cv:
                continue
            if float(graph.edge_w[cand]) < w - 1e-12:
                return False
        _ = side
    return True


def verify_cycle_property(graph: PortNumberedGraph, edge_ids: Iterable[int]) -> bool:
    """Check the cycle property of a spanning tree.

    For every non-tree edge ``e``: ``e`` must be a maximum-weight edge on
    the cycle it closes with the tree.  Every MST satisfies this, and any
    spanning tree satisfying it is an MST.
    """
    ids = set(int(e) for e in edge_ids)
    if not is_spanning_tree(graph, ids):
        return False

    # build tree adjacency for path queries
    adjacency: Dict[int, List[Tuple[int, int]]] = {u: [] for u in range(graph.n)}
    for eid in ids:
        u, v = int(graph.edge_u[eid]), int(graph.edge_v[eid])
        adjacency[u].append((v, eid))
        adjacency[v].append((u, eid))

    def tree_path_edges(a: int, b: int) -> List[int]:
        # BFS from a to b over the tree
        prev: Dict[int, Tuple[int, int]] = {a: (-1, -1)}
        stack = [a]
        while stack:
            x = stack.pop()
            if x == b:
                break
            for y, eid in adjacency[x]:
                if y not in prev:
                    prev[y] = (x, eid)
                    stack.append(y)
        path = []
        cur = b
        while prev[cur][0] != -1:
            path.append(prev[cur][1])
            cur = prev[cur][0]
        return path

    for eid in range(graph.m):
        if eid in ids:
            continue
        u, v, w = int(graph.edge_u[eid]), int(graph.edge_v[eid]), float(graph.edge_w[eid])
        for path_edge in tree_path_edges(u, v):
            if float(graph.edge_w[path_edge]) > w + 1e-12:
                return False
    return True


def unique_mst_edge_ids(graph: PortNumberedGraph) -> Tuple[bool, List[int]]:
    """Return ``(is_unique, mst_edge_ids)`` for the MST of ``graph``.

    The MST is unique iff every non-tree edge is the *strict* maximum on
    the cycle it closes with the reference MST and every tree edge is a
    *strict* minimum across its cut.  We test the equivalent condition
    that swapping any equal-weight non-tree edge for a tree edge on its
    cycle is impossible, which reduces to: for every non-tree edge ``e``
    the cycle it closes contains no tree edge of equal weight.

    Used by the Theorem-1 experiments to certify that ``G_n`` has the
    spine path as its one and only MST.
    """
    tree = kruskal_mst(graph)
    id_set = set(tree)
    adjacency: Dict[int, List[Tuple[int, int]]] = {u: [] for u in range(graph.n)}
    for eid in tree:
        u, v = int(graph.edge_u[eid]), int(graph.edge_v[eid])
        adjacency[u].append((v, eid))
        adjacency[v].append((u, eid))

    def tree_path_edges(a: int, b: int) -> List[int]:
        prev: Dict[int, Tuple[int, int]] = {a: (-1, -1)}
        stack = [a]
        while stack:
            x = stack.pop()
            if x == b:
                break
            for y, eid in adjacency[x]:
                if y not in prev:
                    prev[y] = (x, eid)
                    stack.append(y)
        path = []
        cur = b
        while prev[cur][0] != -1:
            path.append(prev[cur][1])
            cur = prev[cur][0]
        return path

    for eid in range(graph.m):
        if eid in id_set:
            continue
        u, v, w = int(graph.edge_u[eid]), int(graph.edge_v[eid]), float(graph.edge_w[eid])
        for path_edge in tree_path_edges(u, v):
            if abs(float(graph.edge_w[path_edge]) - w) <= 1e-12:
                return False, sorted(tree)
    return True, sorted(tree)

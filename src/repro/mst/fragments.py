"""Fragment partitions and the contracted fragment tree of Section 2.2.

During Borůvka's algorithm the node set is partitioned into *fragments*;
each fragment ``F`` induces a subtree ``T_F`` of the reference MST ``T``
(rooted at ``r_F``, the node of ``F`` closest to the global root ``r``),
and contracting every fragment yields the *tree of fragments* ``T_i``
whose root is the fragment containing ``r``.  The paper assigns every
fragment a *level*: the parity of the depth of its contracted node in
``T_i``.

:class:`FragmentPartition` captures one such partition (derived from the
set of MST edges selected so far), and :class:`FragmentTree` captures
the contracted rooted tree with its levels.  Both are *oracle-side*
objects: the advising schemes use them to decide what advice to write,
and the test-suite uses them to check the structural lemmas of the paper
(Lemma 1, Lemma 2, the level parity of selected edges, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.rooted_tree import RootedSpanningTree
from repro.mst.union_find import UnionFind

__all__ = ["FragmentPartition", "FragmentTree"]


class FragmentPartition:
    """A partition of the nodes into fragments, relative to a rooted MST.

    Fragments are the connected components of the *selected* MST edges;
    every fragment is therefore a connected subtree of the reference
    tree.  Fragment indices are assigned in increasing order of the
    smallest member node, which makes them deterministic.

    The partition is backed by one NumPy fragment-index array; the
    historical tuple views ``fragment_of`` and ``members`` are built
    lazily on first access — the hot path (Borůvka annotation, the
    packers, the analytic backend) only ever touches the arrays, and the
    per-phase nested-tuple construction used to dominate trace time.
    """

    __slots__ = (
        "tree",
        "_frag_array",
        "_num_fragments",
        "_fragment_of_t",
        "_members_t",
        "_cache",
    )

    def __init__(
        self,
        tree: RootedSpanningTree,
        fragment_of: Optional[Sequence[int]] = None,
        members: Optional[Sequence[Sequence[int]]] = None,
        *,
        frag_array: Optional["np.ndarray"] = None,
        num_fragments: Optional[int] = None,
    ):
        self.tree = tree
        if frag_array is None:
            frag_array = np.asarray(tuple(fragment_of or ()), dtype=np.int64)
        self._frag_array = frag_array
        if num_fragments is None:
            num_fragments = int(frag_array.max()) + 1 if frag_array.size else 0
        self._num_fragments = int(num_fragments)
        self._fragment_of_t = tuple(fragment_of) if fragment_of is not None else None
        self._members_t = (
            tuple(tuple(m) for m in members) if members is not None else None
        )
        #: per-instance caches (preorders and fragment roots are requested
        #: by the oracle, the packer and the analytic backend)
        self._cache: Dict = {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FragmentPartition):
            return NotImplemented
        return self.tree == other.tree and np.array_equal(
            self._frag_array, other._frag_array
        )

    def __hash__(self) -> int:
        return hash((self.tree, self.fragment_of))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentPartition(num_fragments={self.num_fragments}, "
            f"n={self._frag_array.size})"
        )

    # ------------------------------------------------------------------ #
    # lazy tuple views
    # ------------------------------------------------------------------ #

    @property
    def fragment_of(self) -> Tuple[int, ...]:
        """Fragment index of every node (lazy tuple view of the array)."""
        if self._fragment_of_t is None:
            self._fragment_of_t = tuple(self._frag_array.tolist())
        return self._fragment_of_t

    @property
    def members(self) -> Tuple[Tuple[int, ...], ...]:
        """Members of every fragment, sorted (lazy nested-tuple view)."""
        if self._members_t is None:
            grouped = np.argsort(self._frag_array, kind="stable").tolist()
            bounds = np.concatenate(
                ([0], np.cumsum(self.fragment_sizes_array()))
            ).tolist()
            self._members_t = tuple(
                tuple(grouped[bounds[f] : bounds[f + 1]])
                for f in range(self._num_fragments)
            )
        return self._members_t

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_selected_edges(
        tree: RootedSpanningTree, selected_edge_ids: Iterable[int]
    ) -> "FragmentPartition":
        """Partition induced by the connected components of ``selected_edge_ids``.

        Every selected edge must be an edge of ``tree`` (fragments are
        always unions of MST subtrees).
        """
        graph = tree.graph
        tree_edges = set(tree.edge_ids)
        uf = UnionFind(graph.n)
        for eid in selected_edge_ids:
            eid = int(eid)
            if eid not in tree_edges:
                raise ValueError(f"edge {eid} is not an edge of the reference MST")
            ref = graph.edge(eid)
            uf.union(ref.u, ref.v)
        return FragmentPartition.from_roots(tree, uf.roots_array())

    @staticmethod
    def from_roots(tree: RootedSpanningTree, roots: "np.ndarray") -> "FragmentPartition":
        """Partition from a per-node representative array, in one bulk pass.

        Fragment indices are assigned in increasing order of the smallest
        member node — identical to the historical per-node
        ``UnionFind.find`` scan, but built from ``np.unique`` instead of
        ``n`` Python-level find calls per phase.
        """
        roots = np.asarray(roots, dtype=np.int64)
        uniq, first_pos, inverse = np.unique(roots, return_index=True, return_inverse=True)
        # np.unique orders groups by representative value; reorder them by
        # first occurrence = smallest member (node indices are scanned in
        # increasing order), the documented deterministic fragment order
        order = np.argsort(first_pos, kind="stable")
        relabel = np.empty(len(uniq), dtype=np.int64)
        relabel[order] = np.arange(len(uniq))
        fragment_of = relabel[inverse]
        return FragmentPartition(
            tree=tree, frag_array=fragment_of, num_fragments=len(uniq)
        )

    @staticmethod
    def singletons(tree: RootedSpanningTree) -> "FragmentPartition":
        """The initial partition: every node is its own fragment."""
        return FragmentPartition.from_selected_edges(tree, [])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_fragments(self) -> int:
        """Number of fragments."""
        return self._num_fragments

    def fragment_of_node(self, u: int) -> int:
        """Fragment index of node ``u``."""
        return int(self._frag_array[u])

    def size(self, f: int) -> int:
        """Number of nodes of fragment ``f``."""
        return int(self.fragment_sizes_array()[f])

    def sizes(self) -> List[int]:
        """Sizes of all fragments."""
        return self.fragment_sizes_array().tolist()

    def fragment_of_array(self) -> "np.ndarray":
        """The per-node fragment index as a NumPy array."""
        return self._frag_array

    def fragment_sizes_array(self) -> "np.ndarray":
        """Per-fragment member counts as a NumPy array (cached)."""
        cached = self._cache.get("sizes_array")
        if cached is None:
            cached = np.bincount(self._frag_array, minlength=self._num_fragments)
            self._cache["sizes_array"] = cached
        return cached

    def preorder_arrays(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """All fragment preorders in one pass: ``(nodes, starts)``.

        ``nodes`` holds every node grouped by fragment, each group in the
        DFS preorder of its fragment subtree; fragment ``f`` occupies
        ``nodes[starts[f] : starts[f + 1]]``.  Built from the whole-tree
        preorder in one ``lexsort``: a fragment is a connected subtree of
        the reference MST, so the restriction of the tree preorder to its
        members *is* its DFS preorder (same children order) — no per-
        fragment Python walk needed.
        """
        cached = self._cache.get("bulk_preorder")
        if cached is None:
            pos = self.tree.preorder_index()
            frag = self.fragment_of_array()
            nodes = np.lexsort((pos, frag))
            counts = np.bincount(frag, minlength=self.num_fragments)
            starts = np.zeros(self.num_fragments + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            cached = (nodes, starts)
            self._cache["bulk_preorder"] = cached
        return cached

    def preorder_positions(self) -> "np.ndarray":
        """Per node, its 0-based position in its fragment's DFS preorder."""
        cached = self._cache.get("bulk_positions")
        if cached is None:
            nodes, starts = self.preorder_arrays()
            frag = self.fragment_of_array()[nodes]
            cached = np.empty(nodes.size, dtype=np.int64)
            cached[nodes] = np.arange(nodes.size) - starts[frag]
            self._cache["bulk_positions"] = cached
        return cached

    def root_of(self, f: int) -> int:
        """``r_F``: the node of fragment ``f`` closest (in the MST) to the global root."""
        nodes, starts = self.preorder_arrays()
        # the shallowest member is the ancestor of every other member of
        # the connected subtree, hence the first in its preorder group
        return int(nodes[starts[f]])

    def active_fragments(self, phase: int) -> List[int]:
        """Fragments that are *active* at ``phase`` (``|F| < 2^phase``)."""
        threshold = 1 << phase
        return np.flatnonzero(self.fragment_sizes_array() < threshold).tolist()

    def internal_edge_ids(self, f: int) -> List[int]:
        """MST edges with both endpoints inside fragment ``f`` (the edges of ``T_F``)."""
        nodes, starts = self.preorder_arrays()
        member_set = set(nodes[starts[f] : starts[f + 1]].tolist())
        graph = self.tree.graph
        out = []
        for eid in self.tree.edge_ids:
            ref = graph.edge(eid)
            if ref.u in member_set and ref.v in member_set:
                out.append(eid)
        return sorted(out)

    def parent_in_fragment(self, u: int) -> Optional[int]:
        """Parent of ``u`` inside its fragment subtree ``T_F`` (``None`` for ``r_F``)."""
        p = self.tree.parent[u]
        if p < 0 or self._frag_array[p] != self._frag_array[u]:
            return None
        return p

    def children_in_fragment(self, u: int) -> List[int]:
        """Children of ``u`` inside ``T_F``, ordered by edge index at ``u``."""
        f = self._frag_array[u]
        fragment_of = self._frag_array
        return [v for v in self.tree.children_table()[u] if fragment_of[v] == f]

    def depth_in_fragment(self, u: int) -> int:
        """Depth of ``u`` within its fragment subtree ``T_F``."""
        r = self.root_of(int(self._frag_array[u]))
        return self.tree.depth[u] - self.tree.depth[r]

    def dfs_preorder(self, f: int) -> List[int]:
        """DFS preorder of ``T_F`` from ``r_F``, children in edge-index order.

        This is the canonical ordering along which the Theorem-3 oracle
        distributes the fragment advice ``A(F)`` over the nodes of ``F``
        (deviation D6 in DESIGN.md: DFS preorder instead of BFS; the
        ``j``-th node in preorder is at depth at most ``j - 1``, so every
        round bound of the paper is preserved).

        The preorder of each fragment is computed once and cached: the
        Borůvka tracer, the Theorem-3 packer and the analytic backend all
        walk the same fragments of the same partition objects.
        """
        preorders = self._cache.get("preorders")
        if preorders is None:
            preorders = {}
            self._cache["preorders"] = preorders
        cached = preorders.get(f)
        if cached is None:
            nodes, starts = self.preorder_arrays()
            cached = nodes[starts[f] : starts[f + 1]].tolist()
            preorders[f] = cached
        return list(cached)

    def fragment_diameter_bound(self, f: int) -> int:
        """Maximum depth of ``T_F`` — an upper bound used for round budgeting."""
        nodes, starts = self.preorder_arrays()
        seg = nodes[starts[f] : starts[f + 1]]
        depths = np.asarray(self.tree.depth, dtype=np.int64)[seg]
        # the first preorder node is r_F, the shallowest member
        return int((depths - depths[0]).max())

    # ------------------------------------------------------------------ #
    # contraction
    # ------------------------------------------------------------------ #

    def fragment_tree(self) -> "FragmentTree":
        """Contract every fragment and root the result at the root's fragment.

        Computed once per partition and cached; the contracted depths are
        derived in one vectorised pass (no per-fragment loop): the depth
        of a fragment equals the number of fragment-crossing tree edges on
        the MST path from the global root to ``r_F``, and every crossing
        edge contributes +1 to exactly the whole-tree preorder interval of
        the subtree below it, so a difference array + cumsum over preorder
        positions yields all contracted depths at once.
        """
        cached = self._cache.get("fragment_tree")
        if cached is not None:
            return cached
        tree = self.tree
        k = self.num_fragments
        nodes, starts = self.preorder_arrays()
        frag_roots = nodes[starts[:-1]]  # r_F per fragment, in one gather
        frag = self._frag_array
        tree_parent = np.asarray(tree.parent, dtype=np.int64)
        root_parents = tree_parent[frag_roots]
        has_parent = root_parents >= 0
        parent_fragment = np.full(k, -1, dtype=np.int64)
        parent_fragment[has_parent] = frag[root_parents[has_parent]]
        connecting_edge = np.where(
            has_parent, np.asarray(tree.parent_edge, dtype=np.int64)[frag_roots], -1
        )

        pre = tree.preorder_index()
        span = tree.subtree_span()
        crossing = np.flatnonzero(
            (tree_parent >= 0) & (frag[np.maximum(tree_parent, 0)] != frag)
        )
        diff = np.zeros(frag.size + 1, dtype=np.int64)
        np.add.at(diff, pre[crossing], 1)
        np.subtract.at(diff, span[crossing], 1)
        depth_by_pos = np.cumsum(diff[:-1])
        depth = depth_by_pos[pre[frag_roots]]
        ftree = FragmentTree(
            partition=self,
            root_fragment=int(frag[tree.root]),
            parent_fragment=tuple(parent_fragment.tolist()),
            connecting_edge=tuple(connecting_edge.tolist()),
            depth=tuple(depth.tolist()),
        )
        self._cache["fragment_tree"] = ftree
        self._cache["ftree_depth_array"] = depth
        return ftree


@dataclass(frozen=True)
class FragmentTree:
    """The contracted, rooted "tree of fragments" ``T_i`` with its levels."""

    partition: FragmentPartition
    root_fragment: int
    #: parent fragment of every fragment (``-1`` for the root fragment)
    parent_fragment: Tuple[int, ...]
    #: MST edge id connecting a fragment's root ``r_F`` to its parent fragment
    connecting_edge: Tuple[int, ...]
    #: depth of every fragment in the contracted tree
    depth: Tuple[int, ...]

    @property
    def num_fragments(self) -> int:
        """Number of fragments (nodes of the contracted tree)."""
        return len(self.parent_fragment)

    def level(self, f: int) -> int:
        """The paper's fragment level: parity of the contracted depth (0 or 1)."""
        return self.depth[f] % 2

    def level_of_node(self, u: int) -> int:
        """Level of the fragment containing node ``u``."""
        return self.level(self.partition.fragment_of_node(u))

    def depth_array(self) -> "np.ndarray":
        """Contracted depth per fragment as a NumPy array (cached)."""
        cached = self.partition._cache.get("ftree_depth_array")
        if cached is None:
            cached = np.asarray(self.depth, dtype=np.int64)
            self.partition._cache["ftree_depth_array"] = cached
        return cached

    def children_fragments(self, f: int) -> List[int]:
        """Fragments whose parent is ``f``."""
        return [g for g in range(self.num_fragments) if self.parent_fragment[g] == f]

    def are_adjacent(self, f: int, g: int) -> bool:
        """``True`` iff ``f`` and ``g`` are joined by an MST edge (parent/child)."""
        return self.parent_fragment[f] == g or self.parent_fragment[g] == f

"""Fragment partitions and the contracted fragment tree of Section 2.2.

During Borůvka's algorithm the node set is partitioned into *fragments*;
each fragment ``F`` induces a subtree ``T_F`` of the reference MST ``T``
(rooted at ``r_F``, the node of ``F`` closest to the global root ``r``),
and contracting every fragment yields the *tree of fragments* ``T_i``
whose root is the fragment containing ``r``.  The paper assigns every
fragment a *level*: the parity of the depth of its contracted node in
``T_i``.

:class:`FragmentPartition` captures one such partition (derived from the
set of MST edges selected so far), and :class:`FragmentTree` captures
the contracted rooted tree with its levels.  Both are *oracle-side*
objects: the advising schemes use them to decide what advice to write,
and the test-suite uses them to check the structural lemmas of the paper
(Lemma 1, Lemma 2, the level parity of selected edges, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.rooted_tree import RootedSpanningTree
from repro.mst.union_find import UnionFind

__all__ = ["FragmentPartition", "FragmentTree"]


@dataclass(frozen=True)
class FragmentPartition:
    """A partition of the nodes into fragments, relative to a rooted MST.

    Fragments are the connected components of the *selected* MST edges;
    every fragment is therefore a connected subtree of the reference
    tree.  Fragment indices are assigned in increasing order of the
    smallest member node, which makes them deterministic.
    """

    tree: RootedSpanningTree
    #: fragment index of every node
    fragment_of: Tuple[int, ...]
    #: members of every fragment, sorted
    members: Tuple[Tuple[int, ...], ...]
    #: per-instance caches (preorders and fragment roots are requested for
    #: the same fragment by the oracle, the packer and the analytic
    #: backend; ``compare=False`` keeps dataclass equality value-based)
    _cache: Dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_selected_edges(
        tree: RootedSpanningTree, selected_edge_ids: Iterable[int]
    ) -> "FragmentPartition":
        """Partition induced by the connected components of ``selected_edge_ids``.

        Every selected edge must be an edge of ``tree`` (fragments are
        always unions of MST subtrees).
        """
        graph = tree.graph
        tree_edges = set(tree.edge_ids)
        uf = UnionFind(graph.n)
        for eid in selected_edge_ids:
            eid = int(eid)
            if eid not in tree_edges:
                raise ValueError(f"edge {eid} is not an edge of the reference MST")
            ref = graph.edge(eid)
            uf.union(ref.u, ref.v)
        return FragmentPartition.from_roots(tree, uf.roots_array())

    @staticmethod
    def from_roots(tree: RootedSpanningTree, roots: "np.ndarray") -> "FragmentPartition":
        """Partition from a per-node representative array, in one bulk pass.

        Fragment indices are assigned in increasing order of the smallest
        member node — identical to the historical per-node
        ``UnionFind.find`` scan, but built from ``np.unique`` instead of
        ``n`` Python-level find calls per phase.
        """
        roots = np.asarray(roots, dtype=np.int64)
        uniq, first_pos, inverse = np.unique(roots, return_index=True, return_inverse=True)
        # np.unique orders groups by representative value; reorder them by
        # first occurrence = smallest member (node indices are scanned in
        # increasing order), the documented deterministic fragment order
        order = np.argsort(first_pos, kind="stable")
        relabel = np.empty(len(uniq), dtype=np.int64)
        relabel[order] = np.arange(len(uniq))
        fragment_of = relabel[inverse]
        # members grouped by fragment: a stable argsort keeps node order
        # within each group, and C-level list slicing replaces the
        # historical per-node append loop
        grouped = np.argsort(fragment_of, kind="stable").tolist()
        counts = np.bincount(fragment_of, minlength=len(uniq))
        bounds = np.concatenate(([0], np.cumsum(counts))).tolist()
        members = tuple(
            tuple(grouped[bounds[f] : bounds[f + 1]]) for f in range(len(uniq))
        )
        partition = FragmentPartition(
            tree=tree,
            fragment_of=tuple(fragment_of.tolist()),
            members=members,
        )
        partition._cache["fragment_of_array"] = fragment_of
        return partition

    @staticmethod
    def singletons(tree: RootedSpanningTree) -> "FragmentPartition":
        """The initial partition: every node is its own fragment."""
        return FragmentPartition.from_selected_edges(tree, [])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_fragments(self) -> int:
        """Number of fragments."""
        return len(self.members)

    def fragment_of_node(self, u: int) -> int:
        """Fragment index of node ``u``."""
        return self.fragment_of[u]

    def size(self, f: int) -> int:
        """Number of nodes of fragment ``f``."""
        return len(self.members[f])

    def sizes(self) -> List[int]:
        """Sizes of all fragments."""
        return [len(m) for m in self.members]

    def fragment_of_array(self) -> "np.ndarray":
        """The per-node fragment index as a NumPy array (cached)."""
        cached = self._cache.get("fragment_of_array")
        if cached is None:
            cached = np.asarray(self.fragment_of, dtype=np.int64)
            self._cache["fragment_of_array"] = cached
        return cached

    def preorder_arrays(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """All fragment preorders in one pass: ``(nodes, starts)``.

        ``nodes`` holds every node grouped by fragment, each group in the
        DFS preorder of its fragment subtree; fragment ``f`` occupies
        ``nodes[starts[f] : starts[f + 1]]``.  Built from the whole-tree
        preorder in one ``lexsort``: a fragment is a connected subtree of
        the reference MST, so the restriction of the tree preorder to its
        members *is* its DFS preorder (same children order) — no per-
        fragment Python walk needed.
        """
        cached = self._cache.get("bulk_preorder")
        if cached is None:
            pos = self.tree.preorder_index()
            frag = self.fragment_of_array()
            nodes = np.lexsort((pos, frag))
            counts = np.bincount(frag, minlength=self.num_fragments)
            starts = np.zeros(self.num_fragments + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            cached = (nodes, starts)
            self._cache["bulk_preorder"] = cached
        return cached

    def preorder_positions(self) -> "np.ndarray":
        """Per node, its 0-based position in its fragment's DFS preorder."""
        cached = self._cache.get("bulk_positions")
        if cached is None:
            nodes, starts = self.preorder_arrays()
            frag = self.fragment_of_array()[nodes]
            cached = np.empty(nodes.size, dtype=np.int64)
            cached[nodes] = np.arange(nodes.size) - starts[frag]
            self._cache["bulk_positions"] = cached
        return cached

    def root_of(self, f: int) -> int:
        """``r_F``: the node of fragment ``f`` closest (in the MST) to the global root."""
        nodes, starts = self.preorder_arrays()
        # the shallowest member is the ancestor of every other member of
        # the connected subtree, hence the first in its preorder group
        return int(nodes[starts[f]])

    def active_fragments(self, phase: int) -> List[int]:
        """Fragments that are *active* at ``phase`` (``|F| < 2^phase``)."""
        threshold = 1 << phase
        return [f for f in range(self.num_fragments) if self.size(f) < threshold]

    def internal_edge_ids(self, f: int) -> List[int]:
        """MST edges with both endpoints inside fragment ``f`` (the edges of ``T_F``)."""
        member_set = set(self.members[f])
        graph = self.tree.graph
        out = []
        for eid in self.tree.edge_ids:
            ref = graph.edge(eid)
            if ref.u in member_set and ref.v in member_set:
                out.append(eid)
        return sorted(out)

    def parent_in_fragment(self, u: int) -> Optional[int]:
        """Parent of ``u`` inside its fragment subtree ``T_F`` (``None`` for ``r_F``)."""
        p = self.tree.parent[u]
        if p < 0 or self.fragment_of[p] != self.fragment_of[u]:
            return None
        return p

    def children_in_fragment(self, u: int) -> List[int]:
        """Children of ``u`` inside ``T_F``, ordered by edge index at ``u``."""
        f = self.fragment_of[u]
        fragment_of = self.fragment_of
        return [v for v in self.tree.children_table()[u] if fragment_of[v] == f]

    def depth_in_fragment(self, u: int) -> int:
        """Depth of ``u`` within its fragment subtree ``T_F``."""
        r = self.root_of(self.fragment_of[u])
        return self.tree.depth[u] - self.tree.depth[r]

    def dfs_preorder(self, f: int) -> List[int]:
        """DFS preorder of ``T_F`` from ``r_F``, children in edge-index order.

        This is the canonical ordering along which the Theorem-3 oracle
        distributes the fragment advice ``A(F)`` over the nodes of ``F``
        (deviation D6 in DESIGN.md: DFS preorder instead of BFS; the
        ``j``-th node in preorder is at depth at most ``j - 1``, so every
        round bound of the paper is preserved).

        The preorder of each fragment is computed once and cached: the
        Borůvka tracer, the Theorem-3 packer and the analytic backend all
        walk the same fragments of the same partition objects.
        """
        preorders = self._cache.get("preorders")
        if preorders is None:
            preorders = {}
            self._cache["preorders"] = preorders
        cached = preorders.get(f)
        if cached is None:
            nodes, starts = self.preorder_arrays()
            cached = nodes[starts[f] : starts[f + 1]].tolist()
            preorders[f] = cached
        return list(cached)

    def fragment_diameter_bound(self, f: int) -> int:
        """Maximum depth of ``T_F`` — an upper bound used for round budgeting."""
        return max(self.depth_in_fragment(u) for u in self.members[f])

    # ------------------------------------------------------------------ #
    # contraction
    # ------------------------------------------------------------------ #

    def fragment_tree(self) -> "FragmentTree":
        """Contract every fragment and root the result at the root's fragment."""
        tree = self.tree
        k = self.num_fragments
        nodes, starts = self.preorder_arrays()
        frag_roots = nodes[starts[:-1]]  # r_F per fragment, in one gather
        tree_parent = np.asarray(tree.parent, dtype=np.int64)
        tree_depth = np.asarray(tree.depth, dtype=np.int64)
        root_parents = tree_parent[frag_roots]
        has_parent = root_parents >= 0
        parent_fragment = np.full(k, -1, dtype=np.int64)
        parent_fragment[has_parent] = self.fragment_of_array()[
            root_parents[has_parent]
        ]
        connecting_edge = np.where(
            has_parent, np.asarray(tree.parent_edge, dtype=np.int64)[frag_roots], -1
        )

        # depths in the contracted tree: fragments ordered by the MST depth
        # of their root are topologically sorted w.r.t. the contracted
        # parent relation
        depth = [-1] * k
        root_fragment = self.fragment_of[tree.root]
        depth[root_fragment] = 0
        order = np.argsort(tree_depth[frag_roots], kind="stable").tolist()
        parent_list = parent_fragment.tolist()
        for f in order:
            if f == root_fragment:
                continue
            depth[f] = depth[parent_list[f]] + 1
        return FragmentTree(
            partition=self,
            root_fragment=root_fragment,
            parent_fragment=tuple(parent_list),
            connecting_edge=tuple(connecting_edge.tolist()),
            depth=tuple(depth),
        )


@dataclass(frozen=True)
class FragmentTree:
    """The contracted, rooted "tree of fragments" ``T_i`` with its levels."""

    partition: FragmentPartition
    root_fragment: int
    #: parent fragment of every fragment (``-1`` for the root fragment)
    parent_fragment: Tuple[int, ...]
    #: MST edge id connecting a fragment's root ``r_F`` to its parent fragment
    connecting_edge: Tuple[int, ...]
    #: depth of every fragment in the contracted tree
    depth: Tuple[int, ...]

    @property
    def num_fragments(self) -> int:
        """Number of fragments (nodes of the contracted tree)."""
        return len(self.parent_fragment)

    def level(self, f: int) -> int:
        """The paper's fragment level: parity of the contracted depth (0 or 1)."""
        return self.depth[f] % 2

    def level_of_node(self, u: int) -> int:
        """Level of the fragment containing node ``u``."""
        return self.level(self.partition.fragment_of[u])

    def children_fragments(self, f: int) -> List[int]:
        """Fragments whose parent is ``f``."""
        return [g for g in range(self.num_fragments) if self.parent_fragment[g] == f]

    def are_adjacent(self, f: int, g: int) -> bool:
        """``True`` iff ``f`` and ``g`` are joined by an MST edge (parent/child)."""
        return self.parent_fragment[f] == g or self.parent_fragment[g] == f

"""Prim's algorithm under the canonical ``(weight, edge_id)`` order.

Provided as an independent sequential reference: the test suite checks
that Prim, Kruskal and Borůvka all return exactly the same edge set (the
reference MST ``T*``) on every instance, which is a strong cross-check
of the canonical tie-breaking.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = ["prim_mst"]


def prim_mst(graph: PortNumberedGraph, start: int = 0) -> List[int]:
    """Edge ids of the reference MST ``T*`` of ``graph`` (grown from ``start``)."""
    if not graph.is_connected():
        raise ValueError("MST is undefined on a disconnected graph")
    n = graph.n
    in_tree = [False] * n
    in_tree[start] = True
    tree: List[int] = []

    heap: List[tuple] = []
    for p in graph.ports(start):
        eid = graph.edge_id(start, p)
        heapq.heappush(heap, (graph.edge_w[eid], eid, graph.neighbor(start, p)))

    while heap and len(tree) < n - 1:
        _, eid, v = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = True
        tree.append(int(eid))
        for p in graph.ports(v):
            nxt = graph.neighbor(v, p)
            if not in_tree[nxt]:
                ne = graph.edge_id(v, p)
                heapq.heappush(heap, (graph.edge_w[ne], ne, nxt))
    return sorted(tree)

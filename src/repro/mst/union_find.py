"""Disjoint-set forest (union by rank, path compression).

Used by Kruskal, by the Borůvka phase machinery, and by several
verifiers.  The implementation also tracks component sizes, which the
Borůvka variant of the paper needs to decide which fragments are
*active* at a phase (``|F| < 2^i``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over the integers ``0 .. n - 1``."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("UnionFind needs at least one element")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._size = [1] * n
        self._count = n

    @property
    def n(self) -> int:
        """Number of elements."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; return ``True`` if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """``True`` iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def roots_array(self) -> np.ndarray:
        """Representative of every element, as one bulk array pass.

        Equivalent to ``[self.find(x) for x in range(n)]`` but computed
        with vectorised pointer jumping (``p = parent[p]`` until a fixed
        point, which takes ``O(log depth)`` array passes) followed by a
        full path-compression write-back.  Representatives are identical
        to per-call :meth:`find` — compression never changes roots — so
        callers that previously paid ``n`` Python-level ``find`` calls
        per phase (the Borůvka loop, :meth:`components`) now pay a few
        NumPy passes instead.
        """
        parent = np.asarray(self._parent, dtype=np.int64)
        roots = parent[parent]
        while not np.array_equal(roots, parent):
            parent = roots
            roots = parent[parent]
        self._parent = roots.tolist()
        return roots

    def components(self) -> List[List[int]]:
        """All sets, as sorted lists of elements, sorted by representative."""
        groups: Dict[int, List[int]] = {}
        for x, root in enumerate(self.roots_array().tolist()):
            groups.setdefault(root, []).append(x)
        # elements are appended in increasing order, so each group is sorted
        return [members for _, members in sorted(groups.items())]

    def representatives(self) -> List[int]:
        """The representative of every element, indexed by element."""
        return self.roots_array().tolist()

    @classmethod
    def from_groups(cls, n: int, groups: Iterable[Iterable[int]]) -> "UnionFind":
        """Build a union-find already merged according to ``groups``."""
        uf = cls(n)
        for group in groups:
            it = iter(group)
            try:
                first = next(it)
            except StopIteration:
                continue
            for member in it:
                uf.union(first, member)
        return uf

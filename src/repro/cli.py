"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the library's main workflows without writing any Python:

``info``
    Summary of the model, the schemes and their claimed bounds.
``run``
    Run one advising scheme (or no-advice baseline) on one generated
    instance and print the measured report.
``tradeoff``
    The measured advice-size / round-complexity trade-off table on one
    instance (experiment E6).
``sweep``
    Advice and round curves of one scheme over a range of sizes
    (``--jobs N`` fans the runs over worker processes, ``--cache-dir``
    reuses results across invocations).
``bench``
    Repeated runs of one scheme/baseline on one instance family, timed;
    reports runs/second (the runner's micro-benchmark).  ``--backend
    both`` times the engine and the analytic backend side by side,
    ``--snapshot`` persists the summary as a ``BENCH_<rev>.json`` perf
    snapshot at the repo root, and ``--baseline FILE`` compares against a
    committed snapshot, warning on a >20% throughput regression.
``report``
    Regenerate a full result set from a declarative TOML/JSON spec
    (``--spec specs/paper.toml --out reports/``): every experiment is
    compiled into a task grid, executed through the cached parallel
    runner, and rendered as Markdown/CSV artifacts.
``store``
    Maintain the SQLite result store behind ``--cache-dir``:
    ``stats`` (rows/bytes per shard), ``gc`` (drop rows no current task
    hash can reference; with ``--queue-dir`` also prune terminal service
    jobs past ``--job-ttl`` and their orphaned artifacts, keeping the
    ``--keep-last`` newest), ``migrate`` (import a JSON cache directory).
``lowerbound``
    The Theorem-1 fooling-family experiment and pigeonhole table.
``serve``
    The fault-tolerant sweep service: an HTTP daemon that accepts spec
    submissions, deduplicates identical workloads by content hash, and
    executes them through a durable lease queue (``--queue-dir``)
    drained by crash-safe workers.  SIGTERM drains gracefully.  The
    daemon exports Prometheus metrics at ``/metrics``; ``serve events``
    tails the structured event log and ``serve submit`` POSTs a spec
    file (``--priority high`` for the urgent lane).
``worker``
    Attach one extra worker process to a queue directory (``repro
    serve`` spawns its own; this adds capacity from other shells or
    machines sharing the filesystem).

Every command is deterministic given ``--seed``; ``sweep --jobs N``
produces byte-identical output to the serial path, and so do
``--cache-backend json`` vs ``sqlite`` and fresh vs ``--resume``\\ d
runs (``--resume`` checkpoints a run manifest so a killed sweep or
report restarts without recomputing finished work).
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.analysis.sweep import run_scheme_sweep
from repro.analysis.tables import format_table
from repro.analysis.tradeoff import theoretical_tradeoff_rows, tradeoff_rows
from repro.core.lower_bound import (
    average_advice_lower_bound,
    run_fooling_experiment,
    truncated_trivial_failures,
)
from repro.core.oracle import run_scheme
from repro.core.problem import DEFAULT_PROBLEM, get_problem, problem_names, split_target
from repro.core.scheme_average import paper_average_constant
from repro.distributed.base import run_baseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.runner.plan import ExecutionStats
from repro.runner.registry import (
    BACKENDS,
    BASELINES,
    GRAPH_FAMILIES,
    SCHEMES,
    build_graph,
    resolve_baseline,
    resolve_scheme,
)
from repro.runner.runner import GROUPING_MODES, run_tasks
from repro.runner.store import (
    CACHE_BACKENDS,
    DEFAULT_CACHE_BACKEND,
    DEFAULT_SHARDS,
    STORE_SCHEMA_VERSION,
    SQLiteResultStore,
    open_result_store,
)
from repro.runner.tasks import GraphSpec, SweepTask

__all__ = ["main", "build_parser", "SCHEMES", "BASELINES"]


def _make_graph(kind: str, n: int, seed: int, density: float) -> PortNumberedGraph:
    """Build the instance requested on the command line."""
    return build_graph(kind, n, seed, density)


def _target_choices(kinds: Sequence[str] = ("scheme", "baseline")) -> List[str]:
    """Every registry target a command accepts: bare and qualified names.

    Derived from the problem registry, never hand-maintained: each
    problem contributes its bare scheme/baseline names (resolved against
    ``--problem``) and their ``problem/name`` qualified forms.
    """
    names = set()
    for problem_name in problem_names():
        problem = get_problem(problem_name)
        for kind in kinds:
            table = problem.schemes if kind == "scheme" else problem.baselines
            for bare in table:
                names.add(bare)
                names.add(f"{problem_name}/{bare}")
    return sorted(names)


def _add_problem_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--problem",
        default=DEFAULT_PROBLEM,
        choices=problem_names(),
        help=(
            "problem bare target names resolve against (default: mst); "
            "qualified targets like leader/flag select their problem "
            "directly"
        ),
    )


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--graph",
        default="random",
        choices=list(GRAPH_FAMILIES),
        help="instance family (default: random connected graph)",
    )
    parser.add_argument("--n", type=int, default=128, help="number of nodes (default 128)")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument(
        "--density", type=float, default=0.05, help="extra-edge probability for random graphs"
    )
    parser.add_argument("--root", type=int, default=0, help="root node of the MST (default 0)")
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1: run in-process)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="directory for the on-disk result cache"
    )
    parser.add_argument(
        "--cache-backend",
        default=DEFAULT_CACHE_BACKEND,
        choices=list(CACHE_BACKENDS),
        help=(
            "cache storage under --cache-dir: 'sqlite' is a sharded WAL-mode "
            "store (default), 'json' the historical one-file-per-task cache; "
            "rows are byte-identical either way"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "checkpoint a run manifest per completed group (requires "
            "--cache-dir); a killed run restarted with the same command "
            "re-executes zero finished tasks"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live done/total, cache-hit and ETA reporting on stderr",
    )
    parser.add_argument(
        "--grouping",
        default="instance",
        choices=list(GROUPING_MODES),
        help=(
            "execution planning: 'instance' batches tasks sharing a graph "
            "instance so the graph/trace/advice are built once per group "
            "(default), 'seed-stack' additionally stacks all seeds of a "
            "sweep point through one batched generation/trace/advice pass "
            "(byte-identical rows; unstackable points fall back to "
            "'instance'), 'none' is the historical per-task execution"
        ),
    )


def _add_backend_argument(parser: argparse.ArgumentParser, allow_both: bool = False) -> None:
    choices = list(BACKENDS) + (["both"] if allow_both else [])
    parser.add_argument(
        "--backend",
        default="engine",
        choices=choices,
        help=(
            "decoder execution backend: 'engine' simulates every round, "
            "'analytic' computes the same metrics from the Borůvka trace"
            + (", 'both' times the two side by side" if allow_both else "")
        ),
    )


# --------------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------------- #


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    if getattr(args, "format", "text") == "json":
        payload = {
            "version": repro.__version__,
            "paper": "Local MST computation with short advice (SPAA 2007)",
            "backends": list(BACKENDS),
            "cache": {
                "backend": DEFAULT_CACHE_BACKEND,
                "backends": list(CACHE_BACKENDS),
                "store_schema_version": STORE_SCHEMA_VERSION,
                "store_default_shards": DEFAULT_SHARDS,
            },
            "graph_families": list(GRAPH_FAMILIES),
            "schemes": [
                {
                    "name": name,
                    "class": type(scheme).__name__,
                    "advice_bound_bits_n1024": scheme.advice_bound_bits(1024),
                    "round_bound_n1024": scheme.round_bound(1024),
                }
                for name, scheme in ((n, f()) for n, f in SCHEMES.items())
            ],
            "baselines": [
                {"name": name, "class": type(factory()).__name__}
                for name, factory in BASELINES.items()
            ],
            "problems": [
                {
                    "name": problem.name,
                    "title": problem.title,
                    "schemes": sorted(problem.schemes),
                    "baselines": sorted(problem.baselines),
                }
                for problem in (get_problem(name) for name in problem_names())
            ],
            "theorem2_average_constant_bits": paper_average_constant(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for name, factory in SCHEMES.items():
        scheme = factory()
        rows.append(
            {
                "name": name,
                "class": type(scheme).__name__,
                "advice_bound_bits(n=1024)": scheme.advice_bound_bits(1024),
                "round_bound(n=1024)": scheme.round_bound(1024),
            }
        )
    print("Reproduction of 'Local MST computation with short advice' (SPAA 2007).")
    print("Advising schemes:")
    print(format_table(rows))
    print("\nNo-advice baselines: " + ", ".join(sorted(BASELINES)))
    print("\nProblems hosted on the advising framework:")
    for problem_name in problem_names():
        problem = get_problem(problem_name)
        baselines = ", ".join(sorted(problem.baselines)) or "none"
        print(
            f"  {problem_name:<9} {problem.title} "
            f"(schemes: {', '.join(sorted(problem.schemes))}; "
            f"baselines: {baselines})"
        )
    print("Graph families: " + ", ".join(GRAPH_FAMILIES))
    print(f"Theorem 2 average-advice constant: c = {paper_average_constant():.1f} bits")
    print("Paper bounds for Theorem 3: m = 12 bits, t <= 9*ceil(log2 n) rounds.")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    graph = _make_graph(args.graph, args.n, args.seed, args.density)
    root = args.root % graph.n
    qualifier, bare = split_target(args.scheme)
    problem = get_problem(qualifier or args.problem)
    fault = None
    if args.delta or args.crash_rate or args.churn:
        from repro.simulator.adversary import FaultSpec

        fault = FaultSpec(
            delta=args.delta,
            crash_rate=args.crash_rate,
            recovery=args.recovery,
            churn=args.churn,
        )
        if args.backend != "engine":
            raise ValueError("adversarial execution requires --backend engine")
    if bare in problem.schemes:
        scheme = resolve_scheme(args.scheme, problem=problem.name)
        report = run_scheme(
            scheme, graph, root=root, backend=args.backend, fault=fault, fault_seed=args.seed
        )
        row = report.as_row()
    elif bare in problem.baselines:
        if args.backend != "engine":
            raise ValueError("baselines have no analytic model; use --backend engine")
        baseline_report = run_baseline(
            resolve_baseline(args.scheme, problem=problem.name),
            graph,
            fault=fault,
            fault_seed=args.seed,
        )
        row = baseline_report.as_row()
    else:
        raise ValueError(
            f"problem {problem.name!r} has no target {bare!r}; its schemes are "
            f"{', '.join(sorted(problem.schemes))} and its baselines "
            f"{', '.join(sorted(problem.baselines))}"
        )
    if args.json:
        print(json.dumps(row, indent=2, default=str))
    else:
        print(format_table([row], title=f"{args.scheme} on {args.graph}(n={graph.n}, m={graph.m})"))
    return 0 if row["correct"] else 1


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    graph = _make_graph(args.graph, args.n, args.seed, args.density)
    rows = tradeoff_rows(
        graph,
        root=args.root % graph.n,
        include_baselines=not args.no_baselines,
        include_level_variant=not args.no_level,
    )
    if args.json:
        print(json.dumps(rows, indent=2, default=str))
        return 0
    columns = [
        "scheme",
        "max_advice_bits",
        "avg_advice_bits",
        "rounds",
        "max_edge_bits_per_round",
        "correct",
    ]
    print(
        format_table(
            rows, columns=columns, title=f"measured trade-off on {args.graph}(n={graph.n}, m={graph.m})"
        )
    )
    print()
    print(
        format_table(
            theoretical_tradeoff_rows(graph.n),
            columns=["scheme", "max_advice_bits", "rounds"],
            title="paper's claimed trade-off",
        )
    )
    return 0 if all(r["correct"] for r in rows) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(x) for x in args.sizes.split(",") if x.strip()]
    if not sizes:
        raise ValueError("--sizes must list at least one size")
    seeds = tuple(range(args.repeats))

    # the scheme is passed by registry name and the graph as a GraphSpec so
    # the workload is picklable (--jobs) and content-hashable (--cache-dir)
    result = run_scheme_sweep(
        args.scheme,
        sizes,
        graph_factory=GraphSpec(args.graph, args.density),
        seeds=seeds,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        backend=args.backend,
        grouping=args.grouping,
        cache_backend=args.cache_backend,
        resume=args.resume,
        progress=args.progress or args.resume,
        # a qualified --scheme names its problem directly; --problem only
        # disambiguates bare names (run and bench resolve the same way)
        problem=split_target(args.scheme)[0] or args.problem,
    )
    if args.json:
        print(json.dumps(result.rows, indent=2, default=str))
        return 0
    print(
        result.to_text(
            columns=[
                "n",
                "log2_n",
                "max_advice_bits",
                "avg_advice_bits",
                "rounds",
                "rounds_per_log_n",
                "congest_factor",
                "correct",
            ]
        )
    )
    return 0 if all(result.series("correct")) else 1


def _bench_one_backend(args: argparse.Namespace, backend: str) -> Dict[str, Any]:
    """Time one (scheme, graph, n, backend) workload and summarise it."""
    from repro.runner.tasks import clear_graph_memo

    # cold-start fairness: a previously timed backend must not pre-build
    # this backend's graphs (and their cached traces) outside the window
    clear_graph_memo()
    # --scheme all mirrors the multi-seed trade-off benchmark: every
    # advising scheme of the selected problem over the same instances
    # (graph and Borůvka-trace reuse across schemes is part of the
    # measured workload)
    qualifier, bare = split_target(args.scheme)
    problem = get_problem(qualifier or args.problem)
    targets = sorted(problem.schemes) if bare == "all" else [bare]
    for target in targets:
        if target not in problem.schemes and target not in problem.baselines:
            raise ValueError(
                f"problem {problem.name!r} has no target {target!r}; its "
                f"schemes are {', '.join(sorted(problem.schemes))} and its "
                f"baselines {', '.join(sorted(problem.baselines))}"
            )
    tasks = [
        SweepTask(
            kind="scheme" if target in problem.schemes else "baseline",
            target=target,
            graph=GraphSpec(args.graph, args.density),
            n=args.n,
            seed=args.seed + k,
            root=args.root,
            backend=backend,
            problem=problem.name,
        )
        for k in range(args.repeats)
        for target in targets
    ]
    cache = (
        open_result_store(args.cache_dir, backend=args.cache_backend)
        if args.cache_dir
        else None
    )
    stats = ExecutionStats()
    start = time.perf_counter()
    rows = run_tasks(
        tasks,
        jobs=args.jobs,
        cache_dir=cache,
        grouping=args.grouping,
        stats=stats,
        resume=args.resume,
        progress=args.progress,
        progress_label="bench",
    )
    elapsed = time.perf_counter() - start

    summary = {
        "scheme": args.scheme,
        "graph": args.graph,
        "n": args.n,
        "backend": backend,
        "runs": len(rows),
        # jobs + grouping identify the execution configuration: snapshots
        # measured under different configurations are never comparable
        "jobs": args.jobs,
        "grouping": args.grouping,
        "tier": getattr(args, "tier", "standard"),
        "wall_seconds": round(elapsed, 4),
        "runs_per_second": round(len(rows) / elapsed, 3) if elapsed > 0 else float("inf"),
        # rows served from --cache-dir were not simulated inside the timed
        # window; a nonzero count means runs_per_second measures the cache
        "cache_hits": cache.hits if cache is not None else 0,
        "max_rounds": max(row["rounds"] for row in rows),
        "max_edge_bits": max(row["max_edge_bits"] for row in rows),
        "total_messages": sum(row["total_messages"] for row in rows),
        "correct": all(row["correct"] for row in rows),
    }
    if args.profile:
        summary["instance_groups"] = stats.groups
        summary["stage_seconds"] = stats.stages_dict()
    return summary


def _git_query(args: List[str], fallback: str) -> str:
    """One line of ``git <args>`` output, or ``fallback`` outside git."""
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git binary
        return fallback
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else fallback


def _git_short_rev() -> str:
    """Short revision of the working tree, or ``"local"`` outside git."""
    return _git_query(["rev-parse", "--short", "HEAD"], "local")


def _repo_root() -> Path:
    """The git toplevel directory, or the current directory outside git."""
    return Path(_git_query(["rev-parse", "--show-toplevel"], str(Path.cwd())))


def _bench_rows(payload: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """The per-backend summaries of a bench payload (single or ``both``)."""
    if "results" in payload:
        yield from payload["results"]
    else:
        yield payload


def _write_bench_snapshot(payload: Dict[str, Any], path_arg: Optional[str]) -> Path:
    """Persist a ``BENCH_<rev>.json`` perf snapshot (CI's regression baseline)."""
    rev = _git_short_rev()
    path = Path(path_arg) if path_arg else _repo_root() / f"BENCH_{rev}.json"
    snapshot = {"kind": "bench-snapshot", "rev": rev, "payload": payload}
    path.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    return path


def _check_regression(payload: Dict[str, Any], baseline_path: str) -> int:
    """Compare against a committed snapshot.

    Warns on a >20% ``runs_per_second`` loss and counts a >30% loss as a
    hard failure (the return value; ``bench --baseline`` exits non-zero
    on any, which is what turns CI's perf smoke from warn-only into a
    gate).  Rows measured under a different execution configuration
    (``jobs`` / ``grouping``) are never compared — throughput across
    configurations is apples-to-oranges by construction.
    """
    try:
        baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"warning: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 0
    reference = {
        (row["scheme"], row["graph"], row["n"], row.get("backend", "engine")): row
        for row in _bench_rows(baseline.get("payload", baseline))
        if "runs_per_second" in row
    }
    failures = 0
    for row in _bench_rows(payload):
        key = (row["scheme"], row["graph"], row["n"], row.get("backend", "engine"))
        base_row = reference.get(key)
        if base_row is None:
            print(f"warning: baseline has no entry for {key}", file=sys.stderr)
            continue
        config = (row.get("jobs", 1), row.get("grouping", "instance"))
        # snapshots predating the grouping field were measured per-task
        base_config = (base_row.get("jobs", 1), base_row.get("grouping", "none"))
        if config != base_config:
            print(
                f"warning: skipping {key}: baseline was measured with "
                f"jobs/grouping {base_config}, this run used {config}",
                file=sys.stderr,
            )
            continue
        base_rps = base_row["runs_per_second"]
        current = row["runs_per_second"]
        if current < 0.7 * base_rps:
            failures += 1
            print(
                f"error: perf regression for {key}: {current:.3f} runs/s vs "
                f"baseline {base_rps:.3f} runs/s ({current / base_rps:.0%})",
                file=sys.stderr,
            )
        elif current < 0.8 * base_rps:
            print(
                f"warning: perf regression for {key}: {current:.3f} runs/s vs "
                f"baseline {base_rps:.3f} runs/s ({current / base_rps:.0%})",
                file=sys.stderr,
            )
    return failures


#: the large benchmark tier: the biggest structured instance the
#: generators build in O(m) — hypercube dimension 17 (the ``random``
#: family needs O(n²) candidate-edge memory and stops being feasible
#: around n≈10⁴) — measured through the analytic backend only
_LARGE_TIER = {"graph": "hypercube", "n": 131072, "backend": "analytic"}


def bench_history_entries(directory: Path) -> List[Dict[str, Any]]:
    """Flatten every ``BENCH_*.json`` snapshot under ``directory`` to rows.

    Shared by ``repro bench history`` and ``scripts/update_bench_history.py``
    (which commits the rendered table as ``docs/bench-history.md``), so the
    CLI view and the docs page can never disagree on a row.
    """
    entries: List[Dict[str, Any]] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        payload = snapshot.get("payload", snapshot)
        rev = snapshot.get("rev", path.stem.removeprefix("BENCH_"))
        for row in _bench_rows(payload):
            if "runs_per_second" not in row:
                continue
            stages = row.get("stage_seconds") or {}
            entries.append(
                {
                    "rev": rev,
                    "scheme": row.get("scheme", payload.get("scheme", "?")),
                    "graph": row.get("graph", payload.get("graph", "?")),
                    "n": row.get("n", payload.get("n", "?")),
                    "backend": row.get("backend", "engine"),
                    "grouping": row.get("grouping", "none"),
                    "tier": row.get("tier", "standard"),
                    "runs_per_second": row["runs_per_second"],
                    "stage_seconds": (
                        " ".join(f"{k}={v}" for k, v in stages.items()) or "-"
                    ),
                }
            )
    return entries


#: column order of the bench-history Markdown table
BENCH_HISTORY_COLUMNS = (
    "rev",
    "scheme",
    "graph",
    "n",
    "backend",
    "grouping",
    "tier",
    "runs_per_second",
    "stage_seconds",
)


def bench_history_markdown(entries: Sequence[Dict[str, Any]]) -> str:
    """Render bench-history rows as a GitHub-flavoured Markdown table."""
    columns = BENCH_HISTORY_COLUMNS
    lines = ["| " + " | ".join(columns) + " |"]
    lines.append("|" + "|".join(" --- " for _ in columns) + "|")
    for entry in entries:
        lines.append("| " + " | ".join(str(entry[column]) for column in columns) + " |")
    return "\n".join(lines) + "\n"


def _cmd_bench_history(args: argparse.Namespace) -> int:
    """Collect every ``BENCH_*.json`` snapshot into one Markdown table."""
    directory = Path(args.dir) if args.dir else _repo_root()
    entries = bench_history_entries(directory)
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    if not entries:
        print(f"no BENCH_*.json snapshots under {directory}", file=sys.stderr)
        return 1
    print(bench_history_markdown(entries), end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_command", None) == "history":
        return _cmd_bench_history(args)
    if args.repeats < 1:
        raise ValueError("--repeats must be >= 1")
    if args.tier == "large":
        # the large tier pins the instance and backend; scheme, repeats,
        # grouping and profiling stay selectable
        args.graph = _LARGE_TIER["graph"]
        args.n = _LARGE_TIER["n"]
        args.backend = _LARGE_TIER["backend"]
        args.profile = True
    bench_qualifier, bench_bare = split_target(args.scheme)
    bench_problem = get_problem(bench_qualifier or args.problem)
    if bench_bare in bench_problem.baselines and args.backend != "engine":
        raise ValueError("baselines have no analytic model; use --backend engine")
    backends: List[str] = list(BACKENDS) if args.backend == "both" else [args.backend]
    summaries = [_bench_one_backend(args, backend) for backend in backends]

    all_correct = all(summary["correct"] for summary in summaries)
    if len(summaries) == 1:
        payload: Dict[str, Any] = summaries[0]
    else:
        engine_wall = summaries[0]["wall_seconds"]
        analytic_wall = summaries[1]["wall_seconds"]
        payload = {
            "scheme": args.scheme,
            "graph": args.graph,
            "n": args.n,
            "runs": summaries[0]["runs"],
            "results": summaries,
            "speedup_analytic_vs_engine": (
                round(engine_wall / analytic_wall, 2) if analytic_wall > 0 else None
            ),
        }

    if args.snapshot is not None:
        path = _write_bench_snapshot(payload, args.snapshot or None)
        print(f"perf snapshot written to {path}", file=sys.stderr)
    regressions = 0
    if args.baseline:
        regressions = _check_regression(payload, args.baseline)

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        profile_keys = ("instance_groups", "stage_seconds")
        table_rows = [
            {k: v for k, v in summary.items() if k not in profile_keys}
            for summary in summaries
        ]
        print(
            format_table(
                table_rows,
                title=f"bench: {args.repeats} x {args.scheme} on {args.graph}(n={args.n})",
            )
        )
        if args.profile:
            for summary in summaries:
                stages = summary.get("stage_seconds", {})
                breakdown = "  ".join(f"{k}={v:.4f}s" for k, v in stages.items())
                print(
                    f"profile[{summary['backend']}]: "
                    f"{summary.get('instance_groups', 0)} instance group(s)  "
                    f"{breakdown}"
                )
    return 0 if all_correct and not regressions else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report, load_spec

    spec = load_spec(args.spec)
    result = generate_report(
        spec,
        args.out,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        backend=args.backend,
        grouping=args.grouping,
        cache_backend=args.cache_backend,
        resume=args.resume,
        progress=args.progress or args.resume,
    )
    for name in result.artifacts:
        print(Path(args.out) / name)
    print(
        f"report '{spec.title}': {len(result.artifacts)} artifact(s) from "
        f"{result.tasks_run} run(s); all correct: {result.all_correct}",
        file=sys.stderr,
    )
    return 0 if result.all_correct else 1


def _cmd_store(args: argparse.Namespace) -> int:
    """Maintenance of the sharded SQLite result store (stats/gc/migrate)."""
    directory = Path(args.cache_dir)
    queue_dir = getattr(args, "queue_dir", None)
    has_shards = any(directory.glob("shard-*.sqlite"))
    if args.store_command == "stats" and not has_shards:
        # read/maintenance commands must not conjure an empty store out of
        # a typo'd path and then happily report zero rows
        raise ValueError(f"no result store at {directory} (no shard-*.sqlite files)")
    if args.store_command == "gc" and not has_shards and not queue_dir:
        raise ValueError(f"no result store at {directory} (no shard-*.sqlite files)")
    if args.store_command == "stats":
        payload: Dict[str, Any] = SQLiteResultStore(args.cache_dir).stats()
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"store {payload['directory']}: {payload['rows']} row(s) in "
                f"{payload['shards']} shard(s), {payload['bytes']} bytes "
                f"(schema v{payload['schema_version']})"
            )
            print(format_table(payload["per_shard"]))
        return 0
    if args.store_command == "gc":
        # queue retention first: pruning terminal jobs can orphan result
        # rows, and the shard gc that follows is what reclaims their bytes
        queue_payload: Optional[Dict[str, Any]] = None
        if queue_dir:
            from repro.service.queue import LeaseQueue

            queue_payload = LeaseQueue(Path(queue_dir)).gc(
                job_ttl=args.job_ttl, keep_last=args.keep_last
            )
        if has_shards:
            payload = SQLiteResultStore(args.cache_dir).gc(vacuum=not args.no_vacuum)
        else:
            payload = {"removed": 0, "kept": 0}
        if queue_payload is not None:
            payload["queue"] = {
                "jobs_removed": len(queue_payload["jobs"]),
                "items_removed": len(queue_payload["items"]),
                "quarantine_removed": queue_payload["quarantine"],
                "jobs": queue_payload["jobs"],
            }
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"gc: removed {payload['removed']} stale row(s), "
                f"kept {payload['kept']}"
            )
            if queue_payload is not None:
                print(
                    f"queue gc: removed {len(queue_payload['jobs'])} job(s), "
                    f"{len(queue_payload['items'])} orphaned item(s), "
                    f"{queue_payload['quarantine']} quarantine row(s)"
                )
        return 0
    store = SQLiteResultStore(args.cache_dir)
    # migrate
    payload = store.migrate_json_cache(args.from_json)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"migrate: imported {payload['imported']} row(s) from "
            f"{args.from_json}, skipped {payload['skipped']}"
        )
    return 0


def _cmd_lowerbound(args: argparse.Namespace) -> int:
    h, i = args.h, args.i
    if not 2 <= i <= h - 1:
        raise ValueError("--i must satisfy 2 <= i <= h - 1")
    experiment = run_fooling_experiment(h, i)
    rows = []
    for budget in range(0, math.ceil(math.log2(max(h - i, 2))) + 2):
        result = truncated_trivial_failures(h, i, budget_bits=budget)
        rows.append(
            {
                "advice_bits": budget,
                "groups": result["num_groups"],
                "guaranteed_failures": result["min_failures"],
            }
        )
    payload = {
        "h": h,
        "i": i,
        "variants": experiment.num_variants,
        "views_identical": experiment.views_identical,
        "distinct_correct_ports": experiment.distinct_correct_ports,
        "required_bits": experiment.required_bits,
        "average_lower_bound_bits": average_advice_lower_bound(h),
        "pigeonhole": rows,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"Theorem 1 on G_n with h={h} (n={2*h} nodes), target node u_{i}:")
    print(f"  fooling variants            : {experiment.num_variants}")
    print(f"  identical local views       : {experiment.views_identical}")
    print(f"  pairwise distinct answers   : {experiment.distinct_correct_ports == experiment.num_variants}")
    print(f"  advice bits forced at u_{i}  : >= {experiment.required_bits:.2f}")
    print(f"  average advice lower bound  : {average_advice_lower_bound(h):.2f} bits/node")
    print()
    print(format_table(rows, title="pigeonhole: guaranteed failures of any 0-round decoder"))
    return 0 if experiment.premises_hold else 1


def _retry_policy_from_args(args: argparse.Namespace) -> Any:
    from repro.service.retry import RetryPolicy

    return RetryPolicy(
        max_attempts=args.max_attempts,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        task_timeout=args.task_timeout,
    )


def _cmd_serve_events(args: argparse.Namespace) -> int:
    """Tail the service event log (``repro serve events``)."""
    from repro.service.events import follow_events, read_events

    path = Path(args.queue_dir) / "events.jsonl"
    kinds = args.kind or None
    if args.follow:
        stream = follow_events(path, since=args.since, kinds=kinds)
    else:
        if not path.is_file():
            print(f"no event log at {path}", file=sys.stderr)
            return 1
        stream = read_events(path, since=args.since, kinds=kinds)
    try:
        for event in stream:
            print(json.dumps(event, separators=(",", ":")), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_serve_submit(args: argparse.Namespace) -> int:
    """Submit a spec file to a running daemon (``repro serve submit``)."""
    from urllib.error import HTTPError, URLError
    from urllib.parse import urlencode
    from urllib.request import Request, urlopen

    spec_path = Path(args.spec)
    text = spec_path.read_text(encoding="utf-8")
    fmt = "json" if spec_path.suffix == ".json" else "toml"
    query = {"name": args.name or spec_path.name, "priority": args.priority}
    url = f"{args.url.rstrip('/')}/jobs?{urlencode(query)}"
    request = Request(
        url,
        data=text.encode("utf-8"),
        headers={
            "Content-Type": "application/json" if fmt == "json" else "application/toml"
        },
        method="POST",
    )
    try:
        with urlopen(request, timeout=args.timeout) as response:
            body = json.loads(response.read().decode("utf-8"))
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"error: HTTP {exc.code} from {url}: {detail}", file=sys.stderr)
        return 1
    except (URLError, OSError) as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(body, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if getattr(args, "serve_command", None) == "events":
        return _cmd_serve_events(args)
    if getattr(args, "serve_command", None) == "submit":
        return _cmd_serve_submit(args)
    from repro.service.daemon import serve

    if not args.queue_dir:
        raise ValueError("repro serve requires --queue-dir")
    return serve(
        Path(args.queue_dir),
        host=args.host,
        port=args.port,
        workers=args.workers,
        policy=_retry_policy_from_args(args),
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import run_worker

    processed = run_worker(
        Path(args.queue_dir),
        policy=_retry_policy_from_args(args),
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
        max_items=args.max_items,
        idle_exit=args.idle_exit,
        install_signal_handlers=True,
    )
    print(f"worker: processed {processed} item(s)", file=sys.stderr)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    import repro

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Local MST computation with short advice (SPAA 2007) — reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info_parser = sub.add_parser("info", help="summary of the model, schemes and bounds")
    info_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="output format: human-readable text or machine-readable JSON",
    )

    run_parser = sub.add_parser("run", help="run one scheme or baseline on one instance")
    run_parser.add_argument(
        "--scheme",
        default="theorem3",
        choices=_target_choices(),
        help=(
            "advising scheme or no-advice baseline (default: theorem3); "
            "bare names resolve against --problem, qualified names like "
            "leader/flag pick their problem directly"
        ),
    )
    _add_problem_argument(run_parser)
    _add_graph_arguments(run_parser)
    _add_backend_argument(run_parser)
    run_parser.add_argument(
        "--delta",
        type=int,
        default=0,
        help="adversarial delay bound: each message delivered within this "
        "many extra rounds (default 0 = synchronous)",
    )
    run_parser.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="fraction of nodes crashed once during the run (max 0.25)",
    )
    run_parser.add_argument(
        "--recovery",
        type=int,
        default=2,
        help="rounds a crashed node stays down before restarting (default 2)",
    )
    run_parser.add_argument(
        "--churn",
        type=int,
        default=0,
        help="post-run edge-weight churn events with charged incremental "
        "repair (MST only, default 0)",
    )

    tradeoff_parser = sub.add_parser("tradeoff", help="measured advice/time trade-off table")
    _add_graph_arguments(tradeoff_parser)
    tradeoff_parser.add_argument("--no-baselines", action="store_true", help="skip the no-advice baselines")
    tradeoff_parser.add_argument("--no-level", action="store_true", help="skip the level-coded variant")

    sweep_parser = sub.add_parser("sweep", help="advice/round curves of one scheme over n")
    sweep_parser.add_argument(
        "--scheme", default="theorem3", choices=_target_choices(kinds=("scheme",))
    )
    _add_problem_argument(sweep_parser)
    sweep_parser.add_argument("--sizes", default="32,64,128,256", help="comma-separated node counts")
    sweep_parser.add_argument("--repeats", type=int, default=2, help="seeds per size (default 2)")
    _add_parallel_arguments(sweep_parser)
    _add_graph_arguments(sweep_parser)
    _add_backend_argument(sweep_parser)

    bench_parser = sub.add_parser("bench", help="timed repeated runs (runs/second)")
    bench_parser.add_argument(
        "--scheme",
        default="theorem3",
        choices=_target_choices() + ["all"],
        help=(
            "advising scheme or no-advice baseline (default: theorem3); "
            "'all' runs every scheme of --problem over the same instances, "
            "the shape of the multi-seed trade-off benchmark"
        ),
    )
    _add_problem_argument(bench_parser)
    bench_parser.add_argument("--repeats", type=int, default=10, help="number of runs (default 10)")
    _add_parallel_arguments(bench_parser)
    _add_graph_arguments(bench_parser)
    _add_backend_argument(bench_parser, allow_both=True)
    bench_parser.add_argument(
        "--snapshot",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "write a BENCH_<rev>.json perf snapshot (at the repo root by "
            "default, or to PATH)"
        ),
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "compare runs/second against a committed snapshot; warn on >20%% "
            "regression, exit non-zero on >30%% (configuration-mismatched "
            "rows are skipped, never compared)"
        ),
    )
    bench_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "emit the per-stage timing breakdown (graph build / trace / "
            "advice / backend execution) of the grouped executor; with "
            "--grouping none the stages are not instrumented"
        ),
    )
    bench_parser.add_argument(
        "--tier",
        default="standard",
        choices=["standard", "large"],
        help=(
            "benchmark tier: 'standard' uses --graph/--n/--backend as "
            "given; 'large' pins the hypercube(n=131072) instance on the "
            "analytic backend with profiling on (scheme, repeats and "
            "grouping stay selectable)"
        ),
    )
    bench_sub = bench_parser.add_subparsers(
        dest="bench_command", required=False, metavar="{history}"
    )
    history_parser = bench_sub.add_parser(
        "history",
        help="render every BENCH_*.json snapshot as one Markdown table",
    )
    history_parser.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="directory holding the snapshots (default: the repo root)",
    )
    history_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )

    report_parser = sub.add_parser(
        "report",
        help="regenerate a full result set from a declarative spec",
        description=(
            "Compile a TOML/JSON experiment spec into SweepTask grids, execute "
            "them through the cached parallel runner, and write the paper's "
            "tables as Markdown/CSV artifacts. Artifacts are deterministic: "
            "--jobs and --backend never change a byte."
        ),
    )
    report_parser.add_argument(
        "--spec", required=True, metavar="FILE", help="spec file (e.g. specs/paper.toml)"
    )
    report_parser.add_argument(
        "--out", required=True, metavar="DIR", help="output directory for the artifacts"
    )
    _add_parallel_arguments(report_parser)
    report_parser.add_argument(
        "--backend",
        default=None,
        choices=list(BACKENDS),
        help="override the spec's default execution backend",
    )

    store_parser = sub.add_parser(
        "store",
        help="inspect and maintain the SQLite result store",
        description=(
            "Maintenance of the sharded SQLite result store: row/size stats per "
            "shard, garbage collection of rows no current task hash can ever "
            "reference, and one-shot migration of a JSON cache directory."
        ),
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser("stats", help="rows and bytes, per shard and total")
    store_gc = store_sub.add_parser(
        "gc", help="drop rows from other library/backend generations"
    )
    store_gc.add_argument(
        "--no-vacuum",
        action="store_true",
        help="skip the VACUUM after deleting (faster, files keep their size)",
    )
    store_gc.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help=(
            "also prune the service queue in DIR: terminal jobs past "
            "--job-ttl (their artifacts and manifest included) and orphaned "
            "terminal items; pending and leased work is never touched"
        ),
    )
    store_gc.add_argument(
        "--job-ttl",
        type=float,
        default=7 * 24 * 3600.0,
        metavar="SECONDS",
        help="age after which a done/failed job is reclaimable (default 7 days)",
    )
    store_gc.add_argument(
        "--keep-last",
        type=int,
        default=3,
        metavar="N",
        help="always keep the N most recently updated terminal jobs (default 3)",
    )
    store_migrate = store_sub.add_parser(
        "migrate", help="import an existing JSON cache directory"
    )
    store_migrate.add_argument(
        "--from-json",
        required=True,
        metavar="DIR",
        help="JSON cache directory to import (<hash>.json files)",
    )
    for store_cmd in (store_stats, store_gc, store_migrate):
        store_cmd.add_argument(
            "--cache-dir", required=True, help="directory of the SQLite store"
        )
        store_cmd.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )

    lb_parser = sub.add_parser("lowerbound", help="Theorem 1 fooling-family experiment")
    lb_parser.add_argument("--h", type=int, default=12, help="nodes per clique of G_n (default 12)")
    lb_parser.add_argument("--i", type=int, default=4, help="spine position of the target node")
    lb_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    def _add_service_arguments(
        service_parser: argparse.ArgumentParser, require_queue_dir: bool = True
    ) -> None:
        # the serve parser hosts subcommands (events/submit) that take no
        # queue directory, so its --queue-dir cannot be argparse-required;
        # _cmd_serve validates it when actually serving
        service_parser.add_argument(
            "--queue-dir",
            required=require_queue_dir,
            default=None,
            metavar="DIR",
            help="service state directory: lease queue, result store, manifests, artifacts",
        )
        service_parser.add_argument(
            "--lease-ttl",
            type=float,
            default=30.0,
            help="seconds a lease lives between heartbeats before the item is re-leased",
        )
        service_parser.add_argument(
            "--poll-interval",
            type=float,
            default=0.5,
            help="seconds an idle worker (or waiting job) sleeps between queue polls",
        )
        service_parser.add_argument(
            "--max-attempts",
            type=int,
            default=3,
            help="executions an item gets before quarantine (crashes count)",
        )
        service_parser.add_argument(
            "--backoff-base",
            type=float,
            default=0.25,
            help="base seconds of the seeded exponential backoff between retries",
        )
        service_parser.add_argument(
            "--backoff-cap",
            type=float,
            default=30.0,
            help="ceiling seconds of the retry backoff",
        )
        service_parser.add_argument(
            "--task-timeout",
            type=float,
            default=120.0,
            help="wall-clock seconds granted per task before its worker kills the execution",
        )

    serve_parser = sub.add_parser(
        "serve",
        help="fault-tolerant sweep service over a durable lease queue",
        description=(
            "Run the HTTP daemon: POST a TOML/JSON spec to /jobs and workers "
            "execute it through a crash-safe lease queue. Identical submissions "
            "collapse onto one content-addressed job; artifacts are "
            "byte-identical to a local run. SIGTERM drains gracefully and "
            "running jobs resume on restart."
        ),
    )
    _add_service_arguments(serve_parser, require_queue_dir=False)
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="worker processes to spawn"
    )
    serve_sub = serve_parser.add_subparsers(
        dest="serve_command", required=False, metavar="{events,submit}"
    )
    events_parser = serve_sub.add_parser(
        "events",
        help="print the structured event log (events.jsonl) as JSON lines",
    )
    events_parser.add_argument(
        "--queue-dir",
        required=True,
        metavar="DIR",
        help="service state directory holding events.jsonl",
    )
    events_parser.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="TS",
        help="only events with a unix timestamp >= TS",
    )
    events_parser.add_argument(
        "--follow",
        action="store_true",
        help="keep the log open and stream events as they are appended",
    )
    events_parser.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="restrict to this event kind (repeatable, e.g. --kind lease)",
    )
    submit_parser = serve_sub.add_parser(
        "submit",
        help="POST a spec file to a running repro serve daemon",
    )
    submit_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of the daemon (default http://127.0.0.1:8765)",
    )
    submit_parser.add_argument(
        "--spec", required=True, metavar="FILE", help="spec file to submit"
    )
    submit_parser.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="submission name for regeneration hints (default: the file name)",
    )
    submit_parser.add_argument(
        "--priority",
        default="normal",
        choices=["normal", "high"],
        help="scheduling lane: high leases before normal (default normal)",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="HTTP timeout in seconds (default 30)",
    )

    worker_parser = sub.add_parser(
        "worker",
        help="attach one worker process to a service queue directory",
        description=(
            "Lease task groups from --queue-dir, execute each in a killable "
            "subprocess with heartbeats and a wall-clock timeout, and commit "
            "results to the shared store. SIGTERM finishes the in-flight item "
            "and exits."
        ),
    )
    _add_service_arguments(worker_parser)
    worker_parser.add_argument(
        "--max-items",
        type=int,
        default=None,
        metavar="N",
        help="exit after processing N items (default: run until signalled)",
    )
    worker_parser.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long without leasable work (default: keep polling)",
    )

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "tradeoff": _cmd_tradeoff,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "store": _cmd_store,
    "lowerbound": _cmd_lowerbound,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

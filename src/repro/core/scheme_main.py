"""Theorem 3: the ``(O(1), O(log n))``-advising scheme for MST.

This is the paper's main result: a constant number of advice bits per
node suffices to compute a rooted MST in ``O(log n)`` rounds, an
exponential improvement over the ``Ω̃(√n)`` rounds needed without any
advice.

Structure of the scheme
-----------------------

The oracle follows the Borůvka phases of Section 2.2 for
``P - 1 = ⌈log₂ log₂ n⌉`` phases.  For every phase ``i`` and every
*active* fragment ``F`` it writes a short fragment advice string

    ``A(F) = [ b_up | γ(rank) | γ(j) ]``

where ``b_up`` says whether the selected edge points towards the MST
root at the choosing node, ``rank`` identifies the selected edge at the
choosing node (its position in the weight/port order — by Lemma 2 it is
smaller than ``|F| ≤ 2^i`` when edge weights are distinct), ``j`` is the
position of the choosing node in the DFS preorder of the fragment
subtree ``T_F``, and ``γ`` is the self-delimiting Elias-γ code.  The
bits of ``A(F)`` are spread over the nodes of ``F`` in DFS-preorder
order, never exceeding a fixed per-node capacity; since active fragments
at phase ``i`` have at least ``2^{i-1}`` nodes, the per-node total over
all phases is bounded by a geometric series — a constant (Claim 1 of
the paper).

After the last Borůvka phase every fragment has at least
``2^{⌈log log n⌉} ≥ ⌈log₂ n⌉`` nodes, so the ``⌈log₂(deg(r_F)+1)⌉``-bit
rank of the edge connecting the fragment root ``r_F`` to its MST parent
can be distributed one bit per node over the first nodes of the
fragment's DFS preorder.

The decoder replays the same phases: inside every fragment the
unconsumed advice bits are convergecast to ``r_F`` (together with
subtree sizes), ``r_F`` parses ``A(F)`` and broadcasts it back down with
enough prefix-sum information for every node to learn how many of *its*
bits were consumed and what its DFS index is; the choosing node then
attaches the fragment across the selected edge.  Each phase fits in a
fixed window of ``2^{i+1}`` rounds, and the final collection costs
``O(log n)`` more, for a total of ``O(log n)`` rounds with messages of
``O(log n)`` bits (measured, not assumed — see the benchmarks).

Deviations from the paper (documented in DESIGN.md):

* D1 — ``A(F)`` carries the selected edge's rank instead of the
  fragment-level bit (whose decoding the paper leaves unspecified for
  passive neighbours); the level-based variant is provided separately in
  :mod:`repro.core.scheme_level` as an ablation.
* D5 — every node receives a 4-bit field with the number of Borůvka
  phases (the paper implicitly assumes nodes know ``⌈log log n⌉``), plus
  a 1-bit flag marking participation in the final collection region.
* D6 — fragment advice is distributed in DFS preorder rather than BFS
  order; the ``j``-th preorder node is at depth at most ``j - 1``, so
  every round bound is unchanged while the prefix-sum bookkeeping the
  paper leaves implicit becomes purely subtree-local.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitReader, BitString, BitWriter
from repro.core.oracle import AdvisingScheme
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import BoruvkaTrace, FragmentSelection, boruvka_trace
from repro.mst.rooted_tree import ROOT_OUTPUT
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = [
    "ShortAdviceScheme",
    "num_boruvka_phases",
    "phase_window_rounds",
    "schedule_prefix_rounds",
]

# ----------------------------------------------------------------------- #
# message type tags (small integers to keep CONGEST estimates tight)
# ----------------------------------------------------------------------- #

MSG_CONV = 1
MSG_BCAST = 2
MSG_ATTACH_PARENT = 3
MSG_ATTACH_CHILD = 4
MSG_COLLECT = 5
MSG_REPLY = 6

#: candidate per-node data-bit capacities tried by the oracle, smallest first
_CAP_CANDIDATES = (10, 12, 14, 16, 20, 24, 32, 48, 64, 128)

#: width of the per-node "number of Borůvka phases" header field
_PHASE_FIELD_BITS = 4


class CapacityError(RuntimeError):
    """Raised internally when a per-node capacity is too small to pack all advice."""


# ----------------------------------------------------------------------- #
# schedule helpers (shared by oracle, decoder, tests and benchmarks)
# ----------------------------------------------------------------------- #


def num_boruvka_phases(n: int) -> int:
    """``⌈log₂ log₂ n⌉`` — the number of Borůvka phases the scheme replays."""
    if n <= 2:
        return 0
    log_n = math.ceil(math.log2(n))
    return max(0, math.ceil(math.log2(log_n)))


def phase_window_rounds(i: int) -> int:
    """Length (in rounds) of the fixed window reserved for phase ``i``.

    An active fragment at phase ``i`` has fewer than ``2^i`` nodes, hence
    depth at most ``2^i - 2``; one convergecast plus one broadcast plus
    the attachment round fit in ``2^{i+1} - 2`` rounds, and the window is
    rounded up to ``2^{i+1}``.
    """
    return 1 << (i + 1)


def schedule_prefix_rounds(num_phases: int) -> int:
    """Total number of rounds reserved for Borůvka phases ``1 .. num_phases``."""
    return sum(phase_window_rounds(i) for i in range(1, num_phases + 1))


def _final_field_width(degree: int) -> int:
    """Bits needed for the final-phase value ``0 .. degree`` (0 = "I am the root")."""
    return max(1, int(degree).bit_length())


def _bit_length_arr(values: "np.ndarray") -> "np.ndarray":
    """Per-element ``int.bit_length`` for non-negative int64 values.

    ``frexp`` returns the base-2 exponent, which equals the bit length
    for every positive integer exactly representable in a float64 (all
    values handled here are far below ``2**53``); 0 maps to 0, matching
    ``(0).bit_length()``.
    """
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


def _batch_bit_codes(
    columns: Sequence[Tuple[str, "np.ndarray"]], count: int
) -> Tuple[List[BitString], "np.ndarray"]:
    """Build one :class:`BitString` per row from vectorised field columns.

    ``columns`` lists the fields of the per-row record in write order;
    each is ``("bit", values)`` (one literal bit per row) or ``("gamma",
    values)`` (the Elias-γ code of each positive value: ``w - 1`` zeros
    followed by the ``w``-bit big-endian binary of the value, ``w`` its
    bit length).  Returns ``(strings, lengths)`` with exactly the bits
    the per-row ``BitWriter.write_bit`` / ``write_gamma`` calls produce,
    assembled with NumPy repeat/cumsum arithmetic instead of per-row
    Python writers.
    """
    if count == 0:
        return [], np.zeros(0, dtype=np.int64)
    col_lens: List["np.ndarray"] = []
    for kind, values in columns:
        if kind == "bit":
            col_lens.append(np.ones(count, dtype=np.int64))
        else:
            col_lens.append(2 * _bit_length_arr(values) - 1)
    total_lens = col_lens[0].copy()
    for extra in col_lens[1:]:
        total_lens += extra
    starts = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(total_lens, out=starts[1:])
    flat = np.zeros(int(starts[-1]), dtype=np.int64)
    col_off = starts[:-1].copy()
    for (kind, values), lens in zip(columns, col_lens):
        if kind == "bit":
            flat[col_off] = values
        else:
            widths = (lens + 1) >> 1
            total = int(lens.sum())
            row_starts = np.concatenate(([0], np.cumsum(lens[:-1])))
            within = np.arange(total, dtype=np.int64) - np.repeat(row_starts, lens)
            wrep = np.repeat(widths, lens)
            vrep = np.repeat(values, lens)
            shift = np.maximum(2 * wrep - 2 - within, 0)
            flat[np.repeat(col_off, lens) + within] = np.where(
                within < wrep - 1, 0, (vrep >> shift) & 1
            )
        col_off = col_off + lens
    bits_list = flat.tolist()
    bounds = starts.tolist()
    strings = [
        BitString._wrap(tuple(bits_list[bounds[i] : bounds[i + 1]]))
        for i in range(count)
    ]
    return strings, total_lens


# ----------------------------------------------------------------------- #
# the oracle
# ----------------------------------------------------------------------- #


class ShortAdviceScheme(AdvisingScheme):
    """Theorem 3's ``(O(1), O(log n))``-advising scheme (rank-coded variant).

    Constant maximum advice, logarithmically many rounds:

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> scheme = ShortAdviceScheme()
    >>> report = run_scheme(scheme, random_connected_graph(64, 0.05, seed=1))
    >>> report.correct
    True
    >>> report.advice.max_bits <= scheme.advice_bound_bits(64)
    True
    >>> report.rounds <= scheme.round_bound(64)  # within 9*ceil(log n)-flavoured budget
    True
    """

    name = "theorem3-main"

    def __init__(self, capacity_candidates: Tuple[int, ...] = _CAP_CANDIDATES) -> None:
        self._capacity_candidates = capacity_candidates
        #: per-node data capacity actually used by the last ``compute_advice`` call
        self.last_capacity: Optional[int] = None
        #: packing layout of the last ``compute_advice`` call:
        #: ``last_layout[i - 1][u]`` is the number of data bits of phase
        #: ``i`` packed at node ``u``.  The analytic backend replays the
        #: decoder's convergecast streams from exactly this layout.
        self.last_layout: List[Dict[int, int]] = []

    # ------------------------------ oracle ------------------------------ #

    def compute_advice(
        self,
        graph: PortNumberedGraph,
        root: int = 0,
        trace: Optional[BoruvkaTrace] = None,
    ) -> AdviceAssignment:
        """Assign the advice (``trace`` may be passed to reuse a Borůvka run)."""
        phases = num_boruvka_phases(graph.n)
        self._check_instance(graph)
        if trace is None:
            trace = boruvka_trace(graph, root=root)
        self._prepare_headers(graph, trace, phases)
        data_bits = self._pack_with_capacity_search(graph, trace, phases)
        return self._finish_advice(graph, root, trace, phases, data_bits)

    # The oracle is split into hooks so :meth:`compute_advice_batch` can
    # run the capacity search for a whole stacked sweep point at once
    # while the scheme-specific pieces stay per instance:
    #
    # ``_check_instance``    precondition checks, before anything is built
    # ``_prepare_headers``   per-node header state (the level variant's bitmap)
    # ``_pack_with_capacity_search``  the expensive shared middle
    # ``_finish_advice``     final bits + header prefixes → AdviceAssignment

    def _check_instance(self, graph: PortNumberedGraph) -> None:
        """Validate instance preconditions (the level variant overrides)."""

    def _prepare_headers(
        self, graph: PortNumberedGraph, trace: BoruvkaTrace, phases: int
    ) -> None:
        """Prepare per-node header state (the level variant overrides)."""

    def _finish_advice(
        self,
        graph: PortNumberedGraph,
        root: int,
        trace: BoruvkaTrace,
        phases: int,
        data_bits: Dict[int, BitString],
    ) -> AdviceAssignment:
        """Final bits, flag headers and assembly of the advice strings."""
        n = graph.n
        final_bit, collect_flag = self._assign_final_bits(graph, trace, phases)

        # the six possible flag headers, shared across nodes: collect
        # flag, then "has final bit" flag (+ the bit itself when present)
        header = BitString.from_uint(phases, _PHASE_FIELD_BITS)._bits
        prefixes: Dict[Tuple[bool, Optional[int]], Tuple[int, ...]] = {}
        advice = AdviceAssignment(n)
        assigned: Dict[int, BitString] = {}
        wrap = BitString._wrap
        extra_header = self._extra_header_bits
        flag_get = collect_flag.get
        final_get = final_bit.get
        for u in range(n):
            key = (bool(flag_get(u, False)), final_get(u))
            prefix = prefixes.get(key)
            if prefix is None:
                prefix = header + ((1,) if key[0] else (0,))
                prefix += (0,) if key[1] is None else (1, 1 if key[1] else 0)
                prefixes[key] = prefix
            extra = extra_header(u)
            if extra is not None:
                prefix = prefix + extra._bits
            assigned[u] = wrap(prefix + data_bits[u]._bits)
        advice._advice = assigned
        return advice

    @classmethod
    def compute_advice_batch(
        cls,
        schemes: Sequence["ShortAdviceScheme"],
        graphs: Sequence[PortNumberedGraph],
        root: int = 0,
        traces: Optional[Sequence[BoruvkaTrace]] = None,
    ) -> List[AdviceAssignment]:
        """The oracle for a whole stacked sweep point at once.

        ``schemes[i]`` must be a **distinct** instance per graph: each one
        keeps the ``last_capacity``/``last_layout`` packing state that the
        analytic backend replays for its instance.

        The capacity-independent plan (fragment advice strings, flattened
        preorders) is collected per seed as usual; the capacity search is
        then run over the disjoint union of all still-pending seeds — one
        prefix-sum placement pass per candidate capacity instead of one
        per ``(seed, capacity)`` pair.  Placement arithmetic is local to a
        segment and segments never span seeds, so a seed that overflows a
        candidate cannot perturb the seeds that fit: each seed adopts
        exactly the capacity (and the byte-identical layout) its solo
        :meth:`compute_advice` run would have chosen.
        """
        if traces is None:
            traces = [boruvka_trace(g, root=root) for g in graphs]
        if not (len(schemes) == len(graphs) == len(traces)):
            raise ValueError("schemes, graphs and traces must align")
        if not graphs:
            return []
        n = graphs[0].n
        phases = num_boruvka_phases(n)
        plans: List[List[Dict[str, Any]]] = []
        for scheme, g, tr in zip(schemes, graphs, traces):
            if g.n != n:
                raise ValueError("seed stacking requires instances of one size")
            scheme._check_instance(g)
            scheme._prepare_headers(g, tr, phases)
            plans.append(scheme._collect_advice_plan(tr, phases))

        data_bits: List[Optional[Dict[int, BitString]]] = [None] * len(graphs)
        pending = list(range(len(graphs)))
        for cap in schemes[0]._capacity_candidates:
            placements, failed = cls._place_plan_stacked(plans, pending, n, cap)
            for s in pending:
                if s in failed:
                    continue
                schemes[s].last_capacity = cap
                data_bits[s] = schemes[s]._materialize_plan(
                    plans[s], placements[s], n
                )
            pending = sorted(failed)
            if not pending:
                break
        if pending:  # pragma: no cover - the largest cap always fits
            raise CapacityError("no candidate capacity could hold the fragment advice")
        return [
            scheme._finish_advice(g, root, tr, phases, bits)
            for scheme, g, tr, bits in zip(schemes, graphs, traces, data_bits)
        ]

    @staticmethod
    def _place_plan_stacked(
        plans: List[List[Dict[str, Any]]],
        pending: List[int],
        n: int,
        cap: int,
    ) -> Tuple[Dict[int, List[Tuple["np.ndarray", "np.ndarray"]]], set]:
        """:meth:`_place_plan` over the disjoint union of ``pending`` seeds.

        Unlike the solo placement this never returns early: every phase of
        every seed is placed, per-segment overflows are recorded, and a
        seed fails iff one of **its** segments overflowed in any phase.
        The ``used`` array is node-local (seed ``j`` occupies the slice
        ``[j*n, (j+1)*n)``) and the fill arithmetic only ever differences
        the cumulative free capacity within one segment, so an overflowing
        seed's garbage placement stays confined to its own slice.
        """
        num = len(pending)
        used = np.zeros(num * n, dtype=np.int64)
        placements: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {
            s: [] for s in pending
        }
        failed: set = set()
        depth = max((len(plans[s]) for s in pending), default=0)
        empty = np.empty(0, dtype=np.int64)
        for k in range(depth):
            contrib = [(j, s) for j, s in enumerate(pending) if len(plans[s]) > k]
            nodes_parts, alens_parts, segid_parts, segstart_parts = [], [], [], []
            pos_bounds = [0]
            seg_bounds = [0]
            seg_off = 0
            pos_off = 0
            for j, s in contrib:
                phase = plans[s][k]
                nodes_parts.append(phase["nodes"] + j * n)
                alens_parts.append(phase["a_lens"])
                segid_parts.append(phase["seg_id"] + seg_off)
                segstart_parts.append(phase["seg_starts"][1:] + pos_off)
                seg_off += phase["a_lens"].size
                pos_off += phase["nodes"].size
                pos_bounds.append(pos_off)
                seg_bounds.append(seg_off)
            if pos_off == 0:
                for j, s in contrib:
                    placements[s].append((empty, empty))
                continue
            all_nodes = np.concatenate(nodes_parts)
            a_lens = np.concatenate(alens_parts)
            seg_id = np.concatenate(segid_parts)
            seg_starts = np.concatenate(([0], np.concatenate(segstart_parts)))
            free_cum = np.concatenate(([0], np.cumsum(cap - used[all_nodes])))
            filled = np.minimum(
                free_cum[1:] - free_cum[seg_starts[:-1]][seg_id],
                a_lens[seg_id],
            )
            over = filled[seg_starts[1:] - 1] < a_lens  # per-segment overflow
            if np.any(over):
                over_segs = np.flatnonzero(over)
                for (j, s), lo, hi in zip(contrib, seg_bounds, seg_bounds[1:]):
                    if np.any((over_segs >= lo) & (over_segs < hi)):
                        failed.add(s)
            prev = np.concatenate(([0], filled[:-1]))
            prev[seg_starts[:-1]] = 0
            takes = filled - prev
            used[all_nodes] += takes
            for (j, s), lo, hi in zip(contrib, pos_bounds, pos_bounds[1:]):
                placements[s].append((takes[lo:hi], filled[lo:hi]))
        return placements, failed

    def _extra_header_bits(self, u: int) -> Optional[BitString]:
        """Scheme-specific header fields (the level variant adds its bitmap)."""
        return None

    def _fragment_advice(self, sel: "FragmentSelection") -> BitString:
        """The fragment advice string ``A(F)`` of one selection.

        Rank-coded variant (deviation D1): orientation bit, γ-coded rank
        of the selected edge at the choosing node, γ-coded DFS index of
        the choosing node.  The level variant overrides this with the
        paper's literal level-coded record; the shared packer below is
        oblivious to the contents.
        """
        a_writer = BitWriter()
        a_writer.write_bit(1 if sel.is_up else 0)
        a_writer.write_gamma(sel.rank_at_choosing)
        a_writer.write_gamma(sel.choosing_dfs_index)
        return a_writer.getvalue()

    def _fragment_advice_batch(
        self, arrays: Dict[str, "np.ndarray"]
    ) -> Tuple[List[BitString], "np.ndarray"]:
        """All ``A(F)`` strings of one phase at once (column view).

        Must produce exactly the per-selection bits of
        :meth:`_fragment_advice`; the level variant overrides both in
        lockstep.
        """
        return _batch_bit_codes(
            [
                ("bit", arrays["is_up"].astype(np.int64)),
                ("gamma", arrays["rank_at_choosing"]),
                ("gamma", arrays["choosing_dfs_index"]),
            ],
            arrays["fragment"].size,
        )

    def _pack_with_capacity_search(
        self,
        graph: PortNumberedGraph,
        trace: BoruvkaTrace,
        phases: int,
    ) -> Dict[int, BitString]:
        """Pack with the smallest per-node capacity candidate that fits.

        The capacity-independent work — every fragment advice string and
        every DFS preorder — is collected *once*; each candidate capacity
        is then checked with prefix-sum placement arithmetic alone, and
        the advice bits are written out a single time for the winner.
        """
        plan = self._collect_advice_plan(trace, phases)
        for cap in self._capacity_candidates:
            placement = self._place_plan(plan, graph.n, cap)
            if isinstance(placement, int):  # the phase index that overflowed
                continue
            self.last_capacity = cap
            return self._materialize_plan(plan, placement, graph.n)
        raise CapacityError(  # pragma: no cover - the largest cap always fits
            "no candidate capacity could hold the fragment advice"
        )

    def _collect_advice_plan(
        self, trace: BoruvkaTrace, phases: int
    ) -> List[Dict[str, Any]]:
        """Per phase, the preorders and ``A(F)`` strings of every selection.

        This is everything the packer needs that does not depend on the
        per-node capacity, so the capacity search never recomputes it.
        Each phase is flattened into one concatenated node array (segment
        per selection) so placement is a handful of NumPy passes per
        phase rather than per-fragment Python work.
        """
        plan: List[Dict[str, Any]] = []
        for phase in trace.phases[:phases]:
            nodes, starts = phase.partition.preorder_arrays()
            num_sel = phase.arrays["fragment"].size
            advice_strings, a_lens = self._fragment_advice_batch(phase.arrays)
            if num_sel:
                frags = phase.arrays["fragment"]
                lens = starts[frags + 1] - starts[frags]
                seg_starts = np.zeros(num_sel + 1, dtype=np.int64)
                np.cumsum(lens, out=seg_starts[1:])
                total = int(seg_starts[-1])
                # concatenation of the fragment preorder slices, built as
                # one strided arange instead of per-selection slicing
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(seg_starts[:-1], lens)
                    + np.repeat(starts[frags], lens)
                )
                all_nodes = nodes[flat]
                seg_id = np.repeat(np.arange(num_sel, dtype=np.int64), lens)
            else:
                all_nodes = np.empty(0, dtype=np.int64)
                seg_id = np.empty(0, dtype=np.int64)
                seg_starts = np.zeros(1, dtype=np.int64)
            plan.append(
                {
                    "index": phase.index,
                    "advice": advice_strings,
                    "a_lens": a_lens,
                    "nodes": all_nodes,
                    "seg_id": seg_id,
                    "seg_starts": seg_starts,
                }
            )
        return plan

    @staticmethod
    def _place_plan(plan: List[Dict[str, Any]], n: int, cap: int):
        """Greedy DFS-preorder placement of every ``A(F)`` at capacity ``cap``.

        Bits fill each node of the fragment preorder up to ``cap`` before
        moving on; the cumulative free capacity along the concatenated
        preorders (clipped per segment) turns the historical per-node
        loop into one ``cumsum`` per phase.  Returns per phase the take
        and cumulative-fill arrays, or the index of the first phase whose
        advice overflows the capacity.
        """
        used = np.zeros(n, dtype=np.int64)
        placement: List[Tuple["np.ndarray", "np.ndarray"]] = []
        for phase in plan:
            all_nodes = phase["nodes"]
            if all_nodes.size == 0:
                placement.append((np.empty(0, np.int64), np.empty(0, np.int64)))
                continue
            seg_id = phase["seg_id"]
            seg_starts = phase["seg_starts"]
            free_cum = np.concatenate(([0], np.cumsum(cap - used[all_nodes])))
            # cumulative free capacity within each segment, clipped at the
            # segment's advice length = cumulative bits placed so far
            filled = np.minimum(
                free_cum[1:] - free_cum[seg_starts[:-1]][seg_id],
                phase["a_lens"][seg_id],
            )
            if np.any(filled[seg_starts[1:] - 1] < phase["a_lens"]):
                return phase["index"]
            prev = np.concatenate(([0], filled[:-1]))
            prev[seg_starts[:-1]] = 0
            takes = filled - prev
            used[all_nodes] += takes
            placement.append((takes, filled))
        return placement

    def _materialize_plan(
        self,
        plan: List[Dict[str, Any]],
        placement: List[Tuple["np.ndarray", "np.ndarray"]],
        n: int,
    ) -> Dict[int, BitString]:
        """Write the placed bits out (once) and record the packing layout.

        A node that receives only part of an ``A(F)`` (other than its
        tail) is full and can never receive bits of a later phase, which
        guarantees that at decode time the unconsumed bits of a fragment,
        concatenated in DFS order, always start with the current phase's
        ``A(F)``.
        """
        # raw bit buffers instead of BitWriters: the chunks are already
        # normalised 0/1 tuples, so slicing ``_bits`` directly skips one
        # BitString wrap and one per-bit normalisation pass per chunk
        buffers: List[List[int]] = [[] for _ in range(n)]
        layout: List[Dict[int, int]] = []
        for phase, (takes, filled) in zip(plan, placement):
            phase_layout: Dict[int, int] = {}
            advice_strings = phase["advice"]
            chunk_positions = np.flatnonzero(takes)
            chunk_nodes = phase["nodes"][chunk_positions].tolist()
            chunk_segs = phase["seg_id"][chunk_positions].tolist()
            chunk_his = filled[chunk_positions].tolist()
            chunk_takes = takes[chunk_positions].tolist()
            for u, seg, hi, take in zip(chunk_nodes, chunk_segs, chunk_his, chunk_takes):
                buffers[u].extend(advice_strings[seg]._bits[hi - take : hi])
                phase_layout[u] = phase_layout.get(u, 0) + take
            layout.append(phase_layout)
        self.last_layout = layout
        return {u: BitString._wrap(tuple(buffers[u])) for u in range(n)}

    def _pack_phase_advice(
        self,
        graph: PortNumberedGraph,
        trace: BoruvkaTrace,
        phases: int,
        cap: int,
    ) -> Dict[int, BitString]:
        """Distribute every fragment advice ``A(F)`` of phases ``1..phases``
        at one fixed capacity (the single-capacity view of the search)."""
        plan = self._collect_advice_plan(trace, phases)
        placement = self._place_plan(plan, graph.n, cap)
        if isinstance(placement, int):
            raise CapacityError(
                f"capacity {cap} too small for fragment advice at phase {placement}"
            )
        return self._materialize_plan(plan, placement, graph.n)

    def _assign_final_bits(
        self,
        graph: PortNumberedGraph,
        trace: BoruvkaTrace,
        phases: int,
    ) -> Tuple[Dict[int, int], Dict[int, bool]]:
        """One bit per node: the parent rank of each remaining fragment root.

        Also computes the per-node "collection region" flag (depth in the
        final fragment smaller than the number of bits to collect).
        """
        partition = trace.partition_before_phase(phases + 1)
        tree = trace.tree
        nodes, starts = partition.preorder_arrays()
        counts = starts[1:] - starts[:-1]
        frag_roots = nodes[starts[:-1]]  # r_F per fragment
        degrees = graph._degrees[frag_roots]
        # isolated fragment roots output ROOT with no advice; bit width
        # max(1, bit_length(degree)) covers the values 0 .. degree
        keep = degrees > 0
        width = np.maximum(1, _bit_length_arr(degrees))
        parent_edge = np.asarray(tree.parent_edge, dtype=np.int64)[frag_roots]
        parent_port = np.asarray(tree.parent_port, dtype=np.int64)[frag_roots]
        slot_rank = graph._slot_orders()[0]
        value = np.zeros(frag_roots.size, dtype=np.int64)  # 0 = the global root
        has_parent = parent_edge >= 0
        if np.any(has_parent):
            hp_roots = frag_roots[has_parent]
            value[has_parent] = (
                slot_rank[graph._offsets[hp_roots] + parent_port[has_parent]] + 1
            )
        if np.any(keep & (counts < width)):  # pragma: no cover - excluded by Lemma 1
            f = int(np.flatnonzero(keep & (counts < width))[0])
            raise CapacityError(
                f"fragment of size {int(counts[f])} cannot hold "
                f"{int(width[f])} final bits"
            )

        # one big-endian bit of each kept fragment's value per leading
        # preorder node, all fragments at once
        wk = width[keep]
        vk = np.repeat(value[keep], wk)
        wrep = np.repeat(wk, wk)
        total = int(wk.sum())
        row_starts = np.concatenate(([0], np.cumsum(wk[:-1]))) if wk.size else wk
        within = np.arange(total, dtype=np.int64) - np.repeat(row_starts, wk)
        fb_nodes = nodes[np.repeat(starts[:-1][keep], wk) + within]
        fb_bits = (vk >> (wrep - 1 - within)) & 1
        final_bit: Dict[int, int] = dict(zip(fb_nodes.tolist(), fb_bits.tolist()))

        # collection-region flag: depth within the fragment < field width
        frag_ids = np.repeat(np.arange(counts.size), counts)
        tree_depth = np.asarray(tree.depth, dtype=np.int64)
        depth_in_frag = tree_depth[nodes] - np.repeat(tree_depth[frag_roots], counts)
        mask = keep[frag_ids] & (depth_in_frag <= np.repeat(width, counts) - 1)
        collect_flag: Dict[int, bool] = dict.fromkeys(nodes[mask].tolist(), True)
        return final_bit, collect_flag

    # ----------------------------- decoder ------------------------------ #

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _MainProgram()

    # ------------------------- declared bounds --------------------------- #

    def advice_bound_bits(self, n: int) -> float:
        """Declared constant bound on the maximum advice size.

        Header (4 + 1 + 2) bits plus the geometric-series bound on the
        packed fragment advice with γ-coded fields (≈ 14 bits); see
        DESIGN.md §5 (D1) for why the constant is larger than the paper's
        12 while remaining independent of ``n``.
        """
        return 7 + 14

    def round_bound(self, n: int) -> float:
        """Declared round bound: the fixed schedule plus the final collection."""
        phases = num_boruvka_phases(n)
        log_n = math.ceil(math.log2(max(n, 2)))
        return schedule_prefix_rounds(phases) + 2 * log_n + 2

    @staticmethod
    def paper_round_bound(n: int) -> float:
        """The paper's stated bound ``9 ⌈log₂ n⌉`` (Theorem 3), for comparison."""
        return 9 * math.ceil(math.log2(max(n, 2)))

    @staticmethod
    def paper_advice_bound() -> float:
        """The paper's stated maximum advice size ``m = 12``, for comparison."""
        return 12.0


# ----------------------------------------------------------------------- #
# the decoder node program
# ----------------------------------------------------------------------- #


class _MainProgram(NodeProgram):
    """Per-node state machine of the Theorem-3 decoder."""

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __init__(self) -> None:
        # fragment-tree structure maintained across phases
        self.parent_port: Optional[int] = None
        self.child_ports: List[int] = []
        # structural changes decided during the current phase window; fragments
        # merge only *between* phases, so they are applied at window boundaries
        self.pending_structure: List[Tuple[str, int]] = []
        # advice fields
        self.num_phases = 0
        self.collect_flag = False
        self.final_bit: Optional[int] = None
        self.data: List[int] = []
        self.cons = 0
        # per-phase scratch
        self.current_segment: Optional[Tuple[str, int]] = None
        #: cumulative window ends, built lazily once ``num_phases`` is known
        self._segment_ends: Optional[List[int]] = None
        self._reset_scratch()
        # final phase
        self.final_done = False

    def _reset_scratch(self) -> None:
        self.conv_received: Dict[int, Tuple[int, BitString]] = {}
        self.conv_sent = False
        self.bcast_handled = False
        self.reply_received: Dict[int, BitString] = {}
        self.collect_forwarded = False
        self.collect_ttl: Optional[int] = None
        self.collect_children: List[int] = []

    # ------------------------------------------------------------------ #

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        if reader.remaining >= _PHASE_FIELD_BITS + 2:
            self.num_phases = reader.read_uint(_PHASE_FIELD_BITS)
            self.collect_flag = bool(reader.read_bit())
            if reader.read_bit() == 1:
                self.final_bit = reader.read_bit()
            self.data = list(reader.read_bits(reader.remaining))
        if ctx.degree == 0:
            ctx.halt(ROOT_OUTPUT)
            return
        # precompute the (weight, port) order of the ports: children are
        # always processed in this order, matching the oracle's DFS order.
        self._port_order = {p: k for k, p in enumerate(ctx.view.ports_by_weight_then_port())}

    # ------------------------------------------------------------------ #
    # round dispatch
    # ------------------------------------------------------------------ #

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        segment = self._segment_of_round(ctx.round)
        if segment != self.current_segment:
            # fragments merge only between phases: apply the attachments that
            # were decided during the previous window before starting this one
            self._apply_pending_structure()
            self.current_segment = segment
            self._reset_scratch()

        # structural notifications are buffered until the end of the window
        self._process_attachments(inbox)

        kind, index = segment
        if kind == "phase":
            self._phase_round(ctx, inbox, index)
            if self.conv_sent:
                # once this node's convergecast is away, every remaining
                # action of the window is triggered by an incoming message
                # (broadcast forwarding, attachments), so the engine may
                # skip the silent tail of the window for this node
                ctx.idle_until(self._segment_end(index) + 1)
        else:
            self._apply_pending_structure()
            self._final_round(ctx, inbox)

    def _window(self, phase: int) -> int:
        """Round budget of one phase window (overridden by the level variant)."""
        return phase_window_rounds(phase)

    def _segment_of_round(self, round_number: int) -> Tuple[str, int]:
        t = round_number
        for i in range(1, self.num_phases + 1):
            w = self._window(i)
            if t <= w:
                return ("phase", i)
            t -= w
        # the final segment is a single scratch scope: per-round state must
        # survive across its rounds, so the tuple stays constant
        return ("final", 0)

    def _segment_end(self, phase: int) -> int:
        """The last (absolute) round of the window of ``phase``."""
        ends = self._segment_ends
        if ends is None:
            total = 0
            ends = []
            for i in range(1, self.num_phases + 1):
                total += self._window(i)
                ends.append(total)
            self._segment_ends = ends
        return ends[phase - 1]

    def _relative_round(self, round_number: int) -> int:
        t = round_number
        for i in range(1, self.num_phases + 1):
            w = self._window(i)
            if t <= w:
                return t
            t -= w
        return t

    # ------------------------------------------------------------------ #
    # structure maintenance
    # ------------------------------------------------------------------ #

    def _process_attachments(self, inbox: Dict[int, object]) -> None:
        for port, payload in inbox.items():
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == MSG_ATTACH_PARENT:
                self.pending_structure.append(("parent", port))
            elif payload[0] == MSG_ATTACH_CHILD:
                self.pending_structure.append(("child", port))

    def _apply_pending_structure(self) -> None:
        for kind, port in self.pending_structure:
            if kind == "parent":
                self.parent_port = port
            elif kind == "child" and port not in self.child_ports:
                self.child_ports.append(port)
        self.pending_structure = []

    def _ordered_children(self) -> List[int]:
        return sorted(self.child_ports, key=lambda p: self._port_order[p])

    # ------------------------------------------------------------------ #
    # Borůvka phase windows
    # ------------------------------------------------------------------ #

    def _phase_round(self, ctx: NodeContext, inbox: Dict[int, object], phase: int) -> None:
        relative = self._relative_round(ctx.round)
        self._phase_prelude(ctx, inbox, phase, relative)

        # collect convergecast chunks and broadcasts addressed to this phase
        for port, payload in inbox.items():
            if not isinstance(payload, tuple) or not payload:
                continue
            tag = payload[0]
            if tag == MSG_CONV and payload[1] == phase:
                _, _, subtree_size, stream = payload
                self.conv_received[port] = (subtree_size, stream)
            elif tag == MSG_BCAST and payload[1] == phase and not self.bcast_handled:
                (_, _, j, record, consumed_total, my_offset, my_dfs_index) = payload
                self._handle_broadcast(
                    ctx, phase, j, record, consumed_total, my_offset, my_dfs_index
                )

        if self.conv_sent or not self._convergecast_allowed(relative):
            return
        children = self._ordered_children()
        if any(p not in self.conv_received for p in children):
            return  # still waiting for some child

        # all children reported: aggregate this subtree's unconsumed bits
        my_stream = BitString(self.data[self.cons :])
        stream = my_stream
        subtree_size = 1
        for p in children:
            size, child_stream = self.conv_received[p]
            stream = stream + child_stream
            subtree_size += size
        self.conv_sent = True

        if self.parent_port is not None:
            ctx.send(self.parent_port, (MSG_CONV, phase, subtree_size, stream))
            return

        # this node is the fragment root r_F
        if subtree_size >= (1 << phase):
            return  # passive fragment: nothing to decode at this phase
        if len(stream) == 0:
            return  # active but isolated (single remaining fragment): no selection
        parsed = self._parse_fragment_advice(stream)
        if parsed is None:
            return
        j, record, consumed_total = parsed
        self._handle_broadcast(ctx, phase, j, record, consumed_total, 0, 1)

    # ----- hooks overridden by the level-based ablation variant ----- #

    def _phase_prelude(
        self, ctx: NodeContext, inbox: Dict[int, object], phase: int, relative: int
    ) -> None:
        """Extra per-phase behaviour before the convergecast (none by default)."""

    def _convergecast_allowed(self, relative: int) -> bool:
        """Whether the convergecast may start at this relative round."""
        return True

    def _parse_fragment_advice(
        self, stream: BitString
    ) -> Optional[Tuple[int, Tuple, int]]:
        """Parse ``A(F)`` from the front of the unconsumed-bit stream.

        Returns ``(j, record, consumed_bits)`` where ``j`` is the DFS
        index of the choosing node, ``record`` is whatever the choosing
        node needs to identify the selected edge, and ``consumed_bits``
        is the number of stream bits ``A(F)`` occupied.
        """
        try:
            reader = BitReader(stream)
            bup = bool(reader.read_bit())
            rank = reader.read_gamma()
            j = reader.read_gamma()
            return j, (bup, rank), reader.position
        except EOFError:
            return None

    def _choosing_action(self, ctx: NodeContext, phase: int, record: Tuple) -> None:
        """Act as the choosing node ``v_j``: attach across the selected edge."""
        bup, rank = record
        port = ctx.view.port_of_rank(rank)
        self._attach_across(ctx, phase, port, bup)

    def _attach_across(self, ctx: NodeContext, phase: int, port: int, bup: bool) -> None:
        # the structural change takes effect at the end of the phase window,
        # exactly like the attachments received from other fragments
        if bup:
            # the selected edge leads to this node's MST parent
            self.pending_structure.append(("parent", port))
            ctx.send(port, (MSG_ATTACH_CHILD, phase))
        else:
            self.pending_structure.append(("child", port))
            ctx.send(port, (MSG_ATTACH_PARENT, phase))

    # ----------------------------------------------------------------- #

    def _handle_broadcast(
        self,
        ctx: NodeContext,
        phase: int,
        j: int,
        record: Tuple,
        consumed_total: int,
        my_offset: int,
        my_dfs_index: int,
    ) -> None:
        """Process ``A(F)`` at this node and forward it down the fragment."""
        self.bcast_handled = True
        unconsumed = len(self.data) - self.cons
        consumed_here = min(max(consumed_total - my_offset, 0), unconsumed)
        self.cons += consumed_here

        # forward to children with subtree-local prefix sums
        running_offset = my_offset + unconsumed
        running_dfs = my_dfs_index + 1
        for p in self._ordered_children():
            size, child_stream = self.conv_received.get(p, (1, BitString.empty()))
            ctx.send(
                p,
                (
                    MSG_BCAST,
                    phase,
                    j,
                    record,
                    consumed_total,
                    running_offset,
                    running_dfs,
                ),
            )
            running_offset += len(child_stream)
            running_dfs += size

        if my_dfs_index == j:
            self._choosing_action(ctx, phase, record)

    # ------------------------------------------------------------------ #
    # the final phase: collect the fragment root's parent rank
    # ------------------------------------------------------------------ #

    def _final_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        if self.final_done:
            return
        # gather collection traffic
        collect_msg: Optional[int] = None
        for port, payload in inbox.items():
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == MSG_COLLECT:
                collect_msg = payload[1]
            elif payload[0] == MSG_REPLY:
                self.reply_received[port] = payload[1]

        if self.parent_port is None:
            self._final_root_round(ctx)
            return

        # non-root node
        if not self.collect_flag:
            ctx.halt(self.parent_port)
            self.final_done = True
            return
        if collect_msg is not None and self.collect_ttl is None:
            self.collect_ttl = collect_msg
            children = self._ordered_children()
            if self.collect_ttl > 0 and children:
                self.collect_children = children
                for p in children:
                    ctx.send(p, (MSG_COLLECT, self.collect_ttl - 1))
                self.collect_forwarded = True
            else:
                self._send_reply(ctx)
                return
        if self.collect_forwarded and all(
            p in self.reply_received for p in self.collect_children
        ):
            self._send_reply(ctx)

    def _send_reply(self, ctx: NodeContext) -> None:
        stream = BitString([self.final_bit]) if self.final_bit is not None else BitString.empty()
        for p in self.collect_children:
            stream = stream + self.reply_received.get(p, BitString.empty())
        ctx.send(self.parent_port, (MSG_REPLY, stream))
        ctx.halt(self.parent_port)
        self.final_done = True

    def _final_root_round(self, ctx: NodeContext) -> None:
        width = _final_field_width(ctx.degree)
        children = self._ordered_children()
        if self.collect_ttl is None:
            # start the collection exactly once
            self.collect_ttl = width - 1
            if self.collect_ttl > 0 and children:
                self.collect_children = children
                for p in children:
                    ctx.send(p, (MSG_COLLECT, self.collect_ttl - 1))
                self.collect_forwarded = True
                return
            # the root alone holds every bit it needs
            self._finish_root(ctx, width)
            return
        if self.collect_forwarded and all(
            p in self.reply_received for p in self.collect_children
        ):
            self._finish_root(ctx, width)

    def _finish_root(self, ctx: NodeContext, width: int) -> None:
        stream = BitString([self.final_bit]) if self.final_bit is not None else BitString.empty()
        for p in self.collect_children:
            stream = stream + self.reply_received.get(p, BitString.empty())
        if len(stream) < width:
            # defensive: malformed advice; report failure by not outputting
            ctx.halt()
            self.final_done = True
            return
        value = stream[:width].to_uint()
        if value == 0:
            ctx.halt(ROOT_OUTPUT)
        else:
            ctx.halt(ctx.view.port_of_rank(value))
        self.final_done = True

"""Theorem 2: an ``(O(log² n), 1)``-advising scheme with constant *average* advice.

The oracle runs the paper's Borůvka variant.  Whenever a node ``u`` is
the choosing node of an active fragment at some phase ``i`` it stores
two items about the selected edge ``e``:

* ``index_u(e)`` — encoded as the rank of ``e`` in the weight/port order
  at ``u``, which by Lemma 2 is smaller than ``2^i`` and therefore fits
  in ``i`` bits; and
* a boolean saying whether ``e`` is *up* at ``u`` (leads towards the
  root of the MST).

Advice received at different phases is concatenated, and a bitmap
marking where each record starts is interleaved with the data so the
decoder can split the records — exactly the paper's construction, which
doubles the advice length.  Per phase ``i`` there is one choosing node
per active fragment and at most ``n / 2^{i-1}`` active fragments
(Lemma 1), so the total advice is at most
``2 Σ_i (i + 1) n / 2^{i-1} = O(n)`` bits: a constant number of bits per
node *on average* (the paper's constant is
``c = Σ_{i≥1} (i+1) / 2^{i-2} = 12``).  A single node can be choosing at
every phase, so the maximum is ``Θ(log² n)`` bits.

The decoder needs exactly one round: a choosing node whose record says
*up* learns its own parent port directly; a record saying *down* makes
it send "I am your parent" across the selected edge, and the receiving
node learns its parent port from the arrival port.  Every non-root node
obtains its parent one of these two ways, because every MST edge is
selected at exactly one phase and its lower endpoint (with respect to
the root) sees it as *down* at the choosing side or *up* at itself.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitString
from repro.core.oracle import AdvisingScheme
from repro.core.scheme_main import _bit_length_arr
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import boruvka_trace
from repro.mst.rooted_tree import ROOT_OUTPUT
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = ["AverageConstantScheme", "paper_average_constant"]

#: message payload announcing "I am your parent" across a selected edge
_PARENT_CLAIM = 1


def paper_average_constant(max_terms: int = 64) -> float:
    """The paper's average-advice constant ``c = Σ_{i>=1} (i+1)/2^{i-2}``."""
    return sum((i + 1) / 2 ** (i - 2) for i in range(1, max_terms + 1))


class _AverageProgram(NodeProgram):
    """One-round decoder of the Theorem-2 scheme."""

    def __init__(self) -> None:
        self.parent_port: Optional[int] = None

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        for is_up, rank in _parse_records(advice):
            port = ctx.view.port_of_rank(rank)
            if is_up:
                self.parent_port = port
            else:
                ctx.send(port, _PARENT_CLAIM)
        # Every node waits one round: a parent claim may still arrive.

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        for port, payload in inbox.items():
            if payload == _PARENT_CLAIM:
                self.parent_port = port
        ctx.halt(self.parent_port if self.parent_port is not None else ROOT_OUTPUT)


def _parse_records(advice: BitString) -> List[Tuple[bool, int]]:
    """Split the interleaved (bitmap, data) advice into (is_up, rank) records."""
    if len(advice) % 2 != 0:
        raise ValueError("malformed Theorem-2 advice: odd length")
    bitmap: List[int] = []
    data: List[int] = []
    for k in range(0, len(advice), 2):
        bitmap.append(advice[k])
        data.append(advice[k + 1])
    # record boundaries are the positions where the bitmap is 1
    starts = [k for k, b in enumerate(bitmap) if b == 1]
    if data and (not starts or starts[0] != 0):
        raise ValueError("malformed Theorem-2 advice: data does not start a record")
    records: List[Tuple[bool, int]] = []
    for idx, start in enumerate(starts):
        end = starts[idx + 1] if idx + 1 < len(starts) else len(data)
        chunk = data[start:end]
        is_up = bool(chunk[0])
        rank_bits = BitString(chunk[1:])
        rank = rank_bits.to_uint() + 1 if len(rank_bits) > 0 else 1
        records.append((is_up, rank))
    return records


class AverageConstantScheme(AdvisingScheme):
    """Theorem 2's ``(O(log² n), 1)``-advising scheme (constant average advice).

    The *maximum* advice grows like ``log² n`` but the *average* stays
    below the paper's constant ``c = 12`` bits per node, and the decoder
    needs exactly one communication round:

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> report = run_scheme(AverageConstantScheme(), random_connected_graph(64, 0.05, seed=1))
    >>> report.correct, report.rounds
    (True, 1)
    >>> report.advice.average_bits < paper_average_constant()
    True
    """

    name = "theorem2-average"

    def compute_advice(
        self,
        graph: PortNumberedGraph,
        root: int = 0,
        trace=None,
    ) -> AdviceAssignment:
        """Assign the advice (``trace`` may be passed to reuse a Borůvka run)."""
        if trace is None:
            trace = boruvka_trace(graph, root=root)
        # flatten every (phase, selection) record into column arrays; a
        # record is the (is_up, rank - 1) pair packed big-endian into
        # width + 1 bits, exactly the bits the historical per-record
        # BitWriter produced
        rec_nodes: List["np.ndarray"] = []
        rec_vals: List["np.ndarray"] = []
        rec_widths: List["np.ndarray"] = []
        for phase in trace.phases:
            arr = phase.arrays
            if arr["fragment"].size == 0:
                continue
            rank_m1 = arr["rank_at_choosing"] - 1
            # Lemma 2: with pairwise-distinct weights the rank is < 2^i and
            # fits in `phase.index` bits; with duplicated weights the rank
            # can exceed that, in which case we simply widen the field (the
            # decoder reads "the rest of the record" and never assumes a
            # width).
            widths = np.maximum(phase.index, _bit_length_arr(rank_m1))
            rec_nodes.append(arr["choosing_node"])
            rec_vals.append((arr["is_up"].astype(np.int64) << widths) | rank_m1)
            rec_widths.append(widths + 1)

        advice = AdviceAssignment(graph.n)
        if not rec_nodes:
            return advice
        # group records per choosing node; the stable sort keeps the
        # phase order of each node's records
        nodes_a = np.concatenate(rec_nodes)
        order = np.argsort(nodes_a, kind="stable")
        nodes_o = nodes_a[order]
        vals_o = np.concatenate(rec_vals)[order]
        w_o = np.concatenate(rec_widths)[order]

        # big-endian record bits + the record-start bitmap, interleaved
        # as (mark, bit) pairs in one vectorised pass
        total = int(w_o.sum())
        rec_starts = np.concatenate(([0], np.cumsum(w_o[:-1])))
        within = np.arange(total, dtype=np.int64) - np.repeat(rec_starts, w_o)
        wrep = np.repeat(w_o, w_o)
        code = (np.repeat(vals_o, w_o) >> (wrep - 1 - within)) & 1
        inter = np.empty(2 * total, dtype=np.int64)
        inter[0::2] = (within == 0).astype(np.int64)
        inter[1::2] = code
        inter_list = inter.tolist()

        rec_off = np.concatenate(([0], np.cumsum(2 * w_o))).tolist()
        seg_bounds = np.concatenate(
            ([0], np.flatnonzero(np.diff(nodes_o)) + 1, [nodes_o.size])
        ).tolist()
        for idx, u in enumerate(nodes_o[seg_bounds[:-1]].tolist()):
            a = rec_off[seg_bounds[idx]]
            b = rec_off[seg_bounds[idx + 1]]
            advice.set(u, BitString._wrap(tuple(inter_list[a:b])))
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _AverageProgram()

    def advice_bound_bits(self, n: int) -> float:
        # a node can be choosing at every phase: 2 Σ_{i=1}^{⌈log n⌉} (i + 1)
        phases = max(1, math.ceil(math.log2(max(n, 2))))
        return 2 * sum(i + 1 for i in range(1, phases + 1))

    def round_bound(self, n: int) -> float:
        return 1.0

    def average_advice_bound_bits(self, n: int) -> float:
        """The paper's bound on the *average* advice size (a constant)."""
        return paper_average_constant()

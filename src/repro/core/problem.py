"""The problem axis of the advising framework.

An ``(m, t)``-advising scheme (Section 2 of the paper) is defined
relative to a *problem*: the oracle sees the whole instance, each node
receives at most ``m`` advice bits, and the distributed decoder must
produce, within ``t`` rounds, per-node outputs that satisfy the
problem's specification.  The framework is problem-agnostic — the paper
instantiates it for MST, but the same oracle/decoder/verifier contract
covers leader election, wake-up, spanning-tree verification, and so on.

:class:`Problem` captures one such instantiation: a name, the registry
of advising schemes and no-advice baselines that solve it, and
:meth:`Problem.check_outputs`, the verifier that decides whether a
per-node output map solves the problem on a given instance.  Problems
register themselves into a process-wide table; the built-in problems
live in :mod:`repro.problems` and are loaded lazily on first lookup.

Targets are addressed by *qualified names* — ``"mst/theorem3"``,
``"leader/flag"`` — with bare legacy names (``"theorem3"``) resolving
to the default ``mst`` problem, so every pre-existing spec, cache key
convention and CLI invocation keeps meaning what it meant.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_PROBLEM",
    "OutputCheck",
    "Problem",
    "get_problem",
    "problem_names",
    "qualified_names",
    "register_problem",
    "split_target",
]

#: the problem bare target names resolve to (the paper's instantiation)
DEFAULT_PROBLEM = "mst"


@dataclass(frozen=True)
class OutputCheck:
    """Result of validating one distributed output map.

    The tree fields (``root``, ``tree_edge_ids``, ``tree_weight``,
    ``mst_weight``) are filled by verifiers whose outputs describe a
    rooted tree (MST, wake-up, spanning-tree verification); problems
    without tree-shaped outputs leave them at their defaults.
    """

    ok: bool
    reason: str = "ok"
    root: Optional[int] = None
    tree_edge_ids: tuple = ()
    tree_weight: float = 0.0
    mst_weight: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class Problem(ABC):
    """One instantiation of the advising framework.

    Subclasses declare their registries as class attributes and
    implement the verifier.  A problem instance is stateless: the same
    object serves every run of every scheme.
    """

    #: registry name (also the qualifier in ``problem/scheme`` targets)
    name: str = "problem"
    #: one-line human-readable title for ``repro info`` and the docs
    title: str = ""
    #: what a correct output map looks like (shown in reports and docs)
    output_statement: str = ""
    #: bare scheme name -> factory of an advising scheme for this problem
    schemes: Mapping[str, Callable[[], Any]] = {}
    #: bare baseline name -> factory of a no-advice baseline
    baselines: Mapping[str, Callable[[], Any]] = {}

    @abstractmethod
    def check_outputs(
        self, graph: Any, outputs: Dict[int, Any], expected_root: Optional[int] = None
    ) -> OutputCheck:
        """Decide whether ``outputs`` solves the problem on ``graph``.

        ``expected_root`` pins the distinguished node (MST root, leader,
        wake-up source) when the run designated one; baselines, which
        cannot promise a root, pass ``None``.
        """

    def qualified(self, bare: str) -> str:
        """The fully qualified form of a bare target name."""
        return f"{self.name}/{bare}"


_PROBLEMS: Dict[str, Problem] = {}
_BUILTIN_LOADED = False


def register_problem(problem: Problem) -> Problem:
    """Register ``problem`` under its name (later registrations win)."""
    if not problem.name or "/" in problem.name:
        raise ValueError(f"invalid problem name {problem.name!r} ('/' is the qualifier separator)")
    _PROBLEMS[problem.name] = problem
    return problem


def _ensure_builtin() -> None:
    """Load :mod:`repro.problems` once (it registers the built-ins).

    The flag is set *before* the import: the built-in modules pull in the
    scheme stack, whose own imports may call back into this registry.
    """
    global _BUILTIN_LOADED
    if not _BUILTIN_LOADED:
        _BUILTIN_LOADED = True
        import repro.problems  # noqa: F401  (import side effect: registration)


def problem_names() -> List[str]:
    """Sorted names of every registered problem.

    >>> problem_names()
    ['leader', 'mst', 'stverify', 'wakeup']
    """
    _ensure_builtin()
    return sorted(_PROBLEMS)


def get_problem(name: str) -> Problem:
    """Look up a registered problem by name.

    >>> get_problem("mst").name
    'mst'
    """
    _ensure_builtin()
    try:
        return _PROBLEMS[name]
    except KeyError:
        raise ValueError(
            f"unknown problem {name!r}; known: {', '.join(sorted(_PROBLEMS))}"
        ) from None


def split_target(target: str) -> Tuple[Optional[str], str]:
    """Split a qualified target into ``(problem, bare_name)``.

    Bare names return ``(None, name)`` — the caller decides the default.

    >>> split_target("mst/theorem3")
    ('mst', 'theorem3')
    >>> split_target("theorem3")
    (None, 'theorem3')
    """
    if "/" in target:
        problem, bare = target.split("/", 1)
        return problem, bare
    return None, target


def qualified_names(kind: str) -> List[str]:
    """Every registered target of ``kind`` as ``problem/name``, sorted.

    ``kind`` is ``"scheme"`` or ``"baseline"``; the list is the canonical
    vocabulary of error messages and CLI choices.
    """
    if kind not in ("scheme", "baseline"):
        raise ValueError(f"kind must be 'scheme' or 'baseline', got {kind!r}")
    _ensure_builtin()
    names: List[str] = []
    for problem_name in sorted(_PROBLEMS):
        problem = _PROBLEMS[problem_name]
        table = problem.schemes if kind == "scheme" else problem.baselines
        names.extend(f"{problem_name}/{bare}" for bare in sorted(table))
    return names

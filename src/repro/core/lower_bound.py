"""Theorem 1: 0-round advising schemes need ``Ω(log n)`` bits on average.

The proof of Theorem 1 exhibits, inside the two-clique family ``G_n``
(:mod:`repro.graphs.lowerbound_family`), a *fooling family* for every
spine node ``u_i``: a set of ``h - i`` instances whose local view at
``u_i`` is identical while the port ``u_i`` must output (the port of the
unique MST edge ``{u_i, u_{i-1}}``) is different in every instance.  A
0-round algorithm's output at ``u_i`` is a function of its local view
and its advice only, so if the oracle hands ``u_i`` fewer than
``log₂(h - i)`` bits there are two instances with the same advice — and
the algorithm errs on at least one of them.  Summing over ``i`` gives
average advice ``Ω(log n)``.

This module turns the argument into executable experiments:

* :func:`run_fooling_experiment` builds the family and *verifies its
  premises* computationally (identical views, pairwise-distinct correct
  ports, the spine really is the unique MST of every variant);
* :func:`truncated_trivial_failures` carries out the pigeonhole
  explicitly: any 0-round decoder whose advice at ``u_i`` is truncated
  to ``b`` bits is guaranteed at least ``(h - i) - 2^b`` errors on the
  family, regardless of what the decoder does;
* :func:`average_advice_lower_bound` evaluates the paper's
  ``(1/2h) Σ_i log₂(h - i) = Ω(log n)`` accounting, the curve the
  benchmark compares against the (achievable) trivial scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bits import BitString
from repro.core.scheme_trivial import TrivialRankScheme
from repro.graphs.lowerbound_family import (
    FoolingVariant,
    average_advice_lower_bound_bits,
    fooling_family,
)
from repro.mst.kruskal import kruskal_mst
from repro.mst.verify import unique_mst_edge_ids

__all__ = [
    "FoolingExperiment",
    "average_advice_lower_bound",
    "required_bits_at_node",
    "run_fooling_experiment",
    "truncated_trivial_failures",
]


def average_advice_lower_bound(h: int) -> float:
    """The paper's lower bound on the average advice size on ``G_n`` (in bits)."""
    return average_advice_lower_bound_bits(h)


def required_bits_at_node(h: int, i: int) -> float:
    """Minimum advice bits any correct 0-round scheme must give ``u_i``."""
    return math.log2(max(h - i, 1))


@dataclass(frozen=True)
class FoolingExperiment:
    """Verified premises of the Theorem-1 pigeonhole for one target node."""

    h: int
    i: int
    num_variants: int
    views_identical: bool
    distinct_correct_ports: int
    all_msts_are_spine: bool
    required_bits: float

    @property
    def premises_hold(self) -> bool:
        """``True`` iff the constructed family satisfies the proof's premises."""
        return (
            self.views_identical
            and self.distinct_correct_ports == self.num_variants
            and self.all_msts_are_spine
        )


def run_fooling_experiment(h: int, i: int, seed: int = 0) -> FoolingExperiment:
    """Build the fooling family for ``u_i`` in ``G_n`` and verify its premises."""
    variants = fooling_family(h, i, seed=seed)
    views = {v.instance.graph.local_view(v.target_node) for v in variants}
    ports = {v.correct_parent_port for v in variants}
    all_spine = True
    for v in variants:
        unique, mst = unique_mst_edge_ids(v.instance.graph)
        if not unique or sorted(mst) != v.instance.expected_mst_edge_ids():
            all_spine = False
            break
    return FoolingExperiment(
        h=h,
        i=i,
        num_variants=len(variants),
        views_identical=len(views) == 1,
        distinct_correct_ports=len(ports),
        all_msts_are_spine=all_spine,
        required_bits=required_bits_at_node(h, i),
    )


def truncated_trivial_failures(
    h: int, i: int, budget_bits: int, seed: int = 0
) -> Dict[str, int]:
    """The pigeonhole, executed: truncate the advice at ``u_i`` to ``budget_bits``.

    The trivial ``(⌈log n⌉, 0)`` scheme is correct on every variant of
    the fooling family.  Truncating the advice it gives the target node
    ``u_i`` to ``budget_bits`` bits partitions the variants into at most
    ``2^budget_bits`` groups with identical (view, advice) pairs; *any*
    deterministic 0-round decoder must answer identically within a
    group, while the correct answers are pairwise distinct — so at least
    ``num_variants - num_groups`` variants are answered incorrectly, no
    matter how clever the decoder is.

    Returns a dictionary with ``num_variants``, ``num_groups`` and the
    guaranteed number of failures ``min_failures``.
    """
    if budget_bits < 0:
        raise ValueError("budget_bits must be non-negative")
    variants = fooling_family(h, i, seed=seed)
    scheme = TrivialRankScheme()
    groups: Dict[Tuple[BitString, object], int] = {}
    for v in variants:
        advice = scheme.compute_advice(v.instance.graph, root=v.instance.v(1))
        full = advice.get(v.target_node)
        truncated = full[: min(budget_bits, len(full))]
        view = v.instance.graph.local_view(v.target_node)
        key = (truncated, view)
        groups[key] = groups.get(key, 0) + 1
    num_groups = len(groups)
    num_variants = len(variants)
    return {
        "num_variants": num_variants,
        "num_groups": num_groups,
        "min_failures": max(0, num_variants - num_groups),
        "budget_bits": budget_bits,
    }

"""The paper's contribution: advising schemes for local distributed MST.

========================  ================================================
module                    paper artefact
========================  ================================================
``scheme_trivial``        the ``(⌈log n⌉, 0)`` scheme of Section 1
``scheme_average``        Theorem 2 — ``(O(log² n), 1)`` with constant
                          *average* advice
``scheme_main``           Theorem 3 — ``(O(1), O(log n))`` (main result)
``scheme_level``          the literal level-based variant of Theorem 3
                          (ablation of deviation D1)
``lower_bound``           Theorem 1 — the ``Ω(log n)`` average-advice
                          lower bound for 0-round schemes
``oracle``                the ``(m, t)``-advising-scheme abstraction and
                          the end-to-end runner
``problem``               the problem axis: scheme/baseline registries
                          and output verifiers per problem
``advice`` / ``bits``     advice assignments, bit strings, γ codes
``verification``          rooted-MST output checking (re-export of the
                          MST problem's verifier)
========================  ================================================
"""

from repro.core.advice import AdviceAssignment, AdviceStats
from repro.core.bits import BitReader, BitString, BitWriter
from repro.core.oracle import AdvisingScheme, SchemeReport, run_scheme
from repro.core.problem import (
    DEFAULT_PROBLEM,
    Problem,
    get_problem,
    problem_names,
    register_problem,
    split_target,
)
from repro.core.scheme_trivial import TrivialRankScheme
from repro.core.scheme_average import AverageConstantScheme, paper_average_constant
from repro.core.scheme_main import (
    ShortAdviceScheme,
    num_boruvka_phases,
    phase_window_rounds,
    schedule_prefix_rounds,
)
from repro.core.scheme_level import LevelAdviceScheme
from repro.core.verification import OutputCheck, check_outputs
from repro.core.lower_bound import (
    FoolingExperiment,
    average_advice_lower_bound,
    run_fooling_experiment,
    truncated_trivial_failures,
)

__all__ = [
    "AdviceAssignment",
    "AdviceStats",
    "BitReader",
    "BitString",
    "BitWriter",
    "AdvisingScheme",
    "SchemeReport",
    "run_scheme",
    "DEFAULT_PROBLEM",
    "Problem",
    "get_problem",
    "problem_names",
    "register_problem",
    "split_target",
    "TrivialRankScheme",
    "AverageConstantScheme",
    "paper_average_constant",
    "ShortAdviceScheme",
    "LevelAdviceScheme",
    "num_boruvka_phases",
    "phase_window_rounds",
    "schedule_prefix_rounds",
    "OutputCheck",
    "check_outputs",
    "FoolingExperiment",
    "average_advice_lower_bound",
    "run_fooling_experiment",
    "truncated_trivial_failures",
]

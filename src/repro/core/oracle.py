"""Advising-scheme abstractions and the end-to-end runner.

An ``(m, t)``-advising scheme is a pair ``(O, A)``: an *oracle* ``O``
that sees the whole instance and assigns each node at most ``m`` bits of
advice, and a distributed algorithm ``A`` that, using only local views
and the advice, solves the problem within ``t`` rounds.

:class:`AdvisingScheme` captures the pair: :meth:`compute_advice` is the
oracle and :meth:`program_factory` produces the node programs of the
decoder.  The pair is defined relative to a *problem*
(:mod:`repro.core.problem`) whose verifier decides what counts as a
correct output map; the paper's schemes solve ``mst``, and the framework
hosts further problems under :mod:`repro.problems`.  :func:`run_scheme`
glues everything together — oracle → simulator → the problem's output
verification — and returns a :class:`SchemeReport` with the exact
quantities the paper's theorems bound (max/average advice bits, rounds,
per-edge message bits).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.advice import AdviceAssignment, AdviceStats
from repro.core.problem import DEFAULT_PROBLEM, OutputCheck, get_problem
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.adversary import FaultSpec, apply_churn, run_adversary
from repro.simulator.algorithm import ProgramFactory
from repro.simulator.engine import run_sync
from repro.simulator.metrics import RunMetrics

__all__ = ["AdvisingScheme", "SchemeReport", "run_scheme"]


class AdvisingScheme(ABC):
    """Base class of every advising scheme in the library."""

    #: short human-readable identifier used in tables
    name: str = "scheme"
    #: the problem this scheme solves (selects the output verifier)
    problem: str = DEFAULT_PROBLEM

    @abstractmethod
    def compute_advice(self, graph: PortNumberedGraph, root: int = 0) -> AdviceAssignment:
        """The oracle: assign advice for ``graph`` with distinguished node ``root``.

        For the MST problem ``root`` roots the reference MST; other
        problems use it as their distinguished node (the leader, the
        wake-up source, the candidate tree's root).
        """

    @abstractmethod
    def program_factory(self) -> ProgramFactory:
        """The decoder: a factory producing one node program per node."""

    @classmethod
    def compute_advice_batch(
        cls,
        schemes: "list",
        graphs: "list",
        root: int = 0,
        traces: "Optional[list]" = None,
    ) -> "list":
        """The oracle over all seeds of one stacked sweep point.

        ``schemes[i]`` must be a distinct instance per graph — a scheme
        object may hold per-instance packing state that the analytic
        backend replays.  The default simply loops; precomputed Borůvka
        traces are picked up through each graph's trace memo, so
        ``traces`` is only consulted by overrides (the Theorem-3 schemes
        run their capacity search across all seeds at once).
        """
        del traces
        return [s.compute_advice(g, root=root) for s, g in zip(schemes, graphs)]

    # -------- declared theoretical bounds (for reporting only) --------

    def advice_bound_bits(self, n: int) -> Optional[float]:
        """Claimed bound on the maximum advice size, or ``None``."""
        return None

    def round_bound(self, n: int) -> Optional[float]:
        """Claimed bound on the number of rounds, or ``None``."""
        return None


@dataclass
class SchemeReport:
    """Everything measured while running one scheme on one instance."""

    scheme: str
    n: int
    m: int
    root: int
    advice: AdviceStats
    rounds: int
    metrics: RunMetrics
    check: OutputCheck
    advice_bound: Optional[float] = None
    round_bound: Optional[float] = None
    problem: str = DEFAULT_PROBLEM

    @property
    def correct(self) -> bool:
        """``True`` iff the decoder's outputs passed the problem's verifier."""
        return self.check.ok

    def as_row(self) -> Dict[str, Any]:
        """Flat dictionary used by the benchmark tables."""
        return {
            "problem": self.problem,
            "scheme": self.scheme,
            "n": self.n,
            "m": self.m,
            "max_advice_bits": self.advice.max_bits,
            "avg_advice_bits": round(self.advice.average_bits, 3),
            "total_advice_bits": self.advice.total_bits,
            "rounds": self.rounds,
            "max_edge_bits_per_round": self.metrics.max_edge_bits_per_round,
            "congest_factor": round(self.metrics.congest_factor(), 2),
            "correct": self.correct,
            "advice_bound": self.advice_bound,
            "round_bound": self.round_bound,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scheme}: n={self.n} max_advice={self.advice.max_bits}b "
            f"avg_advice={self.advice.average_bits:.2f}b rounds={self.rounds} "
            f"correct={self.correct}"
        )


def run_scheme(
    scheme: AdvisingScheme,
    graph: PortNumberedGraph,
    root: int = 0,
    max_rounds: Optional[int] = None,
    backend: str = "engine",
    advice: Optional[AdviceAssignment] = None,
    fault: Optional[FaultSpec] = None,
    fault_seed: int = 0,
) -> SchemeReport:
    """Run ``scheme`` end to end on ``graph`` and verify the output.

    ``advice`` may carry a precomputed oracle assignment — it **must** be
    the value ``scheme.compute_advice`` returned for this exact
    ``(graph, root)`` on this exact ``scheme`` object (the scheme holds
    packing state, e.g. the Theorem-3 layout, that the analytic backend
    replays).  The grouped runner uses this to compute each scheme's
    advice once per instance and run every backend against it.

    The oracle is given the instance and the designated root; the
    decoder is run with the resulting advice; the outputs are then
    checked by the verifier of the scheme's declared problem (for the
    paper's MST schemes: a rooted MST whose root is the designated one).

    ``backend`` selects how the decoder is executed:

    * ``"engine"`` — the :class:`~repro.simulator.engine.SyncEngine`
      simulates every node program round by round (the reference path);
    * ``"analytic"`` — per-round message counts, bit totals and halting
      rounds are computed directly from the Borůvka trace and advice
      packing (see :mod:`repro.simulator.analytic`), skipping the
      per-message simulation entirely.  Metrics are identical to the
      engine's (enforced by the equivalence test-suite).  Schemes without
      an analytic model, and runs that would exceed ``max_rounds``, fall
      back to the engine transparently.

    >>> from repro.graphs.generators import random_connected_graph
    >>> from repro.core.scheme_trivial import TrivialRankScheme
    >>> graph = random_connected_graph(32, 0.1, seed=1)
    >>> report = run_scheme(TrivialRankScheme(), graph, root=0)
    >>> report.correct, report.rounds  # 0 rounds: decoded from advice alone
    (True, 0)
    >>> report.advice.max_bits <= report.advice_bound
    True
    >>> analytic = run_scheme(TrivialRankScheme(), graph, root=0, backend="analytic")
    >>> analytic.as_row() == report.as_row()  # backends are interchangeable
    True
    """
    from repro.simulator.backends import BACKENDS

    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}")
    if fault is not None and fault.is_null:
        fault = None  # the null fault *is* the synchronous model
    if fault is not None:
        if backend != "engine":
            raise ValueError("adversarial execution requires the engine backend")
        if fault.churn and getattr(scheme, "problem", DEFAULT_PROBLEM) != "mst":
            raise ValueError("edge-weight churn is only defined for the MST problem")
        if advice is None:
            advice = scheme.compute_advice(graph, root=root)
        result = run_adversary(
            graph,
            scheme.program_factory(),
            advice=advice.as_payloads(),
            max_rounds=max_rounds,
            fault=fault,
            seed=fault_seed,
        )
        return _build_report(
            scheme, graph, root, advice, result, fault=fault, fault_seed=fault_seed
        )
    if backend == "analytic":
        from repro.simulator.analytic import AnalyticUnsupported, run_scheme_analytic

        try:
            advice, result = run_scheme_analytic(
                scheme, graph, root=root, max_rounds=max_rounds, advice=advice
            )
        except AnalyticUnsupported:
            result = None  # fall back to the engine (advice keeps its value)
        if result is not None:
            return _build_report(scheme, graph, root, advice, result)

    if advice is None:
        advice = scheme.compute_advice(graph, root=root)
    result = run_sync(
        graph,
        scheme.program_factory(),
        advice=advice.as_payloads(),
        max_rounds=max_rounds,
    )
    return _build_report(scheme, graph, root, advice, result)


def _build_report(
    scheme, graph, root, advice, result, fault=None, fault_seed=0
) -> SchemeReport:
    """Verify the outputs and assemble the report (shared by both backends)."""
    problem = getattr(scheme, "problem", DEFAULT_PROBLEM)
    if not result.completed:
        check = OutputCheck(False, "the decoder did not terminate within the round limit")
    else:
        # verification is a pure function of (problem, root, outputs); the
        # grouped executor verifies four schemes with identical outputs per
        # instance, so memoise the check on the graph (keyed by the outputs
        # themselves — a dict-equality probe, O(n) on hit)
        memo = getattr(graph, "_check_memo", None)
        if memo is None:
            memo = {}
            graph._check_memo = memo
        key = (problem, root)
        cached = memo.get(key)
        if cached is not None and cached[0] == result.outputs:
            check = cached[1]
        else:
            check = get_problem(problem).check_outputs(
                graph, result.outputs, expected_root=root
            )
            memo[key] = (result.outputs, check)
    if fault is not None and fault.churn and check.ok:
        # post-run weight churn: repair the verified tree incrementally,
        # re-verify on the churned instance, and charge the repair
        # traffic into the metrics (the memoised check above is safe to
        # reuse — the adversary masks faults, so the outputs equal the
        # synchronous run's; churn returns a *fresh* check and never
        # touches the memo)
        check = apply_churn(graph, root, check, fault, fault_seed, result.metrics)
    n = graph.n
    return SchemeReport(
        scheme=scheme.name,
        n=n,
        m=graph.m,
        root=root,
        advice=advice.stats(),
        rounds=result.metrics.rounds,
        metrics=result.metrics,
        check=check,
        advice_bound=scheme.advice_bound_bits(n),
        round_bound=scheme.round_bound(n),
        problem=problem,
    )

"""Advice assignments and their size accounting.

An oracle looks at the whole instance and assigns a bit string to every
node.  The two quantities the paper trades off against the number of
rounds are the **maximum** and the **average** advice length; an
``(m, t)``-advising scheme bounds the maximum by ``m`` and the running
time by ``t`` rounds (Theorem 1 and Theorem 2 additionally discuss the
average).  :class:`AdviceAssignment` stores the per-node strings and
computes exactly these statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.bits import BitString

__all__ = ["AdviceAssignment", "AdviceStats"]


@dataclass(frozen=True)
class AdviceStats:
    """Size statistics of one advice assignment."""

    n: int
    max_bits: int
    total_bits: int
    average_bits: float
    nodes_with_advice: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for tables and JSON reports."""
        return {
            "n": self.n,
            "max_bits": self.max_bits,
            "total_bits": self.total_bits,
            "average_bits": self.average_bits,
            "nodes_with_advice": self.nodes_with_advice,
        }


class AdviceAssignment:
    """Per-node advice bit strings for one instance."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("advice assignments need at least one node")
        self.n = n
        self._advice: Dict[int, BitString] = {}

    # ------------------------------------------------------------------ #
    # mutation (oracle side)
    # ------------------------------------------------------------------ #

    def set(self, node: int, bits: BitString) -> None:
        """Assign ``bits`` to ``node`` (replacing any previous string)."""
        self._check_node(node)
        self._advice[node] = bits

    def append(self, node: int, bits: BitString) -> None:
        """Concatenate ``bits`` to the advice of ``node``."""
        self._check_node(node)
        self._advice[node] = self.get(node) + bits

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def get(self, node: int) -> BitString:
        """Advice of ``node`` (the empty string when nothing was assigned)."""
        self._check_node(node)
        return self._advice.get(node, BitString.empty())

    def bits_of(self, node: int) -> int:
        """Length of the advice of ``node``."""
        return len(self.get(node))

    def __iter__(self) -> Iterator[Tuple[int, BitString]]:
        for node in range(self.n):
            yield node, self.get(node)

    def as_payloads(self) -> Dict[int, BitString]:
        """A ``node -> BitString`` mapping suitable for the simulator."""
        empty = BitString.empty()
        assigned = self._advice
        return {node: assigned.get(node, empty) for node in range(self.n)}

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> AdviceStats:
        """Maximum / total / average advice size of this assignment."""
        # unassigned nodes have size 0, so only assigned entries can
        # contribute to any of the aggregates — no need to enumerate n
        sizes = [len(bits) for bits in self._advice.values()]
        total = sum(sizes)
        return AdviceStats(
            n=self.n,
            max_bits=max(sizes, default=0),
            total_bits=total,
            average_bits=total / self.n,
            nodes_with_advice=sum(1 for s in sizes if s > 0),
        )

    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} out of range 0..{self.n - 1}")

"""Checking the outputs of a distributed MST run.

The MST problem of the paper requires every node to output the port of
the edge leading to its parent in some rooted MST, and the root to
output that it is the root (:data:`repro.mst.rooted_tree.ROOT_OUTPUT`).
:func:`check_outputs` validates a full output map:

1. exactly one node declares itself the root;
2. every other node names a valid port;
3. following parent pointers from every node reaches the root (no
   cycles, no second component);
4. the set of parent edges is a spanning tree of minimum total weight.

The function returns a structured :class:`OutputCheck` so that tests and
benchmarks can report *why* an output was rejected, not just that it
was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT

__all__ = ["OutputCheck", "check_outputs"]


@dataclass(frozen=True)
class OutputCheck:
    """Result of validating one distributed output map."""

    ok: bool
    reason: str = "ok"
    root: Optional[int] = None
    tree_edge_ids: tuple = ()
    tree_weight: float = 0.0
    mst_weight: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_outputs(
    graph: PortNumberedGraph,
    outputs: Dict[int, Any],
    expected_root: Optional[int] = None,
    tolerance: float = 1e-9,
) -> OutputCheck:
    """Validate per-node outputs against the MST problem specification.

    Parameters
    ----------
    graph:
        The instance the outputs were produced on.
    outputs:
        Mapping ``node -> port`` (or :data:`ROOT_OUTPUT` for the root).
    expected_root:
        If given, additionally require the declared root to be this node.
    """
    # -------- shape checks --------
    missing = [u for u in range(graph.n) if u not in outputs or outputs[u] is None]
    if missing:
        return OutputCheck(False, f"{len(missing)} node(s) produced no output")

    roots = [u for u in range(graph.n) if outputs[u] == ROOT_OUTPUT]
    if len(roots) != 1:
        return OutputCheck(False, f"expected exactly one root, found {len(roots)}")
    root = roots[0]
    if expected_root is not None and root != expected_root:
        return OutputCheck(False, f"root is {root}, expected {expected_root}")

    neighbors, edge_ids = graph.adjacency_tables()
    parent: Dict[int, int] = {}
    parent_edge: Dict[int, int] = {}
    for u in range(graph.n):
        if u == root:
            continue
        port = outputs[u]
        if not isinstance(port, int) or not 0 <= port < len(neighbors[u]):
            return OutputCheck(False, f"node {u} output an invalid port {port!r}")
        parent[u] = neighbors[u][port]
        parent_edge[u] = edge_ids[u][port]

    # -------- every node reaches the root (acyclicity + connectivity) --------
    status: Dict[int, int] = {root: 1}  # 1 = reaches root
    for start in range(graph.n):
        path: List[int] = []
        u = start
        while u not in status:
            status[u] = 0  # on the current path
            path.append(u)
            u = parent[u]
            if status.get(u) == 0:
                return OutputCheck(False, f"parent pointers contain a cycle through node {u}")
        if status[u] == 1:
            for v in path:
                status[v] = 1

    # -------- the parent edges form a minimum spanning tree --------
    tree_edges: Set[int] = set(parent_edge.values())
    if len(tree_edges) != graph.n - 1:
        return OutputCheck(
            False,
            f"parent edges form {len(tree_edges)} distinct edges, expected {graph.n - 1}",
        )
    tree_weight = graph.total_weight(tree_edges)
    mst_weight = graph.total_weight(kruskal_mst(graph))
    if abs(tree_weight - mst_weight) > tolerance:
        return OutputCheck(
            False,
            f"tree weight {tree_weight} differs from MST weight {mst_weight}",
            root=root,
            tree_edge_ids=tuple(sorted(tree_edges)),
            tree_weight=tree_weight,
            mst_weight=mst_weight,
        )
    return OutputCheck(
        True,
        "ok",
        root=root,
        tree_edge_ids=tuple(sorted(tree_edges)),
        tree_weight=tree_weight,
        mst_weight=mst_weight,
    )

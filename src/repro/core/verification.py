"""Backwards-compatible home of the MST output verifier.

The verifier implementation moved to :mod:`repro.problems.verify` when
the problem layer was extracted — the MST problem
(:class:`repro.problems.mst.MSTProblem`) now owns it, next to the other
problems' verifiers.  This module re-exports it so every historical
import path (``from repro.core.verification import check_outputs``)
keeps working unchanged.
"""

from repro.core.problem import OutputCheck
from repro.problems.verify import check_outputs

__all__ = ["OutputCheck", "check_outputs"]

"""Checking the outputs of a distributed MST run.

The MST problem of the paper requires every node to output the port of
the edge leading to its parent in some rooted MST, and the root to
output that it is the root (:data:`repro.mst.rooted_tree.ROOT_OUTPUT`).
:func:`check_outputs` validates a full output map:

1. exactly one node declares itself the root;
2. every other node names a valid port;
3. following parent pointers from every node reaches the root (no
   cycles, no second component);
4. the set of parent edges is a spanning tree of minimum total weight.

The function returns a structured :class:`OutputCheck` so that tests and
benchmarks can report *why* an output was rejected, not just that it
was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT

__all__ = ["OutputCheck", "check_outputs"]


@dataclass(frozen=True)
class OutputCheck:
    """Result of validating one distributed output map."""

    ok: bool
    reason: str = "ok"
    root: Optional[int] = None
    tree_edge_ids: tuple = ()
    tree_weight: float = 0.0
    mst_weight: float = 0.0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_outputs(
    graph: PortNumberedGraph,
    outputs: Dict[int, Any],
    expected_root: Optional[int] = None,
    tolerance: float = 1e-9,
) -> OutputCheck:
    """Validate per-node outputs against the MST problem specification.

    Parameters
    ----------
    graph:
        The instance the outputs were produced on.
    outputs:
        Mapping ``node -> port`` (or :data:`ROOT_OUTPUT` for the root).
    expected_root:
        If given, additionally require the declared root to be this node.
    """
    # -------- shape checks --------
    n = graph.n
    out_list = [outputs.get(u) for u in range(n)]
    missing = sum(1 for value in out_list if value is None)
    if missing:
        return OutputCheck(False, f"{missing} node(s) produced no output")

    roots = [u for u, value in enumerate(out_list) if value == ROOT_OUTPUT]
    if len(roots) != 1:
        return OutputCheck(False, f"expected exactly one root, found {len(roots)}")
    root = roots[0]
    if expected_root is not None and root != expected_root:
        return OutputCheck(False, f"root is {root}, expected {expected_root}")

    neighbors, edge_ids = graph.adjacency_tables()
    parent: List[int] = [-1] * n
    parent_edge: List[int] = [-1] * n
    for u, port in enumerate(out_list):
        if u == root:
            continue
        if not isinstance(port, int) or not 0 <= port < len(neighbors[u]):
            return OutputCheck(False, f"node {u} output an invalid port {port!r}")
        parent[u] = neighbors[u][port]
        parent_edge[u] = edge_ids[u][port]

    # -------- every node reaches the root (acyclicity + connectivity) --------
    status = [-1] * n  # -1 = unvisited, 0 = on the current path, 1 = reaches root
    status[root] = 1
    for start in range(n):
        path: List[int] = []
        u = start
        while status[u] < 0:
            status[u] = 0  # on the current path
            path.append(u)
            u = parent[u]
            if status[u] == 0:
                return OutputCheck(False, f"parent pointers contain a cycle through node {u}")
        if status[u] == 1:
            for v in path:
                status[v] = 1

    # -------- the parent edges form a minimum spanning tree --------
    tree_edges: Set[int] = set(parent_edge)
    tree_edges.discard(-1)
    if len(tree_edges) != n - 1:
        return OutputCheck(
            False,
            f"parent edges form {len(tree_edges)} distinct edges, expected {n - 1}",
        )
    tree_weight = graph.total_weight(tree_edges)
    # the reference MST weight is a pure function of the immutable graph
    mst_weight = getattr(graph, "_mst_weight_cache", None)
    if mst_weight is None:
        mst_weight = graph.total_weight(kruskal_mst(graph))
        graph._mst_weight_cache = mst_weight
    if abs(tree_weight - mst_weight) > tolerance:
        return OutputCheck(
            False,
            f"tree weight {tree_weight} differs from MST weight {mst_weight}",
            root=root,
            tree_edge_ids=tuple(sorted(tree_edges)),
            tree_weight=tree_weight,
            mst_weight=mst_weight,
        )
    return OutputCheck(
        True,
        "ok",
        root=root,
        tree_edge_ids=tuple(sorted(tree_edges)),
        tree_weight=tree_weight,
        mst_weight=mst_weight,
    )

"""Bit strings and prefix-free integer codes.

Advice in an advising scheme is a *bit string* handed to each node, and
the whole point of the paper is counting those bits exactly.  This
module provides:

* :class:`BitString` — an immutable sequence of bits with concatenation
  and slicing, hashable so it can be used in sets (the lower-bound
  pigeonhole argument counts distinct advice strings);
* :class:`BitWriter` / :class:`BitReader` — streaming construction and
  parsing;
* fixed-width unsigned integers and the self-delimiting Elias-γ code,
  which the Theorem-3 oracle uses so that fragment advice ``A(F)`` can
  be parsed from an untyped bit stream without any length fields.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

__all__ = ["BitString", "BitWriter", "BitReader"]


def _uint_bits(value: int, width: int) -> Iterator[int]:
    """Big-endian bits of ``value`` in ``width`` bits, after validation.

    Shared by :meth:`BitString.from_uint` and :meth:`BitWriter.write_uint`
    so the fixed-width encoding (and its error behaviour) exists once.
    """
    if value < 0:
        raise ValueError("cannot encode a negative value")
    if width < 0:
        raise ValueError("width must be non-negative")
    if width == 0:
        if value != 0:
            raise ValueError("only 0 fits in zero bits")
        return iter(())
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return ((value >> (width - 1 - k)) & 1 for k in range(width))


class BitString:
    """An immutable string of bits."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[Union[int, bool]] = ()) -> None:
        self._bits: Tuple[int, ...] = tuple(1 if b else 0 for b in bits)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def _wrap(cls, bits: Tuple[int, ...]) -> "BitString":
        """Internal: adopt an already-normalised tuple of 0/1 ints.

        Skips the per-bit normalisation of ``__init__`` — the writer and
        reader hot paths construct millions of strings whose bits are
        known to be clean already.
        """
        s = object.__new__(cls)
        s._bits = bits
        return s

    @staticmethod
    def empty() -> "BitString":
        """The empty bit string."""
        return BitString(())

    @classmethod
    def concat(cls, parts: Iterable["BitString"]) -> "BitString":
        """Concatenate many strings in one pass (cheaper than chained ``+``)."""
        return cls._wrap(tuple(chain.from_iterable(part._bits for part in parts)))

    @staticmethod
    def from_uint(value: int, width: int) -> "BitString":
        """Fixed-width big-endian encoding of ``value`` (``0 <= value < 2**width``)."""
        return BitString._wrap(tuple(_uint_bits(value, width)))

    @staticmethod
    def from_string(text: str) -> "BitString":
        """Parse a string of ``'0'``/``'1'`` characters."""
        if any(ch not in "01" for ch in text):
            raise ValueError("bit strings may only contain '0' and '1'")
        return BitString(int(ch) for ch in text)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def to_uint(self) -> int:
        """Interpret the whole string as a big-endian unsigned integer."""
        value = 0
        for b in self._bits:
            value = (value << 1) | b
        return value

    def to01(self) -> str:
        """Render as a ``'0'``/``'1'`` character string."""
        return "".join(str(b) for b in self._bits)

    def bit_length_exact(self) -> int:
        """Exact length in bits (hook used by the simulator's size estimator)."""
        return len(self._bits)

    # ------------------------------------------------------------------ #
    # sequence protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return BitString._wrap(self._bits[item])
        return self._bits[item]

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        return BitString._wrap(self._bits + other._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitString) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitString('{self.to01()}')"


class BitWriter:
    """Append-only builder of a :class:`BitString`."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: Union[int, bool]) -> "BitWriter":
        """Append a single bit."""
        self._bits.append(1 if bit else 0)
        return self

    def write_bits(self, bits: Iterable[Union[int, bool]]) -> "BitWriter":
        """Append a sequence of bits (e.g. another :class:`BitString`)."""
        self._bits.extend(1 if b else 0 for b in bits)
        return self

    def write_uint(self, value: int, width: int) -> "BitWriter":
        """Append a fixed-width big-endian unsigned integer."""
        self._bits.extend(_uint_bits(value, width))
        return self

    def write_gamma(self, value: int) -> "BitWriter":
        """Append the Elias-γ code of ``value`` (``value >= 1``).

        The γ code of ``v`` is ``floor(log2 v)`` zeros followed by the
        binary expansion of ``v`` (which starts with a 1), for a total of
        ``2 floor(log2 v) + 1`` bits.  It is prefix-free, so a stream of
        γ-coded integers needs no delimiters.
        """
        if value < 1:
            raise ValueError("Elias-gamma encodes integers >= 1")
        width = value.bit_length()
        if width > 1:
            self._bits.extend([0] * (width - 1))
        return self.write_uint(value, width)

    def getvalue(self) -> BitString:
        """The accumulated bit string."""
        return BitString._wrap(tuple(self._bits))


class BitReader:
    """Sequential reader over a :class:`BitString` (or any bit sequence)."""

    def __init__(self, bits: Sequence[int]) -> None:
        self._bits = list(bits)
        self._pos = 0

    @property
    def position(self) -> int:
        """Number of bits consumed so far."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of bits left to read."""
        return len(self._bits) - self._pos

    def at_end(self) -> bool:
        """``True`` when every bit has been consumed."""
        return self._pos >= len(self._bits)

    def read_bit(self) -> int:
        """Read one bit."""
        if self.at_end():
            raise EOFError("no bits left")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> BitString:
        """Read ``count`` bits as a :class:`BitString`."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.remaining < count:
            raise EOFError("not enough bits left")
        chunk = BitString._wrap(tuple(self._bits[self._pos : self._pos + count]))
        self._pos += count
        return chunk

    def read_uint(self, width: int) -> int:
        """Read a fixed-width big-endian unsigned integer."""
        return self.read_bits(width).to_uint()

    def read_gamma(self) -> int:
        """Read one Elias-γ coded integer (inverse of :meth:`BitWriter.write_gamma`)."""
        zeros = 0
        while True:
            bit = self.read_bit()
            if bit == 1:
                break
            zeros += 1
            if zeros > len(self._bits):  # pragma: no cover - defensive
                raise EOFError("malformed gamma code")
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value

"""The trivial ``(⌈log n⌉, 0)``-advising scheme (Section 1 of the paper).

The oracle picks a rooted MST ``T`` and tells every non-root node the
*rank* of its parent edge among its incident edges, where incident edges
are ordered by ``index_u(e)`` — first by weight, then by port number.
Since a node of degree ``d`` needs ``⌈log₂ d⌉ ≤ ⌈log₂ n⌉`` bits for the
rank, the maximum advice size is ``⌈log₂ n⌉`` bits (plus the one-bit
"I am the root" flag, deviation D2 in DESIGN.md), and the decoder needs
zero communication rounds: each node just sorts its incident edges
locally and outputs the port with the advised rank.

Theorem 1 shows this is essentially optimal for 0-round schemes, even on
average.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.advice import AdviceAssignment
from repro.core.bits import BitReader, BitString
from repro.core.oracle import AdvisingScheme
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = ["TrivialRankScheme"]


class _TrivialProgram(NodeProgram):
    """Zero-round decoder: output the port whose rank the advice names."""

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        if reader.at_end():
            # a node with no advice can only be a degree-0 singleton graph root
            ctx.halt(ROOT_OUTPUT)
            return
        if reader.read_bit() == 1:
            ctx.halt(ROOT_OUTPUT)
            return
        width = reader.remaining
        rank = reader.read_uint(width) + 1 if width > 0 else 1
        port = ctx.view.port_of_rank(rank)
        ctx.halt(port)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        # a 0-round algorithm never reaches this point
        ctx.halt()


class TrivialRankScheme(AdvisingScheme):
    """The straightforward ``(⌈log n⌉ + 1, 0)``-advising scheme for MST.

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> report = run_scheme(TrivialRankScheme(), random_connected_graph(32, 0.1, seed=1))
    >>> report.correct, report.rounds, report.metrics.total_messages
    (True, 0, 0)
    >>> report.advice.max_bits <= TrivialRankScheme().advice_bound_bits(32)
    True
    """

    name = "trivial-rank"

    def compute_advice(
        self,
        graph: PortNumberedGraph,
        root: int = 0,
        tree=None,
    ) -> AdviceAssignment:
        """Assign the advice (``tree`` may be passed to reuse a rooted MST)."""
        if tree is None:
            tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
        advice = AdviceAssignment(graph.n)
        # all parent-edge ranks in one gather over the cached slot order
        if graph.m:
            slot_rank = graph._slot_orders()[0]
            parent_port = np.asarray(tree.parent_port, dtype=np.int64)
            ranks = slot_rank[
                graph._offsets[:-1] + np.where(parent_port >= 0, parent_port, 0)
            ]
        else:
            ranks = np.zeros(graph.n, dtype=np.int64)  # edgeless: only the root
        # per non-root node the advice is the root flag 0 followed by the
        # rank in ⌈log₂ deg⌉ bits; all strings are filled in one flat
        # big-endian expansion instead of a from_uint call per node
        from repro.core.scheme_main import _bit_length_arr

        widths = _bit_length_arr(np.maximum(graph._degrees - 1, 0))
        lens = widths + 1
        starts = np.concatenate(([0], np.cumsum(lens[:-1])))
        total = int(starts[-1]) + int(lens[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
        wrep = np.repeat(widths, lens)
        vrep = np.repeat(ranks, lens)
        flat = np.where(
            within == 0, 0, (vrep >> np.maximum(wrep - within, 0)) & 1
        ).tolist()
        starts_l = starts.tolist()
        ends_l = (starts + lens).tolist()
        advice._advice = {
            u: BitString._wrap(tuple(flat[starts_l[u] : ends_l[u]]))
            for u in range(graph.n)
        }
        advice._advice[root] = BitString.from_uint(1, 1)
        return advice

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _TrivialProgram()

    def advice_bound_bits(self, n: int) -> float:
        # ⌈log₂(n-1)⌉ rank bits (degree is at most n-1) plus the root flag
        return math.ceil(math.log2(max(n - 1, 2))) + 1

    def round_bound(self, n: int) -> float:
        return 0.0

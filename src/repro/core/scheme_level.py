"""The literal, level-based variant of the Theorem-3 scheme (ablation of D1).

The paper's fragment advice stores, besides the up/down orientation and
the choosing node's position, the *level* of the fragment the selected
edge leads to — the parity of that fragment's depth in the contracted
fragment tree ``T_i``.  The choosing node then selects its minimum
weight incident edge whose far endpoint lies in a fragment of that
level, which discards all intra-fragment edges without ever naming the
edge explicitly.

The paper does not say how a node learns the *current-phase* level of
its neighbours (nodes in passive fragments receive no advice at that
phase and cannot compute their level locally, since it is a global
property of ``T_i``).  This executable variant resolves the gap the
direct way:

* the oracle hands **every** node a bitmap with its fragment's level at
  each phase ``1 .. ⌈log log n⌉`` (``⌈log log n⌉`` extra bits per node —
  at most 6 for any physically meaningful ``n``, but *not* ``O(1)``
  asymptotically, which is exactly what the ablation benchmark E7
  measures), and
* each phase window starts with one extra round in which every node
  announces its current level to all neighbours.

Because the minimum outgoing edge must be unique for the level filter to
reproduce the oracle's choice, this variant requires pairwise-distinct
edge weights (the standard assumption of the distributed MST
literature); the rank-coded primary scheme
(:class:`repro.core.scheme_main.ShortAdviceScheme`) has no such
restriction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np


from repro.core.bits import BitReader, BitString, BitWriter
from repro.core.scheme_main import (
    ShortAdviceScheme,
    _MainProgram,
    _PHASE_FIELD_BITS,
    num_boruvka_phases,
    phase_window_rounds,
)
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import BoruvkaTrace
from repro.mst.rooted_tree import ROOT_OUTPUT
from repro.simulator.algorithm import ProgramFactory
from repro.simulator.node import NodeContext

__all__ = ["LevelAdviceScheme"]

#: per-phase level announcement: ``(MSG_LEVEL, phase, level)``
MSG_LEVEL = 7


class LevelAdviceScheme(ShortAdviceScheme):
    """Theorem 3 with level-coded fragment advice (the paper's literal encoding).

    Same bounds shape as :class:`ShortAdviceScheme`; requires pairwise
    distinct weights (the level bit only identifies the target fragment
    uniquely when the MST is unique):

    >>> from repro.core.oracle import run_scheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> graph = random_connected_graph(32, 0.1, seed=1)  # "distinct" weight mode
    >>> report = run_scheme(LevelAdviceScheme(), graph)
    >>> report.correct
    True
    >>> dup = random_connected_graph(16, 0.2, seed=1, weight_mode="integer", weight_range=3)
    >>> LevelAdviceScheme().compute_advice(dup)
    Traceback (most recent call last):
        ...
    ValueError: the level-based variant requires pairwise-distinct edge weights; use ShortAdviceScheme for instances with duplicated weights
    """

    name = "theorem3-level"

    # ------------------------------ oracle ------------------------------ #

    def _check_instance(self, graph: PortNumberedGraph) -> None:
        if not graph.has_distinct_weights():
            raise ValueError(
                "the level-based variant requires pairwise-distinct edge weights; "
                "use ShortAdviceScheme for instances with duplicated weights"
            )

    def _prepare_headers(
        self, graph: PortNumberedGraph, trace: BoruvkaTrace, phases: int
    ) -> None:
        # stash the per-node level bitmaps for the shared header writer
        levels = self._node_levels(graph, trace, phases)
        self._levels = levels
        self._level_bits = {u: BitString._wrap(tuple(bits)) for u, bits in levels.items()}

    def _extra_header_bits(self, u: int) -> BitString:
        return self._level_bits[u]

    def _fragment_advice(self, sel) -> BitString:
        """``A(F)`` with the paper's literal level bit instead of the rank."""
        a_writer = BitWriter()
        a_writer.write_bit(1 if sel.is_up else 0)
        a_writer.write_bit(sel.level_of_target_fragment)
        a_writer.write_gamma(sel.choosing_dfs_index)
        return a_writer.getvalue()

    def _fragment_advice_batch(self, arrays):
        from repro.core.scheme_main import _batch_bit_codes

        return _batch_bit_codes(
            [
                ("bit", arrays["is_up"].astype(np.int64)),
                ("bit", arrays["level_of_target_fragment"]),
                ("gamma", arrays["choosing_dfs_index"]),
            ],
            arrays["fragment"].size,
        )

    @staticmethod
    def _node_levels(
        graph: PortNumberedGraph, trace: BoruvkaTrace, phases: int
    ) -> Dict[int, List[int]]:
        """Per node, its fragment's level at each phase ``1 .. phases``."""
        cols = []
        for i in range(1, phases + 1):
            if i <= len(trace.phases):
                phase = trace.phases[i - 1]
                depth = phase.fragment_tree.depth_array()
                cols.append((depth % 2)[phase.partition.fragment_of_array()])
            else:
                # the graph already merged into a single fragment: level 0
                cols.append(np.zeros(graph.n, dtype=np.int64))
        if cols:
            rows = np.stack(cols, axis=1).tolist()
        else:
            rows = [[] for _ in range(graph.n)]
        return {u: rows[u] for u in range(graph.n)}

    # ----------------------------- decoder ------------------------------ #

    def program_factory(self) -> ProgramFactory:
        return lambda ctx: _LevelProgram()

    # ------------------------- declared bounds --------------------------- #

    def advice_bound_bits(self, n: int) -> float:
        """Header + level bitmap (``⌈log log n⌉`` bits) + packed fragment advice."""
        return 7 + num_boruvka_phases(n) + 12

    def round_bound(self, n: int) -> float:
        phases = num_boruvka_phases(n)
        log_n = math.ceil(math.log2(max(n, 2)))
        schedule = sum(phase_window_rounds(i) + 2 for i in range(1, phases + 1))
        return schedule + 2 * log_n + 2


class _LevelProgram(_MainProgram):
    """Decoder of the level-based variant."""

    def __init__(self) -> None:
        self.levels: List[int] = []
        self.neighbor_levels: Dict[int, int] = {}
        self.level_sent = False
        super().__init__()

    def _reset_scratch(self) -> None:
        super()._reset_scratch()
        self.neighbor_levels = {}
        self.level_sent = False

    # -------------------------- advice parsing -------------------------- #

    def init(self, ctx: NodeContext) -> None:
        advice: BitString = ctx.advice if ctx.advice is not None else BitString.empty()
        reader = BitReader(advice)
        if reader.remaining >= _PHASE_FIELD_BITS + 2:
            self.num_phases = reader.read_uint(_PHASE_FIELD_BITS)
            self.collect_flag = bool(reader.read_bit())
            if reader.read_bit() == 1:
                self.final_bit = reader.read_bit()
            self.levels = [reader.read_bit() for _ in range(self.num_phases)]
            self.data = list(reader.read_bits(reader.remaining))
        if ctx.degree == 0:
            ctx.halt(ROOT_OUTPUT)
            return
        self._port_order = {p: k for k, p in enumerate(ctx.view.ports_by_weight_then_port())}

    # ------------------------------ schedule ----------------------------- #

    def _window(self, phase: int) -> int:
        # one extra round for the level exchange, one round of slack
        return phase_window_rounds(phase) + 2

    def _convergecast_allowed(self, relative: int) -> bool:
        return relative >= 2

    # -------------------------- per-phase hooks -------------------------- #

    def _phase_prelude(
        self, ctx: NodeContext, inbox: Dict[int, object], phase: int, relative: int
    ) -> None:
        # record level announcements from neighbours
        for port, payload in inbox.items():
            if isinstance(payload, tuple) and payload and payload[0] == MSG_LEVEL:
                if payload[1] == phase:
                    self.neighbor_levels[port] = payload[2]
        # announce this node's level on every port in the first round
        if relative == 1 and not self.level_sent:
            my_level = self.levels[phase - 1] if phase - 1 < len(self.levels) else 0
            for port in ctx.ports():
                ctx.send(port, (MSG_LEVEL, phase, my_level))
            self.level_sent = True

    def _parse_fragment_advice(
        self, stream: BitString
    ) -> Optional[Tuple[int, Tuple, int]]:
        try:
            reader = BitReader(stream)
            bup = bool(reader.read_bit())
            blevel = reader.read_bit()
            j = reader.read_gamma()
            return j, (bup, blevel), reader.position
        except EOFError:
            return None

    def _choosing_action(self, ctx: NodeContext, phase: int, record: Tuple) -> None:
        bup, blevel = record
        candidates = [
            p for p in ctx.ports() if self.neighbor_levels.get(p) == blevel
        ]
        if not candidates:  # defensive: malformed advice / lost announcements
            return
        port = min(candidates, key=lambda p: (ctx.weight(p), p))
        self._attach_across(ctx, phase, port, bup)

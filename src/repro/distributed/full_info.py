"""The LOCAL-model baseline: gather everything, compute locally.

In the LOCAL model there is a trivial ``(0, D+1)``-advising scheme for
every graph of diameter ``D`` with distinct node identifiers (footnote 2
of the paper): after ``D + 1`` rounds of full-information flooding every
node knows the entire weighted graph and can compute the same rooted MST
locally.  This baseline makes that concrete:

* round 1: every node announces its identifier to its neighbours (so
  that ports can be associated with identifiers);
* every subsequent round: every node sends its whole knowledge base —
  the set of per-node records ``id -> [(weight, neighbour id), ...]`` —
  to all neighbours and merges what it receives;
* when a node's knowledge stops growing and is *closed* (every
  identifier mentioned anywhere also has its own record), the node
  reconstructs the graph, computes the reference MST with the shared
  canonical tie-breaking, roots it at the smallest identifier, and
  outputs the port of its parent edge.

The number of rounds is ``D + O(1)``; the price is paid in bandwidth:
messages grow to ``Θ(m log n)`` bits, which the simulator measures and
the benchmarks report as a violently non-CONGEST ``congest_factor``.
Node identifiers must be distinct (as the paper requires for this
algorithm).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.distributed.base import DistributedMSTBaseline
from repro.graphs.properties import diameter
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.rooted_tree import ROOT_OUTPUT
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = ["FullInformationMST"]

#: record announcing the sender's identifier (round 1)
_MSG_HELLO = 11
#: knowledge-base gossip: a tuple of per-node records
_MSG_KNOWLEDGE = 12


class _FullInfoProgram(NodeProgram):
    """Flood local knowledge until the whole graph is known, then solve locally."""

    def __init__(self) -> None:
        # id -> tuple of (weight, neighbour id) indexed by that node's ports
        self.records: Dict[int, Tuple[Tuple[float, int], ...]] = {}
        self.neighbor_ids: Dict[int, int] = {}
        self.prev_size = -1
        # the knowledge payload is rebuilt only when the knowledge base
        # grew (records never shrink), so the same tuple object is reused
        # across rounds — the engine then also sizes it only once per round
        self._payload_cache: Optional[Tuple] = None
        self._payload_cache_size = -1

    def init(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(ROOT_OUTPUT)
            return
        for port in ctx.ports():
            ctx.send(port, (_MSG_HELLO, ctx.node_id))

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        for port, payload in inbox.items():
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == _MSG_HELLO:
                self.neighbor_ids[port] = payload[1]
            elif payload[0] == _MSG_KNOWLEDGE:
                for node_id, record in payload[1]:
                    self.records.setdefault(node_id, tuple(tuple(x) for x in record))

        if len(self.neighbor_ids) == ctx.degree and ctx.node_id not in self.records:
            # own record becomes available once every neighbour identified itself
            self.records[ctx.node_id] = tuple(
                (ctx.weight(p), self.neighbor_ids[p]) for p in ctx.ports()
            )

        if self._knowledge_closed() and len(self.records) == self.prev_size:
            self._finish(ctx)
            return
        self.prev_size = len(self.records)

        if self._payload_cache_size != len(self.records):
            self._payload_cache = (_MSG_KNOWLEDGE, tuple(sorted(self.records.items())))
            self._payload_cache_size = len(self.records)
        payload = self._payload_cache
        for port in ctx.ports():
            ctx.send(port, payload)

    # ------------------------------------------------------------------ #

    def _knowledge_closed(self) -> bool:
        if not self.records:
            return False
        mentioned = set(self.records)
        for record in self.records.values():
            mentioned.update(nid for _, nid in record)
        return mentioned == set(self.records)

    def _finish(self, ctx: NodeContext) -> None:
        # reconstruct edges with the canonical (weight, sorted id pair) order
        edges: Dict[Tuple[int, int], float] = {}
        for node_id, record in self.records.items():
            for weight, other in record:
                key = (min(node_id, other), max(node_id, other))
                edges[key] = weight
        ordered = sorted(edges.items(), key=lambda kv: (kv[1], kv[0]))

        ids = sorted(self.records)
        index_of = {node_id: k for k, node_id in enumerate(ids)}
        parent = list(range(len(ids)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        tree_adj: Dict[int, List[int]] = {node_id: [] for node_id in ids}
        for (a, b), _w in ordered:
            ra, rb = find(index_of[a]), find(index_of[b])
            if ra != rb:
                parent[ra] = rb
                tree_adj[a].append(b)
                tree_adj[b].append(a)

        # root the tree at the smallest identifier and find this node's parent
        root_id = ids[0]
        if ctx.node_id == root_id:
            ctx.halt(ROOT_OUTPUT)
            return
        parent_of: Dict[int, Optional[int]] = {root_id: None}
        stack = [root_id]
        while stack:
            x = stack.pop()
            for y in tree_adj[x]:
                if y not in parent_of:
                    parent_of[y] = x
                    stack.append(y)
        my_parent = parent_of[ctx.node_id]
        for port, nid in self.neighbor_ids.items():
            if nid == my_parent:
                ctx.halt(port)
                return
        ctx.halt()  # pragma: no cover - inconsistent knowledge


class FullInformationMST(DistributedMSTBaseline):
    """The ``(0, D + O(1))`` LOCAL-model baseline (huge messages, few rounds)."""

    name = "local-full-info"
    requires_n = False

    def program_factory(self, graph: PortNumberedGraph) -> ProgramFactory:
        return lambda ctx: _FullInfoProgram()

    def round_bound(self, graph: PortNumberedGraph) -> float:
        return diameter(graph) + 3

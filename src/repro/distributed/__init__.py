"""No-advice distributed MST baselines.

The paper contrasts its advising schemes with what is achievable
*without* any a-priori information: the classical GHS algorithm [12]
runs in ``O(n log n)`` rounds, and in the CONGEST model every algorithm
needs ``Ω̃(√n)`` rounds [18], whereas in the LOCAL model ``D + 1``
rounds always suffice by collecting the whole graph.  These baselines
make the comparison executable:

``full_info``
    The ``(0, D+1)``-style LOCAL algorithm: every node floods its local
    knowledge until it knows the whole graph, then computes the MST
    locally.  Few rounds, enormous messages (measured by the simulator).
``boruvka_sync``
    A synchronised, GHS-style distributed Borůvka in the spirit of [12]:
    fragment identifiers are flooded over fragment trees, minimum
    outgoing edges are found by convergecast, and fragments merge and
    re-root each phase.  Nodes are given ``n`` (strictly more knowledge
    than the advising schemes receive), yet the algorithm still needs
    ``Θ(n log n)`` rounds — which is exactly the gap Theorem 3 closes
    with 1 constant-size advice string per node.
``base``
    The common ``DistributedMSTBaseline`` interface and the
    ``run_baseline`` driver (simulation + output verification).
"""

from repro.distributed.base import (
    BaselineReport,
    DistributedBaseline,
    DistributedMSTBaseline,
    run_baseline,
)
from repro.distributed.full_info import FullInformationMST
from repro.distributed.boruvka_sync import SynchronizedBoruvkaMST

__all__ = [
    "BaselineReport",
    "DistributedBaseline",
    "DistributedMSTBaseline",
    "run_baseline",
    "FullInformationMST",
    "SynchronizedBoruvkaMST",
]

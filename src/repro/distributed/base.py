"""Common interface of the no-advice distributed baselines.

A baseline is a distributed algorithm that receives *no oracle advice*;
the only inputs of a node are its local view (and, where documented, the
number of nodes ``n``).  Baselines therefore cannot promise which node
ends up distinguished in the output (the root of the tree, the leader,
the wake-up source) — :func:`run_baseline` checks the output against the
specification of the baseline's declared problem without pinning the
root.

``DistributedMSTBaseline`` remains as an alias of
:class:`DistributedBaseline` for the historical MST-only import path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.problem import DEFAULT_PROBLEM, OutputCheck, get_problem
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.adversary import FaultSpec, apply_churn, run_adversary
from repro.simulator.algorithm import ProgramFactory
from repro.simulator.engine import run_sync
from repro.simulator.metrics import RunMetrics

__all__ = [
    "DistributedBaseline",
    "DistributedMSTBaseline",
    "BaselineReport",
    "run_baseline",
]


class DistributedBaseline(ABC):
    """A distributed algorithm that uses no advice."""

    #: short identifier used in benchmark tables
    name: str = "baseline"
    #: the problem this baseline solves (selects the output verifier)
    problem: str = DEFAULT_PROBLEM
    #: whether the algorithm assumes every node knows ``n`` (documented deviation)
    requires_n: bool = False

    @abstractmethod
    def program_factory(self, graph: PortNumberedGraph) -> ProgramFactory:
        """Node-program factory.

        The graph argument is used *only* to pass global constants the
        baseline is documented to assume (``n`` for the synchronised
        Borůvka baseline); node programs still never see the graph
        object itself.
        """

    def round_bound(self, graph: PortNumberedGraph) -> Optional[float]:
        """Claimed bound on the number of rounds, or ``None``."""
        return None


#: historical name of the base class, kept importable for downstream code
DistributedMSTBaseline = DistributedBaseline


@dataclass
class BaselineReport:
    """Measured behaviour of one baseline on one instance."""

    baseline: str
    n: int
    m: int
    rounds: int
    metrics: RunMetrics
    check: OutputCheck
    round_bound: Optional[float] = None
    problem: str = DEFAULT_PROBLEM

    @property
    def correct(self) -> bool:
        """``True`` iff the output passed the problem's verifier."""
        return self.check.ok

    def as_row(self) -> Dict[str, Any]:
        """Flat dictionary used by the benchmark tables."""
        return {
            "problem": self.problem,
            "scheme": self.baseline,
            "n": self.n,
            "m": self.m,
            "max_advice_bits": 0,
            "avg_advice_bits": 0.0,
            "total_advice_bits": 0,
            "rounds": self.rounds,
            "max_edge_bits_per_round": self.metrics.max_edge_bits_per_round,
            "congest_factor": round(self.metrics.congest_factor(), 2),
            "correct": self.correct,
            "round_bound": self.round_bound,
        }


def run_baseline(
    baseline: DistributedBaseline,
    graph: PortNumberedGraph,
    max_rounds: Optional[int] = None,
    fault: Optional[FaultSpec] = None,
    fault_seed: int = 0,
) -> BaselineReport:
    """Run a no-advice baseline end to end and verify its output.

    ``fault`` selects the adversarial engine (seeded delays and
    crash/recovery; ``fault_seed`` pins the schedule).  ``max_rounds``
    keeps bounding *logical* rounds under the adversary, so a baseline
    with a fixed round schedule never spuriously times out merely
    because delays stretched physical time.
    """
    if fault is not None and fault.is_null:
        fault = None
    problem = getattr(baseline, "problem", DEFAULT_PROBLEM)
    if fault is not None and fault.churn and problem != "mst":
        raise ValueError("edge-weight churn is only defined for the MST problem")
    if max_rounds is None:
        bound = baseline.round_bound(graph)
        if bound is not None:
            max_rounds = int(bound) + 50
    if fault is None:
        result = run_sync(
            graph,
            baseline.program_factory(graph),
            advice=None,
            max_rounds=max_rounds,
        )
    else:
        result = run_adversary(
            graph,
            baseline.program_factory(graph),
            advice=None,
            max_rounds=max_rounds,
            fault=fault,
            seed=fault_seed,
        )
    if not result.completed:
        check = OutputCheck(False, "the baseline did not terminate within the round limit")
    else:
        check = get_problem(problem).check_outputs(graph, result.outputs, expected_root=None)
    if fault is not None and fault.churn and check.ok:
        # the baseline's own root anchors the repaired tree (a baseline
        # cannot promise which node ends up distinguished)
        check = apply_churn(graph, check.root, check, fault, fault_seed, result.metrics)
    return BaselineReport(
        baseline=baseline.name,
        n=graph.n,
        m=graph.m,
        rounds=result.metrics.rounds,
        metrics=result.metrics,
        check=check,
        round_bound=baseline.round_bound(graph),
        problem=problem,
    )

"""A synchronised, GHS-style distributed Borůvka without advice.

This is the library's stand-in for the classical no-advice distributed
MST algorithms the paper compares against (Gallager–Humblet–Spira [12]
and its descendants): fragments grow by repeatedly (1) flooding the
fragment identifier over the fragment tree, (2) exchanging identifiers
with neighbours to recognise outgoing edges, (3) convergecasting the
minimum outgoing edge to the fragment root, (4) sending a merge request
across the winning edge, and (5) re-rooting the merged fragment from the
core edge (the unique edge chosen by both of its fragments).

Because nodes have no advice they cannot know when any of these
tree-wide steps has finished, so every step is given a worst-case budget
of ``n + 2`` rounds and every node is told ``n`` up front (a documented
concession that only *strengthens* the comparison: even with strictly
more knowledge than the advising schemes receive, the baseline needs
``Θ(n log n)`` rounds, against ``O(log n)`` for Theorem 3 and ``1`` for
Theorem 2).  Messages stay small (``O(log n)`` bits), i.e. the baseline
is CONGEST-compatible, unlike the full-information LOCAL baseline.

Requirements (standard for GHS-style algorithms): pairwise-distinct edge
weights and pairwise-distinct node identifiers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.distributed.base import DistributedMSTBaseline
from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.rooted_tree import ROOT_OUTPUT
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.node import NodeContext

__all__ = ["SynchronizedBoruvkaMST"]

_MSG_FRAG = 21      # (tag, phase, fragment id)
_MSG_NEIGH = 22     # (tag, phase, fragment id)
_MSG_CONVMIN = 23   # (tag, phase, weight or None)
_MSG_WINNER = 24    # (tag, phase)
_MSG_MERGE = 25     # (tag, phase, sender node id)
_MSG_ADOPT = 26     # (tag, phase)


class _SyncBoruvkaProgram(NodeProgram):
    """Node program of the synchronised Borůvka baseline."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree_budget = n + 2                     # budget of one tree-wide step
        self.window = 4 * self.tree_budget + 8       # rounds per phase
        self.num_phases = max(1, math.ceil(math.log2(max(n, 2))))
        # fragment structure
        self.parent_port: Optional[int] = None
        self.child_ports: List[int] = []
        self.frag_id: Optional[int] = None
        self.current_phase = -1
        self._reset_phase_scratch()

    def _reset_phase_scratch(self) -> None:
        self.neighbor_frag: Dict[int, int] = {}
        self.frag_forwarded = False
        self.neigh_sent = False
        self.local_min: Optional[Tuple[float, int]] = None  # (weight, port)
        self.child_reports: Dict[int, Optional[float]] = {}
        self.conv_sent = False
        self.min_source: Optional[Tuple[str, int]] = None   # ("self", port) / ("child", port)
        self.winner_handled = False
        self.merge_sent_port: Optional[int] = None
        self.merge_received: Dict[int, int] = {}             # port -> sender node id
        self.adopted = False
        self.adopt_started = False

    # ------------------------------------------------------------------ #

    def init(self, ctx: NodeContext) -> None:
        if ctx.degree == 0:
            ctx.halt(ROOT_OUTPUT)
            return
        self.frag_id = ctx.node_id

    def on_round(self, ctx: NodeContext, inbox: Dict[int, object]) -> None:
        total_rounds = self.num_phases * self.window
        if ctx.round > total_rounds:
            ctx.halt(ROOT_OUTPUT if self.parent_port is None else self.parent_port)
            return
        phase = (ctx.round - 1) // self.window
        relative = (ctx.round - 1) % self.window + 1
        if phase != self.current_phase:
            self.current_phase = phase
            self._reset_phase_scratch()

        self._handle_inbox(ctx, inbox, phase)
        self._step(ctx, phase, relative)

        if ctx.round == total_rounds:
            ctx.halt(ROOT_OUTPUT if self.parent_port is None else self.parent_port)
            return
        # every spontaneous (non-message-triggered) action of this program
        # happens at one of three fixed relative rounds per phase window or
        # at the final halting round; declare the next one so the engine
        # can skip the silent rounds in between (messages still wake us)
        ctx.idle_until(min(self._next_scheduled_round(ctx.round), total_rounds))

    def _next_scheduled_round(self, round_number: int) -> int:
        """The next absolute round with a spontaneous action after ``round_number``."""
        budget = self.tree_budget
        phase_start = ((round_number - 1) // self.window) * self.window
        for relative in (1, budget + 1, 3 * budget + 5):
            if phase_start + relative > round_number:
                return phase_start + relative
        return phase_start + self.window + 1  # first round of the next phase

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #

    def _handle_inbox(self, ctx: NodeContext, inbox: Dict[int, object], phase: int) -> None:
        for port, payload in inbox.items():
            if not isinstance(payload, tuple) or not payload or payload[1] != phase:
                continue
            tag = payload[0]
            if tag == _MSG_FRAG:
                self.frag_id = payload[2]
                if not self.frag_forwarded:
                    for p in self.child_ports:
                        ctx.send(p, (_MSG_FRAG, phase, self.frag_id))
                    self.frag_forwarded = True
            elif tag == _MSG_NEIGH:
                self.neighbor_frag[port] = payload[2]
            elif tag == _MSG_CONVMIN:
                self.child_reports[port] = payload[2]
            elif tag == _MSG_WINNER:
                self._handle_winner(ctx, phase)
            elif tag == _MSG_MERGE:
                self.merge_received[port] = payload[2]
            elif tag == _MSG_ADOPT:
                self._handle_adopt(ctx, phase, port)

    # ------------------------------------------------------------------ #
    # the fixed sub-window schedule of one phase
    # ------------------------------------------------------------------ #

    def _step(self, ctx: NodeContext, phase: int, relative: int) -> None:
        budget = self.tree_budget

        # (A) fragment-identifier broadcast over the fragment tree
        if relative == 1 and self.parent_port is None:
            self.frag_id = ctx.node_id
            for p in self.child_ports:
                ctx.send(p, (_MSG_FRAG, phase, self.frag_id))
            self.frag_forwarded = True

        # (B) exchange fragment identifiers with every neighbour
        if relative == budget + 1 and not self.neigh_sent:
            for p in ctx.ports():
                ctx.send(p, (_MSG_NEIGH, phase, self.frag_id))
            self.neigh_sent = True

        # (C) convergecast of the minimum outgoing edge
        if budget + 2 <= relative <= 3 * budget + 3 and not self.conv_sent:
            if len(self.neighbor_frag) == ctx.degree and all(
                p in self.child_reports for p in self.child_ports
            ):
                self._complete_convergecast(ctx, phase)

        # (E) core detection: the larger-identifier endpoint of the core edge
        #     becomes the root of the merged fragment and starts re-rooting
        if relative == 3 * budget + 5 and not self.adopt_started:
            self._maybe_become_new_root(ctx, phase)

    def _complete_convergecast(self, ctx: NodeContext, phase: int) -> None:
        self.conv_sent = True
        # local minimum outgoing edge (weights are pairwise distinct)
        candidates = [
            (ctx.weight(p), p)
            for p in ctx.ports()
            if self.neighbor_frag.get(p) != self.frag_id
        ]
        self.local_min = min(candidates) if candidates else None

        best: Optional[float] = self.local_min[0] if self.local_min else None
        self.min_source = ("self", self.local_min[1]) if self.local_min else None
        for p in self.child_ports:
            report = self.child_reports.get(p)
            if report is not None and (best is None or report < best):
                best = report
                self.min_source = ("child", p)

        if self.parent_port is not None:
            ctx.send(self.parent_port, (_MSG_CONVMIN, phase, best))
        elif best is not None:
            # fragment root: route the decision towards the winning node
            self._handle_winner(ctx, phase)

    def _handle_winner(self, ctx: NodeContext, phase: int) -> None:
        if self.winner_handled or self.min_source is None:
            return
        self.winner_handled = True
        kind, port = self.min_source
        if kind == "child":
            ctx.send(port, (_MSG_WINNER, phase))
        else:
            self.merge_sent_port = port
            ctx.send(port, (_MSG_MERGE, phase, ctx.node_id))

    def _maybe_become_new_root(self, ctx: NodeContext, phase: int) -> None:
        p = self.merge_sent_port
        if p is None or p not in self.merge_received:
            return
        if ctx.node_id > self.merge_received[p]:
            # this node is the chosen endpoint of the core edge
            self.adopt_started = True
            self.adopted = True
            structural = self._structural_ports()
            self.parent_port = None
            self.child_ports = sorted(structural)
            for q in self.child_ports:
                ctx.send(q, (_MSG_ADOPT, phase))

    def _handle_adopt(self, ctx: NodeContext, phase: int, arrival_port: int) -> None:
        if self.adopted:
            return
        self.adopted = True
        structural = self._structural_ports()
        structural.discard(arrival_port)
        self.parent_port = arrival_port
        self.child_ports = sorted(structural)
        for q in self.child_ports:
            ctx.send(q, (_MSG_ADOPT, phase))

    def _structural_ports(self) -> set:
        """Ports of this node's edges in the *merged* fragment tree."""
        structural = set(self.child_ports)
        if self.parent_port is not None:
            structural.add(self.parent_port)
        if self.merge_sent_port is not None:
            structural.add(self.merge_sent_port)
        structural.update(self.merge_received.keys())
        return structural


class SynchronizedBoruvkaMST(DistributedMSTBaseline):
    """GHS-style no-advice MST: ``Θ(n log n)`` rounds, CONGEST-size messages."""

    name = "sync-boruvka"
    requires_n = True

    def program_factory(self, graph: PortNumberedGraph) -> ProgramFactory:
        if not graph.has_distinct_weights():
            raise ValueError("the GHS-style baseline requires pairwise-distinct weights")
        if len(set(int(x) for x in graph.node_ids)) != graph.n:
            raise ValueError("the GHS-style baseline requires distinct node identifiers")
        n = graph.n
        return lambda ctx: _SyncBoruvkaProgram(n)

    def round_bound(self, graph: PortNumberedGraph) -> float:
        n = graph.n
        window = 4 * (n + 2) + 8
        return window * max(1, math.ceil(math.log2(max(n, 2))))

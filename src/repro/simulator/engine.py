"""The synchronous round engine.

Execution proceeds exactly as in the paper's model:

1. every node program runs :meth:`~repro.simulator.algorithm.NodeProgram.init`
   (round 0, before any communication); a 0-round algorithm terminates
   here;
2. while at least one node is still running *or at least one message is
   in flight*, a new round starts: all messages sent in the previous
   round are delivered simultaneously, and every non-halted node's
   ``on_round`` is invoked with its inbox;
3. the run ends when every node has halted and no message is in flight
   (or ``max_rounds`` is hit, which is reported as a failure via
   ``completed=False`` and ``stop_reason="max_rounds"``).

The number of *rounds* reported is the number of iterations of step 2 —
so an algorithm that never sends anything uses 0 rounds, matching the
``(⌈log n⌉, 0)`` accounting of the trivial scheme.

Message accounting: every message is charged to :class:`RunMetrics` in
the round it travels, *including* messages that were sent by nodes that
then halted before anyone could receive them.  If every node halts while
messages are still in flight, the engine runs one final "flush" round
that counts those bits (CONGEST charges the wire, not the reader) and
records them as ``undelivered_messages`` — they are never handed to a
node program.  Without this flush, bits sent in the last round would
silently vanish from the CONGEST totals.

Determinism: nodes are processed in index order and delivery is a pure
function of the outboxes, so a run is a deterministic function of
(graph, programs, advice).

Performance: the run loop only schedules non-halted nodes (the active
list shrinks as nodes halt instead of being re-filtered over all ``n``
every round), tracer checks are hoisted out of the per-message delivery
loop, and :func:`~repro.simulator.message.estimate_bits` memoizes the
common payload shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.trace import Tracer

__all__ = ["ENGINE_VERSION", "AlgorithmError", "RunResult", "SyncEngine", "run_sync"]

#: bumped whenever the engine's execution or accounting semantics change
#: (PR 1 changed message accounting); mixed into runner cache keys so rows
#: simulated by an older engine are never served as fresh
ENGINE_VERSION = 2


class AlgorithmError(RuntimeError):
    """An exception raised inside a node program, annotated with its context.

    The engine wraps any exception escaping ``init`` or ``on_round`` so
    that the failing node and round are visible in the report — without
    this, a bug deep inside a decoder state machine surfaces as an
    anonymous stack trace with no way to tell which of the ``n``
    simulated nodes misbehaved.
    """

    def __init__(self, node: int, round_number: int, original: BaseException) -> None:
        super().__init__(
            f"node {node} failed in round {round_number}: "
            f"{type(original).__name__}: {original}"
        )
        self.node = node
        self.round_number = round_number
        self.original = original


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    #: per-node outputs (node index -> output value)
    outputs: Dict[int, Any]
    #: communication metrics
    metrics: RunMetrics
    #: whether every node halted before ``max_rounds``
    completed: bool
    #: number of nodes that never produced an output
    missing_outputs: int = 0
    #: why the run stopped: ``"completed"`` (every node halted and no
    #: message was left in flight) or ``"max_rounds"`` (the round limit
    #: was hit — including non-halting programs that never send anything,
    #: which previously spun to the limit with no distinguishable signal)
    stop_reason: str = "completed"


class SyncEngine:
    """Drives a set of node programs over a :class:`Network` synchronously.

    The accounting semantics (round 0 = init, per-round charging, the
    final flush, ``max_rounds`` truncation) are specified in
    ``docs/accounting.md`` and mirrored exactly by the analytic backend.

    >>> from repro.graphs.generators import path_graph
    >>> from repro.core.scheme_trivial import TrivialRankScheme
    >>> scheme = TrivialRankScheme()
    >>> graph = path_graph(5, seed=0)
    >>> advice = scheme.compute_advice(graph, root=0)
    >>> result = SyncEngine(graph, scheme.program_factory(), advice=advice.as_payloads()).run()
    >>> result.completed, result.stop_reason, result.metrics.rounds
    (True, 'completed', 0)
    >>> sorted(result.outputs) == list(range(5))  # one output per node
    True
    """

    def __init__(
        self,
        graph: PortNumberedGraph,
        program_factory: ProgramFactory,
        advice: Optional[Dict[int, Any]] = None,
        max_rounds: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.network = Network(graph)
        self.graph = graph
        self.advice = advice or {}
        self.max_rounds = max_rounds if max_rounds is not None else 20 * graph.n + 100
        self.tracer = tracer

        self.contexts: List[NodeContext] = []
        self.programs: List[NodeProgram] = []
        views = graph.local_views()  # one bulk conversion, not n numpy round-trips
        for u in range(graph.n):
            ctx = NodeContext(views[u], self.advice.get(u))
            self.contexts.append(ctx)
            self.programs.append(program_factory(ctx))

        self.metrics = RunMetrics(n=graph.n)

    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        """Execute the algorithm to completion and return the results.

        The loop keeps going while a node is still running *or* a message
        is still in flight.  Messages left in flight after the last node
        halts are flushed through one final accounting round (see the
        module docstring); before this fix those bits silently vanished
        from the CONGEST totals.

        Note on stuck programs: a non-halted node is re-scheduled every
        round even with an empty inbox — fixed round schedules rely on
        this — so the engine cannot distinguish "waiting for round k"
        from "stuck forever" and runs to ``max_rounds``, reporting
        ``stop_reason="max_rounds"`` and ``completed=False``.
        """
        contexts = self.contexts
        programs = self.programs
        network = self.network
        metrics = self.metrics
        tracer = self.tracer
        n = self.graph.n

        # round 0: initialisation, no communication
        round0_traced = False
        for u in range(n):
            ctx = contexts[u]
            ctx._advance_round(0)
            self._invoke(u, 0, programs[u].init, ctx)
            if ctx.halted and tracer is not None:
                if not round0_traced:
                    # one round-0 record for the whole run, not one per
                    # halting node
                    tracer.begin_round(0)
                    round0_traced = True
                tracer.record_halt(0, u, ctx.output)

        # nodes still running, in index order (determinism) — shrinks as
        # nodes halt instead of re-scanning all n contexts every round
        active = [u for u in range(n) if not contexts[u].halted]
        on_round = [program.on_round for program in programs]
        # per-node wake-up round of the idle-scheduling hint (0 = every round)
        wake = [0] * n
        wiring = network.wiring
        pending = self._collect_outboxes(range(n))
        round_number = 0
        stop_reason = "completed"
        while active or pending:
            # the round budget only limits *computation* rounds: when every
            # node has already halted, the remaining work is the final
            # accounting flush, which must run even at the budget boundary
            # (otherwise the last round's bits vanish and the run would
            # report completed=True with stop_reason="max_rounds")
            if active and round_number >= self.max_rounds:
                stop_reason = "max_rounds"
                break

            round_number += 1
            metrics.record_round()
            if tracer is not None:
                tracer.begin_round(round_number)

            inboxes: Dict[int, Dict[int, Any]] = {}
            if tracer is None:
                # hot path: endpoint table indexed directly, per-round
                # metric counters kept in locals and flushed once; a
                # payload broadcast to many ports is sized once per round
                # (keyed by object identity — the senders' outboxes keep
                # every payload alive for the duration of the loop)
                count = 0
                bits_sum = 0
                bits_max = 0
                size_cache: Dict[int, int] = {}
                for sender, ports in pending.items():
                    wiring_row = wiring[sender]
                    for port, payload in ports.items():
                        receiver, receiver_port = wiring_row[port]
                        inboxes.setdefault(receiver, {})[receiver_port] = payload
                        payload_id = id(payload)
                        bits = size_cache.get(payload_id)
                        if bits is None:
                            bits = estimate_bits(payload)
                            size_cache[payload_id] = bits
                        count += 1
                        bits_sum += bits
                        if bits > bits_max:
                            bits_max = bits
                if count:
                    metrics.record_round_batch(count, bits_sum, bits_max)
            else:
                for sender, ports in pending.items():
                    for port, payload in ports.items():
                        receiver, receiver_port = network.endpoint(sender, port)
                        inboxes.setdefault(receiver, {})[receiver_port] = payload
                        bits = estimate_bits(payload)
                        metrics.record_message(bits)
                        tracer.record_message(
                            round_number, sender, port, receiver, receiver_port, bits, payload
                        )

            if not active:
                # final flush: every node already halted, the in-flight
                # messages above were charged to the wire but there is no
                # one left to receive them
                metrics.record_undelivered(sum(len(ports) for ports in pending.values()))
                pending = {}
                continue

            any_halted = False
            for u in active:
                # honour the idle-scheduling hint: a node that declared
                # itself idle is only invoked early by an incoming message
                if wake[u] > round_number and u not in inboxes:
                    continue
                ctx = contexts[u]
                ctx._advance_round(round_number)
                ctx._wake_round = 0
                # direct dispatch — the program and context of *this* node
                # are bound at the call site (no late-binding closures);
                # exception wrapping is inlined to keep the per-node cost
                # at one bound-method call
                try:
                    on_round[u](ctx, inboxes.get(u, {}))
                except AlgorithmError:
                    raise
                except Exception as exc:
                    raise AlgorithmError(u, round_number, exc) from exc
                wake[u] = ctx._wake_round
                if ctx.halted:
                    any_halted = True
                    if tracer is not None:
                        tracer.record_halt(round_number, u, ctx.output)

            # drain before filtering: a node may send and then halt in the
            # same round, and those messages are still in flight
            pending = self._collect_outboxes(active)
            if any_halted:
                active = [u for u in active if not contexts[u].halted]

            # idle fast-forward: with nothing in flight and every running
            # node idling, the skipped rounds are provably message-free —
            # charge them in one batch and jump to the earliest wake-up
            # (the round budget still truncates exactly as before)
            if active and not pending and tracer is None:
                next_wake = min(wake[u] for u in active)
                target = min(next_wake - 1, self.max_rounds)
                if target > round_number:
                    metrics.record_idle_rounds(target - round_number)
                    round_number = target

        outputs = {u: contexts[u].output for u in range(n)}
        missing = sum(1 for ctx in contexts if not ctx.has_output)
        completed = all(ctx.halted for ctx in contexts)
        return RunResult(
            outputs=outputs,
            metrics=self.metrics,
            completed=completed,
            missing_outputs=missing,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------ #

    def _invoke(self, node: int, round_number: int, fn: Callable[..., Any], *args: Any) -> None:
        """Run one node-program callback, wrapping failures with their context.

        The callback and its arguments are passed explicitly (not closed
        over) so that every call site binds the program and context of
        *this* node — a late-binding ``lambda`` over the loop variable
        would dispatch the wrong node the moment invocation is deferred.
        """
        try:
            fn(*args)
        except AlgorithmError:
            raise
        except Exception as exc:
            raise AlgorithmError(node, round_number, exc) from exc

    def _collect_outboxes(self, nodes) -> Dict[int, Dict[int, Any]]:
        """Drain the outboxes of ``nodes`` (only they can have sent)."""
        out: Dict[int, Dict[int, Any]] = {}
        for u in nodes:
            box = self.contexts[u]._drain_outbox()
            if box:
                out[u] = box
        return out


def run_sync(
    graph: PortNumberedGraph,
    program_factory: ProgramFactory,
    advice: Optional[Dict[int, Any]] = None,
    max_rounds: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`SyncEngine` and run it."""
    return SyncEngine(
        graph, program_factory, advice=advice, max_rounds=max_rounds, tracer=tracer
    ).run()

"""The synchronous round engine.

Execution proceeds exactly as in the paper's model:

1. every node program runs :meth:`~repro.simulator.algorithm.NodeProgram.init`
   (round 0, before any communication); a 0-round algorithm terminates
   here;
2. while at least one node is still running and at least one message is
   in flight (or a node explicitly asked to keep the clock running), a
   new round starts: all messages sent in the previous round are
   delivered simultaneously, and every non-halted node's ``on_round`` is
   invoked with its inbox;
3. the run ends when every node has halted (or ``max_rounds`` is hit,
   which is reported as a failure).

The number of *rounds* reported is the number of iterations of step 2 —
so an algorithm that never sends anything uses 0 rounds, matching the
``(⌈log n⌉, 0)`` accounting of the trivial scheme.

Determinism: nodes are processed in index order and delivery is a pure
function of the outboxes, so a run is a deterministic function of
(graph, programs, advice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.algorithm import NodeProgram, ProgramFactory
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.trace import Tracer

__all__ = ["AlgorithmError", "RunResult", "SyncEngine", "run_sync"]


class AlgorithmError(RuntimeError):
    """An exception raised inside a node program, annotated with its context.

    The engine wraps any exception escaping ``init`` or ``on_round`` so
    that the failing node and round are visible in the report — without
    this, a bug deep inside a decoder state machine surfaces as an
    anonymous stack trace with no way to tell which of the ``n``
    simulated nodes misbehaved.
    """

    def __init__(self, node: int, round_number: int, original: BaseException) -> None:
        super().__init__(
            f"node {node} failed in round {round_number}: "
            f"{type(original).__name__}: {original}"
        )
        self.node = node
        self.round_number = round_number
        self.original = original


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    #: per-node outputs (node index -> output value)
    outputs: Dict[int, Any]
    #: communication metrics
    metrics: RunMetrics
    #: whether every node halted before ``max_rounds``
    completed: bool
    #: number of nodes that never produced an output
    missing_outputs: int = 0


class SyncEngine:
    """Drives a set of node programs over a :class:`Network` synchronously."""

    def __init__(
        self,
        graph: PortNumberedGraph,
        program_factory: ProgramFactory,
        advice: Optional[Dict[int, Any]] = None,
        max_rounds: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.network = Network(graph)
        self.graph = graph
        self.advice = advice or {}
        self.max_rounds = max_rounds if max_rounds is not None else 20 * graph.n + 100
        self.tracer = tracer

        self.contexts: List[NodeContext] = []
        self.programs: List[NodeProgram] = []
        for u in range(graph.n):
            ctx = NodeContext(graph.local_view(u), self.advice.get(u))
            self.contexts.append(ctx)
            self.programs.append(program_factory(ctx))

        self.metrics = RunMetrics(n=graph.n)

    # ------------------------------------------------------------------ #

    def run(self) -> RunResult:
        """Execute the algorithm to completion and return the results."""
        # round 0: initialisation, no communication
        for u in range(self.graph.n):
            ctx = self.contexts[u]
            ctx._advance_round(0)
            self._invoke(u, 0, lambda: self.programs[u].init(ctx))
            if ctx.halted and self.tracer is not None:
                self.tracer.begin_round(0)
                self.tracer.record_halt(0, u, ctx.output)

        pending = self._collect_outboxes()
        round_number = 0
        while True:
            all_halted = all(ctx.halted for ctx in self.contexts)
            if all_halted:
                break
            if not pending and all_halted:
                break
            if not pending and self._no_progress_possible():
                # nothing in flight and nobody halted-pending: the
                # algorithm is stuck; stop rather than loop forever.
                break
            if round_number >= self.max_rounds:
                break

            round_number += 1
            self.metrics.record_round()
            if self.tracer is not None:
                self.tracer.begin_round(round_number)

            inboxes: Dict[int, Dict[int, Any]] = {}
            for sender, ports in pending.items():
                for port, payload in ports.items():
                    receiver, receiver_port = self.network.endpoint(sender, port)
                    inboxes.setdefault(receiver, {})[receiver_port] = payload
                    bits = estimate_bits(payload)
                    self.metrics.record_message(bits)
                    if self.tracer is not None:
                        self.tracer.record_message(
                            round_number, sender, port, receiver, receiver_port, bits, payload
                        )

            for u in range(self.graph.n):
                ctx = self.contexts[u]
                if ctx.halted:
                    continue
                ctx._advance_round(round_number)
                self._invoke(u, round_number, lambda: self.programs[u].on_round(ctx, inboxes.get(u, {})))
                if ctx.halted and self.tracer is not None:
                    self.tracer.record_halt(round_number, u, ctx.output)

            pending = self._collect_outboxes()

        outputs = {u: self.contexts[u].output for u in range(self.graph.n)}
        missing = sum(1 for ctx in self.contexts if not ctx.has_output)
        completed = all(ctx.halted for ctx in self.contexts)
        return RunResult(
            outputs=outputs,
            metrics=self.metrics,
            completed=completed,
            missing_outputs=missing,
        )

    # ------------------------------------------------------------------ #

    def _invoke(self, node: int, round_number: int, call) -> None:
        """Run one node-program callback, wrapping failures with their context."""
        try:
            call()
        except AlgorithmError:
            raise
        except Exception as exc:
            raise AlgorithmError(node, round_number, exc) from exc

    def _collect_outboxes(self) -> Dict[int, Dict[int, Any]]:
        out: Dict[int, Dict[int, Any]] = {}
        for u in range(self.graph.n):
            box = self.contexts[u]._drain_outbox()
            if box:
                out[u] = box
        return out

    def _no_progress_possible(self) -> bool:
        """True when no message is in flight and no node will ever act again.

        In the synchronous model a non-halted node is still scheduled
        every round even with an empty inbox (algorithms with a fixed
        round schedule rely on this), so progress is always possible as
        long as some node has not halted.  The engine therefore only
        stops early when *every* node is halted — this hook exists so the
        behaviour is explicit and testable.
        """
        return False


def run_sync(
    graph: PortNumberedGraph,
    program_factory: ProgramFactory,
    advice: Optional[Dict[int, Any]] = None,
    max_rounds: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """Convenience wrapper: build a :class:`SyncEngine` and run it."""
    return SyncEngine(
        graph, program_factory, advice=advice, max_rounds=max_rounds, tracer=tracer
    ).run()

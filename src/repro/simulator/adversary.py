"""Adversarial execution: bounded delays, crash/recovery, weight churn.

The synchronous engine of :mod:`repro.simulator.engine` executes the
paper's idealised model: every message travels exactly one round and no
node ever fails.  :class:`AdversaryEngine` re-runs the *same* node
programs under a seeded adversary that

* delays every message by up to ``delta`` rounds (bounded asynchrony —
  each delay is drawn from the task-seeded RNG, so runs cache and
  resume like everything else),
* crashes ``floor(crash_rate * n)`` nodes at scheduled rounds; a
  crashed node is down for ``recovery`` rounds, drops every message in
  flight to or from it, and then restarts from its persisted local
  state (node-program state survives the crash, exactly like a process
  restarting from a write-ahead log), and
* for the MST problem, perturbs edge weights after the run and charges
  an incremental repair + re-verification of the output
  (:func:`apply_churn`).

Execution style: a *global-barrier synchronizer*.  Logical rounds —
the rounds the node programs observe through ``ctx.round`` — proceed in
lockstep: round ``L + 1`` is not invoked until every message of round
``L`` has been delivered and every node due to act is back up.  Dropped
messages are retransmitted by the transport layer after the downtime
(and re-charged: CONGEST charges the wire per attempt).  The logical
execution is therefore *identical* to the synchronous run — same
decisions, same outputs — and the faults surface exactly where the
paper's accounting looks: :class:`~repro.simulator.metrics.RunMetrics`
counts **physical** rounds and per-attempt messages, so delay bounds
inflate the round count and crashes inflate the message count.  That is
what makes degradation curves comparable across schemes: every scheme
still terminates and verifies, and the curve shows the price of the
fault model, not a mixture of price and failure.

``max_rounds`` keeps its synchronous meaning (it bounds *logical*
rounds), so a faulty run never spuriously reports ``max_rounds`` just
because delays stretched physical time.

The invariant everything hangs on: with ``delta = 0`` and an empty
fault schedule the engine executes the synchronous loop step for step —
same metrics calls in the same order, same outputs, same stop reason.
``tests/test_adversary.py`` pins this byte-identity over every
(problem, scheme/baseline) registry pair.

>>> from repro.graphs.generators import random_connected_graph
>>> from repro.core.scheme_trivial import TrivialRankScheme
>>> from repro.simulator.engine import SyncEngine
>>> scheme = TrivialRankScheme()
>>> graph = random_connected_graph(16, 0.1, seed=3)
>>> payloads = scheme.compute_advice(graph, root=0).as_payloads()
>>> sync = SyncEngine(graph, scheme.program_factory(), advice=payloads).run()
>>> null = AdversaryEngine(graph, scheme.program_factory(), advice=payloads).run()
>>> null == sync  # delta=0, no faults: byte-identical to the synchronous engine
True
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.simulator.algorithm import ProgramFactory
from repro.simulator.engine import AlgorithmError, RunResult, SyncEngine
from repro.simulator.message import estimate_bits
from repro.simulator.metrics import RunMetrics

__all__ = [
    "ADVERSARY_VERSION",
    "AdversaryEngine",
    "FaultSpec",
    "apply_churn",
    "derive_fault_seed",
    "run_adversary",
]

#: bumped whenever the adversary's scheduling or accounting semantics
#: change; mixed into the cache key of every faulty task (fault-free
#: tasks never include it, so bumping this cannot invalidate them)
ADVERSARY_VERSION = 1

#: hard ceiling of the crash fraction — the fault-injection test matrix
#: promises correctness for up to ``floor(n / 4)`` crashed nodes
MAX_CRASH_RATE = 0.25


@dataclass(frozen=True)
class FaultSpec:
    """A declarative, hashable description of one adversarial execution.

    The default instance is the *null* fault (``delta=0``, no crashes,
    no churn): tasks carrying it are normalised to fault-free tasks, so
    the null point of a robustness grid shares cache rows — and bytes —
    with the synchronous sweeps.

    >>> FaultSpec().is_null
    True
    >>> FaultSpec(delta=2).is_null
    False
    >>> FaultSpec(crash_rate=0.5)
    Traceback (most recent call last):
        ...
    ValueError: crash_rate must be a fraction in [0, 0.25], got 0.5
    """

    #: every message is delivered within ``delta`` extra rounds (0 = none)
    delta: int = 0
    #: fraction of nodes crashed once during the run (``<= 0.25``, i.e.
    #: at most ``floor(n / 4)`` nodes)
    crash_rate: float = 0.0
    #: rounds a crashed node stays down before restarting
    recovery: int = 2
    #: number of post-run edge-weight perturbation events (MST only)
    churn: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.delta, int) or isinstance(self.delta, bool) or self.delta < 0:
            raise ValueError(f"delta must be a non-negative int, got {self.delta!r}")
        rate = self.crash_rate
        if isinstance(rate, bool) or not isinstance(rate, (int, float)) or not (
            0.0 <= float(rate) <= MAX_CRASH_RATE
        ):
            raise ValueError(
                f"crash_rate must be a fraction in [0, {MAX_CRASH_RATE}], got {rate!r}"
            )
        object.__setattr__(self, "crash_rate", float(rate))
        if not isinstance(self.recovery, int) or isinstance(self.recovery, bool) or self.recovery < 1:
            raise ValueError(f"recovery must be a positive int, got {self.recovery!r}")
        if not isinstance(self.churn, int) or isinstance(self.churn, bool) or self.churn < 0:
            raise ValueError(f"churn must be a non-negative int, got {self.churn!r}")

    @property
    def is_null(self) -> bool:
        """Whether this spec describes the fault-free synchronous model."""
        return self.delta == 0 and self.crash_rate == 0.0 and self.churn == 0

    def key_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able content for cache hashing.

        Includes :data:`ADVERSARY_VERSION` so a semantic change to the
        adversary invalidates exactly the faulty cached rows.
        """
        return {
            "delta": self.delta,
            "crash_rate": self.crash_rate,
            "recovery": self.recovery,
            "churn": self.churn,
            "adversary_version": ADVERSARY_VERSION,
        }


def derive_fault_seed(seed: int, fault: FaultSpec, tag: str = "engine") -> int:
    """A deterministic RNG seed from the task seed and the fault content.

    Hashing (rather than using ``seed`` directly) keeps the adversary's
    stream independent of the graph generator's — the same task seed
    must not correlate the topology with the fault schedule — and ties
    the stream to the fault content, so two specs differing only in
    ``delta`` draw unrelated schedules.
    """
    blob = (
        f"{tag}:{seed}:{fault.delta}:{fault.crash_rate!r}:"
        f"{fault.recovery}:{fault.churn}"
    )
    return int.from_bytes(hashlib.sha256(blob.encode("utf-8")).digest()[:8], "big")


class AdversaryEngine(SyncEngine):
    """Drives node programs under seeded delays and crash/recovery.

    A drop-in sibling of :class:`~repro.simulator.engine.SyncEngine`
    (same constructor contract minus the tracer, same
    :class:`~repro.simulator.engine.RunResult`): the node programs, the
    advice, and the verifier are all unaware they ran under an
    adversary.  See the module docstring for the execution model.
    """

    def __init__(
        self,
        graph: PortNumberedGraph,
        program_factory: ProgramFactory,
        advice: Optional[Dict[int, Any]] = None,
        max_rounds: Optional[int] = None,
        fault: Optional[FaultSpec] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(graph, program_factory, advice=advice, max_rounds=max_rounds)
        self.fault = fault if fault is not None else FaultSpec()
        self._rng = random.Random(derive_fault_seed(seed, self.fault))
        # the crash schedule is drawn up front (fixed draw order: victims,
        # then one crash round per victim) so the delay stream consumed
        # during the run cannot shift it
        n = graph.n
        crashes = int(self.fault.crash_rate * n)
        self._crash_at: Dict[int, int] = {}
        if crashes:
            window = 2 * max(1, math.ceil(math.log2(max(n, 2)))) + 2
            for u in sorted(self._rng.sample(range(n), crashes)):
                self._crash_at[u] = self._rng.randint(1, window)

    # ------------------------------------------------------------------ #

    def _down_end(self, node: int, physical: int) -> int:
        """Last down round of ``node`` if it is down at ``physical``, else 0."""
        start = self._crash_at.get(node)
        if start is not None and start <= physical < start + self.fault.recovery:
            return start + self.fault.recovery - 1
        return 0

    def run(self) -> RunResult:
        """Execute to completion under the fault schedule.

        The loop mirrors :meth:`SyncEngine.run` exactly — round 0 init,
        per-round charging, final flush, ``max_rounds`` truncation, idle
        fast-forward — with one generalisation: a logical round's
        delivery phase may span several charged physical rounds.  With
        ``delta = 0`` and no crashes the span is always exactly one
        round and the two engines are byte-identical.
        """
        contexts = self.contexts
        programs = self.programs
        metrics = self.metrics
        n = self.graph.n
        delta = self.fault.delta
        rng = self._rng
        crash_at = self._crash_at

        # round 0: initialisation, no communication (identical to sync)
        for u in range(n):
            ctx = contexts[u]
            ctx._advance_round(0)
            self._invoke(u, 0, programs[u].init, ctx)

        active = [u for u in range(n) if not contexts[u].halted]
        on_round = [program.on_round for program in programs]
        wake = [0] * n
        wiring = self.network.wiring
        pending = self._collect_outboxes(range(n))
        logical = 0  # the synchronous round being emulated (ctx.round)
        physical = 0  # charged rounds; invariant: physical == metrics.rounds
        stop_reason = "completed"
        while active or pending:
            # the round budget bounds *logical* computation rounds, so a
            # faulty run can never hit it merely because delays stretched
            # physical time; the final flush still runs at the boundary
            if active and logical >= self.max_rounds:
                stop_reason = "max_rounds"
                break
            logical += 1

            # ---- flatten this logical round's traffic, drawing one
            #      delivery delay per message in sender/port order ----
            in_flight: List[List[Any]] = []
            size_cache: Dict[int, int] = {}
            for sender, ports in pending.items():
                wiring_row = wiring[sender]
                for port, payload in ports.items():
                    receiver, receiver_port = wiring_row[port]
                    payload_id = id(payload)
                    bits = size_cache.get(payload_id)
                    if bits is None:
                        bits = estimate_bits(payload)
                        size_cache[payload_id] = bits
                    d = rng.randint(0, delta) if delta else 0
                    in_flight.append(
                        [physical + 1 + d, sender, receiver, receiver_port, payload, bits]
                    )

            if not active:
                # final flush: every node already halted; the in-flight
                # bits are charged to the wire in one accounting round
                # (delays cannot reorder anything nobody will read)
                physical += 1
                metrics.record_round()
                if in_flight:
                    metrics.record_round_batch(
                        len(in_flight),
                        sum(msg[5] for msg in in_flight),
                        max(msg[5] for msg in in_flight),
                    )
                metrics.record_undelivered(len(in_flight))
                pending = {}
                continue

            # ---- physical delivery: tick charged rounds until every
            #      message of this logical round has landed ----
            inboxes: Dict[int, Dict[int, Any]] = {}
            first_tick = True
            while in_flight or first_tick:
                first_tick = False
                physical += 1
                metrics.record_round()
                count = 0
                bits_sum = 0
                bits_max = 0
                survivors: List[List[Any]] = []
                for msg in in_flight:
                    if msg[0] != physical:
                        survivors.append(msg)
                        continue
                    # the attempt travels — and is charged — whether or
                    # not a crash drops it: CONGEST charges the wire
                    bits = msg[5]
                    count += 1
                    bits_sum += bits
                    if bits > bits_max:
                        bits_max = bits
                    blocked = 0
                    if crash_at:
                        blocked = max(
                            self._down_end(msg[2], physical),
                            self._down_end(msg[1], physical),
                        )
                    if blocked:
                        # dropped by the crash; the transport layer
                        # retransmits after the downtime with a fresh delay
                        msg[0] = blocked + 1 + (rng.randint(0, delta) if delta else 0)
                        survivors.append(msg)
                    else:
                        inboxes.setdefault(msg[2], {})[msg[3]] = msg[4]
                in_flight = survivors
                if count:
                    metrics.record_round_batch(count, bits_sum, bits_max)

            # ---- barrier: wait (in charged empty rounds) until every
            #      node due to act this logical round is back up ----
            if crash_at:
                while any(
                    (wake[u] <= logical or u in inboxes)
                    and self._down_end(u, physical)
                    for u in active
                ):
                    physical += 1
                    metrics.record_round()

            # ---- invoke the logical round; crashed nodes restarted from
            #      their persisted state (program objects live on) ----
            any_halted = False
            for u in active:
                if wake[u] > logical and u not in inboxes:
                    continue
                ctx = contexts[u]
                ctx._advance_round(logical)
                ctx._wake_round = 0
                try:
                    on_round[u](ctx, inboxes.get(u, {}))
                except AlgorithmError:
                    raise
                except Exception as exc:
                    raise AlgorithmError(u, logical, exc) from exc
                wake[u] = ctx._wake_round
                if ctx.halted:
                    any_halted = True

            # drain before filtering: a node may send and then halt
            pending = self._collect_outboxes(active)
            if any_halted:
                active = [u for u in active if not contexts[u].halted]

            # idle fast-forward: message-free logical rounds cost exactly
            # one physical round each, so the skip advances both clocks
            # (crash windows inside the skip touch neither messages nor
            # invocations; a node still down at its wake round is caught
            # by the pre-invocation barrier above)
            if active and not pending:
                next_wake = min(wake[u] for u in active)
                target = min(next_wake - 1, self.max_rounds)
                if target > logical:
                    metrics.record_idle_rounds(target - logical)
                    physical += target - logical
                    logical = target

        outputs = {u: contexts[u].output for u in range(n)}
        missing = sum(1 for ctx in contexts if not ctx.has_output)
        completed = all(ctx.halted for ctx in contexts)
        return RunResult(
            outputs=outputs,
            metrics=self.metrics,
            completed=completed,
            missing_outputs=missing,
            stop_reason=stop_reason,
        )


def run_adversary(
    graph: PortNumberedGraph,
    program_factory: ProgramFactory,
    advice: Optional[Dict[int, Any]] = None,
    max_rounds: Optional[int] = None,
    fault: Optional[FaultSpec] = None,
    seed: int = 0,
) -> RunResult:
    """Convenience wrapper: build an :class:`AdversaryEngine` and run it."""
    return AdversaryEngine(
        graph, program_factory, advice=advice, max_rounds=max_rounds, fault=fault, seed=seed
    ).run()


# --------------------------------------------------------------------------- #
# edge-weight churn: perturb, incrementally repair, re-verify
# --------------------------------------------------------------------------- #


def _churned_instance(graph: PortNumberedGraph, weights: np.ndarray) -> PortNumberedGraph:
    """Rebuild ``graph`` with new edge weights and *identical* ports.

    The port assignment is reconstructed into the constructor's flat
    per-slot table, so per-node port numbers — and therefore the
    decoder's parent-port outputs — keep their meaning on the churned
    instance.
    """
    m = graph.m
    offsets = graph._offsets
    endpoints = np.empty(2 * m, dtype=np.int64)
    endpoints[0::2] = graph.edge_u
    endpoints[1::2] = graph.edge_v
    order = np.argsort(endpoints, kind="stable")
    ranks = np.empty(2 * m, dtype=np.int64)
    ranks[order] = np.arange(2 * m) - offsets[endpoints[order]]
    table = np.empty(2 * m, dtype=np.int64)
    table[offsets[graph.edge_u] + ranks[0::2]] = graph.edge_port_u
    table[offsets[graph.edge_v] + ranks[1::2]] = graph.edge_port_v
    return PortNumberedGraph(
        graph.n,
        (graph.edge_u, graph.edge_v, weights),
        node_ids=graph.node_ids,
        port_permutations=table,
    )


def apply_churn(
    graph: PortNumberedGraph,
    root: int,
    check: Any,
    fault: FaultSpec,
    seed: int,
    metrics: RunMetrics,
) -> Any:
    """Perturb ``fault.churn`` edge weights and repair the verified tree.

    ``check`` must be the passing MST verdict of the fault-free output
    (it carries the tree edge ids).  Each churn event multiplies one
    seeded edge's weight by a seeded factor in ``[0.5, 2)`` and repairs
    the tree incrementally, exactly as a distributed protocol would:

    * a *heavier tree edge* triggers a cut search — the detached subtree
      probes its incident edges and convergecasts the cheapest
      replacement (charged: one message per probed edge plus one per
      subtree node; subtree height + 1 rounds);
    * a *lighter non-tree edge* triggers a cycle walk — a token walks
      the tree path between the endpoints looking for a heavier edge to
      evict (charged: one message and one round per path hop);
    * a lighter tree edge or heavier non-tree edge is benign (the MST
      is unchanged) and costs nothing.

    Single-swap repair after a single weight change is exact, so the
    repaired tree is re-verified — not assumed — against a fresh
    Kruskal MST of the churned instance.  Returns the new
    :class:`~repro.core.problem.OutputCheck` and charges the repair
    traffic into ``metrics``.
    """
    from repro.core.problem import get_problem
    from repro.mst.rooted_tree import build_rooted_tree

    rng = random.Random(derive_fault_seed(seed, fault, tag="churn"))
    m = graph.m
    weights = graph.edge_w.astype(np.float64).copy()
    tree_edges = set(int(e) for e in check.tree_edge_ids)
    tree = build_rooted_tree(graph, sorted(tree_edges), root=root)
    neighbors, edge_ids = graph.adjacency_tables()
    per_message_bits = estimate_bits((max(0, m - 1), 1.0))
    rounds_charged = 0
    messages_charged = 0

    for _ in range(fault.churn):
        e = rng.randrange(m)
        factor = rng.uniform(0.5, 2.0)
        old_w = float(weights[e])
        new_w = old_w * factor
        weights[e] = new_w
        u = int(graph.edge_u[e])
        v = int(graph.edge_v[e])
        if e in tree_edges and new_w > old_w:
            # cut repair: the child-side subtree looks for the cheapest
            # edge leaving the cut (possibly still e itself)
            child = u if tree.parent_edge[u] == e else v
            sub = tree.subtree_nodes(child)
            sub_set = set(sub)
            best = None
            examined = 0
            for x in sub:
                for eid in edge_ids[x]:
                    examined += 1
                    eu = int(graph.edge_u[eid])
                    other = int(graph.edge_v[eid]) if eu == x else eu
                    if other in sub_set:
                        continue
                    key = (float(weights[eid]), eid)
                    if best is None or key < best:
                        best = key
            height = max(tree.depth[x] for x in sub) - tree.depth[child] + 1
            rounds_charged += height + 1
            messages_charged += examined + len(sub)
            if best is not None and best < (new_w, e):
                tree_edges.discard(e)
                tree_edges.add(best[1])
                tree = build_rooted_tree(graph, sorted(tree_edges), root=root)
        elif e not in tree_edges and new_w < old_w:
            # cycle repair: walk the tree path between the endpoints and
            # evict the heaviest edge if the churned edge now beats it
            path_u = tree.path_to_root(u)
            on_u = {x: i for i, x in enumerate(path_u)}
            path_v = tree.path_to_root(v)
            lca_v = next(i for i, x in enumerate(path_v) if x in on_u)
            cycle_nodes = path_u[: on_u[path_v[lca_v]]] + path_v[:lca_v]
            worst = None
            for x in cycle_nodes:
                eid = int(tree.parent_edge[x])
                key = (float(weights[eid]), eid)
                if worst is None or key > worst:
                    worst = key
            rounds_charged += len(cycle_nodes) + 1
            messages_charged += len(cycle_nodes) + 1
            if worst is not None and (new_w, e) < worst:
                tree_edges.discard(worst[1])
                tree_edges.add(e)
                tree = build_rooted_tree(graph, sorted(tree_edges), root=root)
        # else: benign event — the MST is provably unchanged

    churned = _churned_instance(graph, weights)
    final_tree = build_rooted_tree(churned, sorted(tree_edges), root=root)
    outputs = final_tree.expected_outputs()
    new_check = get_problem("mst").check_outputs(churned, outputs, expected_root=root)

    # charge the repair traffic: rounds append to the run, messages are
    # CONGEST-sized (an edge id and a weight), all landed in the final
    # repair round of the histogram
    metrics.rounds += rounds_charged
    metrics.total_messages += messages_charged
    metrics.total_message_bits += messages_charged * per_message_bits
    if messages_charged:
        if per_message_bits > metrics.max_message_bits:
            metrics.max_message_bits = per_message_bits
        if per_message_bits > metrics.max_edge_bits_per_round:
            metrics.max_edge_bits_per_round = per_message_bits
    if rounds_charged:
        metrics.messages_per_round.extend([0] * (rounds_charged - 1))
        metrics.messages_per_round.append(messages_charged)
    return new_check

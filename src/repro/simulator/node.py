"""The per-node API surface seen by distributed algorithms.

A node program interacts with the network exclusively through its
:class:`NodeContext`: it can read its local view, its advice, and the
current round number; it can send one payload per port per round; and it
can set its output and halt.  The context deliberately does **not**
expose the node's global index, the graph, or ``n`` — exactly the
information hiding of the paper's model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.weighted_graph import LocalView

__all__ = ["NodeContext"]


class NodeContext:
    """Execution context of one node for the duration of one run."""

    def __init__(self, view: LocalView, advice: Any = None) -> None:
        self._view = view
        self._advice = advice
        self._round = 0
        self._outbox: Dict[int, Any] = {}
        self._output: Any = None
        self._has_output = False
        self._halted = False
        self._wake_round = 0

    # ------------------------------------------------------------------ #
    # what the node may read
    # ------------------------------------------------------------------ #

    @property
    def view(self) -> LocalView:
        """The node's initial knowledge (identifier, degree, port weights)."""
        return self._view

    @property
    def node_id(self) -> int:
        """The node's identifier (identifiers need not be unique)."""
        return self._view.node_id

    @property
    def degree(self) -> int:
        """Number of ports."""
        return self._view.degree

    @property
    def advice(self) -> Any:
        """The advice string assigned by the oracle (``None`` if none)."""
        return self._advice

    @property
    def round(self) -> int:
        """The current round number (0 during initialisation)."""
        return self._round

    def ports(self) -> range:
        """All port numbers of this node."""
        return range(self._view.degree)

    def weight(self, port: int) -> float:
        """Weight of the incident edge behind ``port``."""
        return self._view.weight(port)

    # ------------------------------------------------------------------ #
    # what the node may do
    # ------------------------------------------------------------------ #

    def send(self, port: int, payload: Any) -> None:
        """Send ``payload`` over ``port``; it is delivered next round.

        At most one payload may be sent per port per round (the model
        sends one message per edge per round).
        """
        if self._halted:
            raise RuntimeError("a halted node cannot send messages")
        if not 0 <= port < self._view.degree:
            raise ValueError(f"no such port: {port}")
        if port in self._outbox:
            raise RuntimeError(f"port {port} was already used this round")
        self._outbox[port] = payload

    def set_output(self, value: Any) -> None:
        """Record this node's output for the problem being solved."""
        self._output = value
        self._has_output = True

    def idle_until(self, round_number: int) -> None:
        """Declare that this node has nothing scheduled before ``round_number``.

        A strictly optional scheduling hint: the engine will not invoke
        ``on_round`` again before the given round **unless a message
        arrives first** (an incoming message always wakes the node).  A
        program may only use it when every action it would have taken in
        the skipped rounds is triggered either by a message or by a round
        number it can compute in advance — fixed round schedules like the
        GHS-style baseline qualify.  The hint lasts until the next
        invocation; programs that never call it are invoked every round,
        exactly as before.
        """
        if round_number > self._wake_round:
            self._wake_round = round_number

    def halt(self, output: Any = None) -> None:
        """Declare this node finished (optionally setting the output).

        A halted node neither sends nor receives in later rounds; the run
        terminates once every node has halted.
        """
        if output is not None or not self._has_output:
            if output is not None:
                self.set_output(output)
        self._halted = True

    # ------------------------------------------------------------------ #
    # engine-side accessors (not part of the algorithm API)
    # ------------------------------------------------------------------ #

    @property
    def halted(self) -> bool:
        """Whether :meth:`halt` has been called (engine bookkeeping)."""
        return self._halted

    @property
    def output(self) -> Any:
        """The recorded output (engine bookkeeping)."""
        return self._output

    @property
    def has_output(self) -> bool:
        """Whether an output has been recorded (engine bookkeeping)."""
        return self._has_output

    def _drain_outbox(self) -> Dict[int, Any]:
        out, self._outbox = self._outbox, {}
        return out

    def _advance_round(self, round_number: int) -> None:
        self._round = round_number

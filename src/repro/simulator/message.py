"""Messages and message-size accounting.

The CONGEST model bounds the number of bits a single edge may carry per
round.  The engine therefore estimates the size of every payload with
:func:`estimate_bits` and aggregates the estimates in
:class:`~repro.simulator.metrics.RunMetrics`.  The estimate is a
*communication-model* size (how many bits a reasonable wire encoding
would need), not the Python object size:

==============  =======================================================
payload type    estimated size
==============  =======================================================
``None``        0 bits
``bool``        1 bit
``int``         ``bit_length`` of the magnitude plus one sign bit
``float``       32 bits
``str``         8 bits per character
``bytes``       8 bits per byte
``BitString``   its exact length in bits
sequence        sum of element sizes plus 2 framing bits per element
mapping         treated as a sequence of key/value pairs
==============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Message", "estimate_bits"]

#: memo for flat scalar tuples — the engine sees the same handful of
#: payload shapes millions of times across a sweep, so a dict lookup
#: beats re-walking the structure.  The key pairs the payload with its
#: element classes because equal values of different types have
#: different wire sizes (``(True, 2) == (1, 2)`` but 8 vs 9 bits), and
#: only tuples of these classes are memoized so nested structures cannot
#: alias.  Bounded so a pathological workload cannot grow it forever.
_MEMO: Dict[Any, int] = {}
_MEMO_LIMIT = 1 << 16
_MEMO_SAFE = frozenset({int, bool, float, str, bytes, type(None)})


def estimate_bits(payload: Any) -> int:
    """Estimated wire size of ``payload`` in bits (see module docstring).

    The common payload shapes of the schemes in this library — ``None``,
    ``bool``, ``int``, flat tuples of those, and ``BitString`` — take a
    non-recursive fast path, and hashable tuples are memoized.  Exotic
    payloads (subclasses, nested containers, dicts, sets) fall back to
    the general recursive walk, with identical results.
    """
    # --- scalar fast paths (exact-type checks: no subclass surprises) ---
    if payload is None:
        return 0
    cls = payload.__class__
    if cls is bool:
        return 1
    if cls is int:
        return max(1, payload.bit_length()) + 1
    if cls is tuple:
        classes = tuple(map(type, payload))
        if _MEMO_SAFE.issuperset(classes):
            key = (payload, classes)
            cached = _MEMO.get(key)
            if cached is not None:
                return cached
        else:
            key = None
        # one flat pass; only a non-scalar element recurses
        total = 0
        for item in payload:
            item_cls = item.__class__
            if item_cls is int:
                total += 3 + max(1, item.bit_length())
            elif item_cls is bool:
                total += 3
            elif item is None:
                total += 2
            else:
                total += 2 + estimate_bits(item)
        if key is not None:
            if len(_MEMO) >= _MEMO_LIMIT:
                _MEMO.clear()
            _MEMO[key] = total
        return total
    if cls is float:
        return 32
    if cls is str:
        return 8 * len(payload)
    # BitString (and anything else with an exact bit length): resolve the
    # hook on the class once instead of walking the isinstance chain.
    bit_len = getattr(cls, "bit_length_exact", None)
    if bit_len is not None:
        return int(bit_len(payload))
    return _estimate_bits_general(payload)


def _estimate_bits_general(payload: Any) -> int:
    """The original recursive estimator: subclasses and rare containers."""
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, int(payload).bit_length()) + 1
    if isinstance(payload, float):
        return 32
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (bytes, bytearray)):
        return 8 * len(payload)
    # BitString from repro.core.bits quacks like a sized bit container
    bit_len = getattr(payload, "bit_length_exact", None)
    if callable(bit_len):
        return int(bit_len())
    if isinstance(payload, dict):
        total = 0
        for key, value in payload.items():
            total += 2 + estimate_bits(key) + estimate_bits(value)
        return total
    if isinstance(payload, (tuple, list, set, frozenset)):
        total = 0
        for item in payload:
            total += 2 + estimate_bits(item)
        return total
    raise TypeError(
        f"cannot estimate the wire size of a payload of type {type(payload).__name__}; "
        "send tuples of ints / bools / BitStrings instead"
    )


@dataclass(frozen=True)
class Message:
    """A message in flight on one edge, in one direction, for one round."""

    #: node index of the sender (simulation-level bookkeeping only)
    sender: int
    #: port at the sender over which the message was sent
    sender_port: int
    #: node index of the receiver
    receiver: int
    #: port at the receiver on which the message arrives
    receiver_port: int
    #: round at which the message is delivered
    round: int
    #: the payload handed to the receiving node program
    payload: Any = None
    #: estimated wire size (filled in by the engine)
    bits: int = field(default=0)

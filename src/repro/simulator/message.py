"""Messages and message-size accounting.

The CONGEST model bounds the number of bits a single edge may carry per
round.  The engine therefore estimates the size of every payload with
:func:`estimate_bits` and aggregates the estimates in
:class:`~repro.simulator.metrics.RunMetrics`.  The estimate is a
*communication-model* size (how many bits a reasonable wire encoding
would need), not the Python object size:

==============  =======================================================
payload type    estimated size
==============  =======================================================
``None``        0 bits
``bool``        1 bit
``int``         ``bit_length`` of the magnitude plus one sign bit
``float``       32 bits
``str``         8 bits per character
``bytes``       8 bits per byte
``BitString``   its exact length in bits
sequence        sum of element sizes plus 2 framing bits per element
mapping         treated as a sequence of key/value pairs
==============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "estimate_bits"]


def estimate_bits(payload: Any) -> int:
    """Estimated wire size of ``payload`` in bits (see module docstring)."""
    if payload is None:
        return 0
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, int(payload).bit_length()) + 1
    if isinstance(payload, float):
        return 32
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (bytes, bytearray)):
        return 8 * len(payload)
    # BitString from repro.core.bits quacks like a sized bit container
    bit_len = getattr(payload, "bit_length_exact", None)
    if callable(bit_len):
        return int(bit_len())
    if isinstance(payload, dict):
        total = 0
        for key, value in payload.items():
            total += 2 + estimate_bits(key) + estimate_bits(value)
        return total
    if isinstance(payload, (tuple, list, set, frozenset)):
        total = 0
        for item in payload:
            total += 2 + estimate_bits(item)
        return total
    raise TypeError(
        f"cannot estimate the wire size of a payload of type {type(payload).__name__}; "
        "send tuples of ints / bools / BitStrings instead"
    )


@dataclass(frozen=True)
class Message:
    """A message in flight on one edge, in one direction, for one round."""

    #: node index of the sender (simulation-level bookkeeping only)
    sender: int
    #: port at the sender over which the message was sent
    sender_port: int
    #: node index of the receiver
    receiver: int
    #: port at the receiver on which the message arrives
    receiver_port: int
    #: round at which the message is delivered
    round: int
    #: the payload handed to the receiving node program
    payload: Any = None
    #: estimated wire size (filled in by the engine)
    bits: int = field(default=0)

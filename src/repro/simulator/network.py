"""The simulated network: wiring tables and message delivery.

:class:`Network` owns the mapping from ``(node, port)`` to
``(neighbour, neighbour_port)`` derived from a
:class:`~repro.graphs.weighted_graph.PortNumberedGraph`.  It plays the
role of the MPI communicator: node programs only name local ports, and
the network resolves where a payload physically goes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.weighted_graph import PortNumberedGraph

__all__ = ["Network"]


class Network:
    """Static wiring of a port-numbered graph, used by the engine for delivery."""

    def __init__(self, graph: PortNumberedGraph) -> None:
        self.graph = graph
        self.n = graph.n
        # (node, port) -> (neighbour, neighbour port); public so the
        # engine's delivery loop can index it without a call per message
        self.wiring: List[List[Tuple[int, int]]] = graph.wiring_table()

    def endpoint(self, node: int, port: int) -> Tuple[int, int]:
        """``(neighbour, neighbour_port)`` behind ``(node, port)``."""
        return self.wiring[node][port]

    def degree(self, node: int) -> int:
        """Number of ports of ``node``."""
        return len(self.wiring[node])

    def deliver(
        self, outboxes: Dict[int, Dict[int, object]]
    ) -> Dict[int, Dict[int, object]]:
        """Resolve a batch of outboxes into per-receiver inboxes.

        ``outboxes[u][p]`` is the payload node ``u`` sent on its port
        ``p``; the result maps every receiver to a dict
        ``{receiver_port: payload}``.
        """
        inboxes: Dict[int, Dict[int, object]] = {}
        for sender, ports in outboxes.items():
            for port, payload in ports.items():
                receiver, receiver_port = self.endpoint(sender, port)
                inboxes.setdefault(receiver, {})[receiver_port] = payload
        return inboxes

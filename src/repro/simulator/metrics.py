"""Run metrics: rounds, messages, and CONGEST accounting.

The headline quantity of the paper is the number of rounds ``t`` of an
``(m, t)``-advising scheme, but the paper also claims that all its
algorithms "send at most ``O(log n)`` bits through each edge at each
round", i.e. that the upper bounds hold in the CONGEST model.  The
engine therefore tracks, besides round and message counts, the maximum
number of bits any single (edge, direction, round) ever carried, so that
benchmarks can report ``max_edge_bits_per_round / log2(n)`` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Aggregated communication metrics of one simulated run."""

    #: number of nodes of the simulated network
    n: int = 0
    #: number of communication rounds executed
    rounds: int = 0
    #: total number of messages delivered
    total_messages: int = 0
    #: sum of the estimated sizes of all messages, in bits
    total_message_bits: int = 0
    #: largest single message, in bits
    max_message_bits: int = 0
    #: largest number of bits carried by one edge in one direction in one round
    max_edge_bits_per_round: int = 0
    #: number of messages delivered per round (index 0 = round 1)
    messages_per_round: List[int] = field(default_factory=list)
    #: messages accounted as sent but never processed by a receiver because
    #: every node had already halted (the engine's final flush round); they
    #: still count towards the totals above — CONGEST charges bits on the
    #: wire, not bits that were read
    undelivered_messages: int = 0

    def record_round(self) -> None:
        """Open the accounting bucket of a new round."""
        self.rounds += 1
        self.messages_per_round.append(0)

    def record_message(self, bits: int) -> None:
        """Account one delivered message of the given estimated size."""
        self.total_messages += 1
        self.total_message_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        self.max_edge_bits_per_round = max(self.max_edge_bits_per_round, bits)
        if self.messages_per_round:
            self.messages_per_round[-1] += 1

    def record_round_batch(self, count: int, bits_sum: int, bits_max: int) -> None:
        """Account a whole round of deliveries at once (engine fast path).

        Equivalent to ``count`` calls to :meth:`record_message` whose
        sizes sum to ``bits_sum`` with maximum ``bits_max`` — one method
        call per round instead of one per message.  (``bits_max`` also
        bounds the per-edge load because the model sends at most one
        message per edge per direction per round.)
        """
        self.total_messages += count
        self.total_message_bits += bits_sum
        if bits_max > self.max_message_bits:
            self.max_message_bits = bits_max
        if bits_max > self.max_edge_bits_per_round:
            self.max_edge_bits_per_round = bits_max
        if self.messages_per_round:
            self.messages_per_round[-1] += count

    def record_idle_rounds(self, count: int) -> None:
        """Account ``count`` rounds in which no message travelled.

        Used by the engine's idle fast-forward: rounds in which every
        running node declared itself idle (:meth:`NodeContext.idle_until`)
        and no message was in flight are charged in one call — same
        totals, same per-round histogram, none of the per-round work.
        """
        self.rounds += count
        self.messages_per_round.extend([0] * count)

    def record_undelivered(self, count: int) -> None:
        """Mark ``count`` already-recorded messages as never received."""
        self.undelivered_messages += count

    # ------------------------------------------------------------------ #
    # derived quantities used by benchmarks
    # ------------------------------------------------------------------ #

    @property
    def log2_n(self) -> float:
        """``log2(n)`` (1.0 for degenerate single-node networks)."""
        return max(1.0, math.log2(max(self.n, 2)))

    def congest_factor(self) -> float:
        """``max_edge_bits_per_round / log2(n)`` — the CONGEST head-room.

        A value bounded by a small constant over a sweep of ``n`` means
        the algorithm is CONGEST-compatible (messages of ``O(log n)``
        bits); a value growing with ``n`` means it is LOCAL-only.
        """
        return self.max_edge_bits_per_round / self.log2_n

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary for tables and JSON reports."""
        return {
            "n": self.n,
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_message_bits": self.total_message_bits,
            "max_message_bits": self.max_message_bits,
            "max_edge_bits_per_round": self.max_edge_bits_per_round,
            "undelivered_messages": self.undelivered_messages,
            "congest_factor": self.congest_factor(),
        }

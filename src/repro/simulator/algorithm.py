"""Node-program abstractions.

A distributed algorithm is described by a *program factory*: a callable
that, given a node's :class:`~repro.simulator.node.NodeContext`, returns
a :class:`NodeProgram` instance holding that node's private state.  The
engine then drives every program through :meth:`NodeProgram.init`
(before any communication) and :meth:`NodeProgram.on_round` (once per
round, with the messages that arrived on each port).

This mirrors the message-passing idiom of the MPI tutorial in the HPC
guides: explicit communication, no shared state between ranks, and a
communicator (here the engine) that owns delivery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional

from repro.simulator.node import NodeContext

__all__ = ["NodeProgram", "FunctionalProgram", "ProgramFactory"]


class NodeProgram(ABC):
    """Behaviour of a single node.  Subclasses keep their state as attributes."""

    @abstractmethod
    def init(self, ctx: NodeContext) -> None:
        """Round 0: runs before any communication.

        A 0-round algorithm sets its output and halts here; algorithms
        that communicate use this hook to send their first messages.
        """

    @abstractmethod
    def on_round(self, ctx: NodeContext, inbox: Dict[int, Any]) -> None:
        """One synchronous round.

        ``inbox`` maps *port number* to the payload received on that port
        this round (ports with no incoming message are absent).  Any
        :meth:`NodeContext.send` performed here is delivered next round.
        """


#: Type of the callable the engine expects: ``factory(ctx) -> NodeProgram``.
ProgramFactory = Callable[[NodeContext], NodeProgram]


class FunctionalProgram(NodeProgram):
    """Adapter turning two plain functions into a :class:`NodeProgram`.

    Convenient for small algorithms and for tests::

        def init(ctx):
            ctx.send(0, "hello")

        def on_round(ctx, inbox, state):
            ...

    ``state`` is a per-node dictionary shared between the two callbacks.
    """

    def __init__(
        self,
        init_fn: Optional[Callable[[NodeContext, Dict[str, Any]], None]] = None,
        round_fn: Optional[
            Callable[[NodeContext, Dict[int, Any], Dict[str, Any]], None]
        ] = None,
    ) -> None:
        self._init_fn = init_fn
        self._round_fn = round_fn
        self.state: Dict[str, Any] = {}

    def init(self, ctx: NodeContext) -> None:
        if self._init_fn is not None:
            self._init_fn(ctx, self.state)

    def on_round(self, ctx: NodeContext, inbox: Dict[int, Any]) -> None:
        if self._round_fn is not None:
            self._round_fn(ctx, inbox, self.state)
        else:  # pragma: no cover - degenerate usage
            ctx.halt()

"""The registry of decoder execution backends.

Kept dependency-free (no simulator, core or runner imports) so every
layer that validates a backend name — task construction, the scheme
runner, the CLI — can share this single tuple without import cycles.
"""

__all__ = ["BACKENDS"]

#: ``engine`` simulates the decoder round by round; ``analytic``
#: computes the same metrics directly from the Borůvka trace
BACKENDS = ("engine", "analytic")

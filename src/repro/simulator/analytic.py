"""Trace-driven analytic execution backend.

The :class:`~repro.simulator.engine.SyncEngine` runs every node program
round by round and materialises every message as a Python payload.  For
the paper's four advising schemes that is pure overhead once the decoder
has been validated: the communication pattern of each decoder is a
deterministic function of the Borůvka trace and the advice packing, so
per-round message counts, bit totals and halting rounds can be computed
*directly* from the oracle-side structures — no node programs, no
payload objects, no inboxes.

This module computes exactly the :class:`~repro.simulator.metrics.RunMetrics`
the engine would have produced (rounds, total/per-round message counts,
bit totals, maximum message size, undelivered count) together with the
per-node outputs, for

* :class:`~repro.core.scheme_trivial.TrivialRankScheme` — zero rounds,
  zero messages;
* :class:`~repro.core.scheme_average.AverageConstantScheme` — one round,
  one 2-bit parent claim per *down* record of the trace;
* :class:`~repro.core.scheme_main.ShortAdviceScheme` and
  :class:`~repro.core.scheme_level.LevelAdviceScheme` — the full phase
  window schedule: per-fragment convergecasts (heights), broadcasts
  (depths and unconsumed-bit prefix sums over the DFS preorder),
  attachments, and the final collection wave.

Equivalence with the engine is not assumed — it is enforced
round-for-round by ``tests/test_analytic_backend.py`` on every scheme
and graph family.  The backend refuses unknown scheme classes (raising
:class:`AnalyticUnsupported`) instead of guessing, and it never models
truncated runs: if a declared ``max_rounds`` budget would be exceeded
the caller must fall back to the engine.

Message sizes replicate :func:`~repro.simulator.message.estimate_bits`
for the exact payload shapes the decoders send; the helper formulas are
pinned against ``estimate_bits`` itself in the test-suite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import boruvka_trace
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree
from repro.simulator.engine import RunResult
from repro.simulator.metrics import RunMetrics

__all__ = ["ANALYTIC_VERSION", "AnalyticUnsupported", "run_scheme_analytic"]

#: bumped whenever the analytic model changes; mixed into runner cache
#: keys so rows computed by an older model are never served as fresh
ANALYTIC_VERSION = 1


class AnalyticUnsupported(ValueError):
    """Raised when a scheme (or run budget) has no analytic model."""


# --------------------------------------------------------------------- #
# payload size formulas (mirroring simulator.message.estimate_bits)
# --------------------------------------------------------------------- #


def _int_elem(value: int) -> int:
    """Wire size of one ``int`` element inside a tuple payload."""
    return 3 + max(1, int(value).bit_length())


_BOOL_ELEM = 3  # one bool element inside a tuple payload
_CLAIM_BITS = 2  # the Theorem-2 parent claim: the bare int ``1``


def _conv_bits(phase: int, subtree_size: int, stream_len: int) -> int:
    """``(MSG_CONV, phase, subtree_size, stream)``."""
    return _int_elem(1) + _int_elem(phase) + _int_elem(subtree_size) + 2 + stream_len


def _bcast_bits(
    phase: int, j: int, record_bits: int, consumed: int, offset: int, dfs_index: int
) -> int:
    """``(MSG_BCAST, phase, j, record, consumed_total, my_offset, my_dfs_index)``."""
    return (
        _int_elem(2)
        + _int_elem(phase)
        + _int_elem(j)
        + (2 + record_bits)
        + _int_elem(consumed)
        + _int_elem(offset)
        + _int_elem(dfs_index)
    )


def _attach_bits(phase: int, is_up: bool) -> int:
    """``(MSG_ATTACH_CHILD, phase)`` when up, ``(MSG_ATTACH_PARENT, phase)`` when down."""
    return _int_elem(4 if is_up else 3) + _int_elem(phase)


def _level_bits(phase: int) -> int:
    """``(MSG_LEVEL, phase, level)`` — level is 0 or 1, same wire size either way."""
    return _int_elem(7) + _int_elem(phase) + _int_elem(0)


def _collect_bits(ttl: int) -> int:
    """``(MSG_COLLECT, ttl)``."""
    return _int_elem(5) + _int_elem(ttl)


def _reply_bits(stream_len: int) -> int:
    """``(MSG_REPLY, stream)``."""
    return _int_elem(6) + 2 + stream_len


# --------------------------------------------------------------------- #
# the per-round message ledger
# --------------------------------------------------------------------- #


class _Ledger:
    """Accumulates deliveries per round without materialising messages."""

    def __init__(self) -> None:
        self.per_round: Dict[int, int] = {}
        self.total_messages = 0
        self.total_bits = 0
        self.max_bits = 0

    def deliver(self, round_number: int, bits: int, count: int = 1) -> None:
        self.per_round[round_number] = self.per_round.get(round_number, 0) + count
        self.total_messages += count
        self.total_bits += bits * count
        if bits > self.max_bits:
            self.max_bits = bits

    def metrics(self, n: int, rounds: int) -> RunMetrics:
        if self.per_round and max(self.per_round) > rounds:  # pragma: no cover
            raise RuntimeError("analytic model delivered a message after the last round")
        return RunMetrics(
            n=n,
            rounds=rounds,
            total_messages=self.total_messages,
            total_message_bits=self.total_bits,
            max_message_bits=self.max_bits,
            max_edge_bits_per_round=self.max_bits,
            messages_per_round=[self.per_round.get(r, 0) for r in range(1, rounds + 1)],
            undelivered_messages=0,
        )


# --------------------------------------------------------------------- #
# fragment geometry
# --------------------------------------------------------------------- #


def _gamma_len(value: int) -> int:
    """Length in bits of the Elias-γ code of ``value >= 1``."""
    return 2 * value.bit_length() - 1


class _FragmentGeometry:
    """Preorder, depths, heights and subtree sums of one fragment subtree."""

    def __init__(
        self,
        partition,
        f: int,
        weights: Optional[List[int]] = None,
        preorder: Optional[List[int]] = None,
    ) -> None:
        pre = preorder if preorder is not None else partition.dfs_preorder(f)
        self.preorder = pre
        pos = {u: k for k, u in enumerate(pre)}
        self.position = pos
        parent: List[int] = [-1] * len(pre)  # position of the parent, -1 for r_F
        depth: List[int] = [0] * len(pre)
        for k, u in enumerate(pre):
            if k == 0:
                continue
            p = partition.parent_in_fragment(u)
            pk = pos[p]
            parent[k] = pk
            depth[k] = depth[pk] + 1
        self.parent = parent
        self.depth = depth

        height = [0] * len(pre)
        size = [1] * len(pre)
        weight_sum = list(weights) if weights is not None else [0] * len(pre)
        for k in range(len(pre) - 1, 0, -1):
            pk = parent[k]
            if height[k] + 1 > height[pk]:
                height[pk] = height[k] + 1
            size[pk] += size[k]
            weight_sum[pk] += weight_sum[k]
        self.height = height
        self.subtree_size = size
        #: per subtree, the sum of the per-node weights (unconsumed bits)
        self.subtree_weight = weight_sum
        #: per node, the sum of weights over strictly earlier preorder nodes
        prefix = [0] * len(pre)
        running = 0
        base = weights if weights is not None else [0] * len(pre)
        for k in range(len(pre)):
            prefix[k] = running
            running += base[k]
        self.prefix_weight = prefix
        self.has_children = [False] * len(pre)
        for k in range(1, len(pre)):
            self.has_children[parent[k]] = True


# --------------------------------------------------------------------- #
# per-scheme analytic models
# --------------------------------------------------------------------- #


def _expected_outputs(tree) -> Dict[int, Any]:
    return {
        u: ROOT_OUTPUT if u == tree.root else int(tree.parent_port[u])
        for u in range(tree.n)
    }


def _result(outputs: Dict[int, Any], metrics: RunMetrics) -> RunResult:
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        completed=True,
        missing_outputs=0,
        stop_reason="completed",
    )


def _analytic_trivial(scheme, graph: PortNumberedGraph, root: int):
    tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
    advice = scheme.compute_advice(graph, root=root, tree=tree)
    # every node halts during init: zero rounds, zero messages
    return advice, _result(_expected_outputs(tree), _Ledger().metrics(graph.n, 0))


def _analytic_average(scheme, graph: PortNumberedGraph, root: int):
    trace = boruvka_trace(graph, root=root)
    advice = scheme.compute_advice(graph, root=root, trace=trace)
    ledger = _Ledger()
    # one parent claim per *down* record, all delivered in round 1; every
    # node (even a claimless one) waits that one round for late claims
    downs = sum(
        1 for phase in trace.phases for sel in phase.selections if not sel.is_up
    )
    if downs:
        ledger.deliver(1, _CLAIM_BITS, count=downs)
    return advice, _result(_expected_outputs(trace.tree), ledger.metrics(graph.n, 1))


def _analytic_main(scheme, graph: PortNumberedGraph, root: int, is_level: bool):
    from repro.core.scheme_main import num_boruvka_phases, phase_window_rounds

    n = graph.n
    trace = boruvka_trace(graph, root=root)
    advice = scheme.compute_advice(graph, root=root, trace=trace)
    outputs = _expected_outputs(trace.tree)
    if n == 1:
        # the lone degree-0 node halts during init: no rounds at all
        return advice, _result(outputs, _Ledger().metrics(n, 0))

    phases = num_boruvka_phases(n)
    layout = scheme.last_layout  # per real phase, bits packed per node
    conv_start = 2 if is_level else 1
    consumed = [0] * n
    data_total = [0] * n
    for phase_layout in layout:
        for u, take in phase_layout.items():
            data_total[u] += take

    ledger = _Ledger()
    offset = 0
    for i in range(1, phases + 1):
        window = phase_window_rounds(i) + (2 if is_level else 0)
        partition = trace.partition_before_phase(i)

        if is_level:
            # every node announces its level on every port in the first
            # round of the window; delivered (and charged) one round later
            ledger.deliver(offset + 2, _level_bits(i), count=2 * graph.m)

        if i <= len(trace.phases):
            selections = {
                sel.fragment: sel for sel in trace.phases[i - 1].selections
            }
        else:
            selections = {}

        threshold = 1 << i
        for f in range(partition.num_fragments):
            members = partition.members[f]
            sel = selections.get(f)
            if len(members) == 1:
                # singleton fragment: no convergecast, no broadcast; an
                # active one attaches across its selected edge right away
                if sel is not None and len(members) < threshold:
                    ledger.deliver(offset + conv_start + 1, _attach_bits(i, sel.is_up))
                continue
            pre = partition.dfs_preorder(f)
            unconsumed = [data_total[u] - consumed[u] for u in pre]
            geo = _FragmentGeometry(partition, f, weights=unconsumed, preorder=pre)

            # ---- convergecast: one CONV per non-root that fits the window
            for k in range(1, len(pre)):
                send_round = conv_start + geo.height[k]
                if send_round <= window:
                    ledger.deliver(
                        offset + send_round + 1,
                        _conv_bits(i, geo.subtree_size[k], geo.subtree_weight[k]),
                    )

            # ---- broadcast + attachment (active fragments only)
            if sel is None or len(members) >= threshold:
                continue
            if is_level:
                a_len = 2 + _gamma_len(sel.choosing_dfs_index)
                record_bits = _BOOL_ELEM + _int_elem(sel.level_of_target_fragment)
            else:
                a_len = (
                    1
                    + _gamma_len(sel.rank_at_choosing)
                    + _gamma_len(sel.choosing_dfs_index)
                )
                record_bits = _BOOL_ELEM + _int_elem(sel.rank_at_choosing)
            complete = conv_start + geo.height[0]
            j = sel.choosing_dfs_index
            for k in range(1, len(pre)):
                ledger.deliver(
                    offset + complete + geo.depth[k],
                    _bcast_bits(i, j, record_bits, a_len, geo.prefix_weight[k], k + 1),
                )
            choosing_depth = geo.depth[geo.position[sel.choosing_node]]
            ledger.deliver(
                offset + complete + choosing_depth + 1, _attach_bits(i, sel.is_up)
            )

        # the broadcasts of this window consumed exactly the bits the
        # oracle packed for phase i (the packing invariant)
        if i <= len(layout):
            for u, take in layout[i - 1].items():
                consumed[u] += take
        offset += window

    # ------------------------- final collection ------------------------ #
    final_start = offset + 1
    partition = trace.partition_before_phase(phases + 1)
    last_halt = final_start
    for f in range(partition.num_fragments):
        geo = _FragmentGeometry(partition, f)
        pre = geo.preorder
        r_f = pre[0]
        width = max(1, graph.degree(r_f).bit_length())
        if width - 1 == 0 or not geo.has_children[0]:
            continue  # the root alone holds every bit: it halts at final_start
        # wave height: the collection is truncated at depth width - 1
        wave_height = [0] * len(pre)
        for k in range(len(pre) - 1, 0, -1):
            if geo.depth[k] > width - 1:
                continue  # never reached by the wave
            # a node at depth width - 1 replies without forwarding, so its
            # own wave height stays 0 (its children sit beyond the wave),
            # but it still adds one collect/reply hop to its parent
            pk = geo.parent[k]
            if wave_height[k] + 1 > wave_height[pk]:
                wave_height[pk] = wave_height[k] + 1
        for k in range(1, len(pre)):
            d = geo.depth[k]
            if d > width - 1:
                continue
            # COLLECT from the parent (depth <= width - 2 always forwards)
            ledger.deliver(final_start + d, _collect_bits(width - 1 - d))
            # REPLY back up, carrying the final bits of the subtree (the
            # holders are the first ``width`` preorder positions)
            reply_round = final_start + d + 2 * wave_height[k]
            pos = geo.position[pre[k]]
            holders = max(0, min(width, pos + geo.subtree_size[k]) - pos)
            ledger.deliver(reply_round + 1, _reply_bits(holders))
            if reply_round > last_halt:
                last_halt = reply_round
        root_halt = final_start + 2 * wave_height[0]
        if root_halt > last_halt:
            last_halt = root_halt

    return advice, _result(outputs, ledger.metrics(n, last_halt))


# --------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------- #


def run_scheme_analytic(
    scheme,
    graph: PortNumberedGraph,
    root: int = 0,
    max_rounds: Optional[int] = None,
) -> Tuple[Any, RunResult]:
    """Compute (advice, run result) analytically, without the engine.

    Supports exactly the four built-in schemes — a subclass with a
    different decoder would silently diverge from the model, so anything
    else raises :class:`AnalyticUnsupported` (run it on the engine
    instead).  The model never truncates: if the computed run would
    exceed ``max_rounds``, :class:`AnalyticUnsupported` is raised and the
    caller should fall back to the engine for exact truncated metrics.

    >>> from repro.core.scheme_main import ShortAdviceScheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> from repro.simulator.engine import run_sync
    >>> graph = random_connected_graph(24, 0.1, seed=2)
    >>> scheme = ShortAdviceScheme()
    >>> advice, result = run_scheme_analytic(scheme, graph, root=0)
    >>> engine = run_sync(graph, scheme.program_factory(),
    ...                   advice=scheme.compute_advice(graph, root=0).as_payloads())
    >>> result.metrics == engine.metrics  # value-identical, round for round
    True
    >>> class Custom(ShortAdviceScheme):
    ...     pass
    >>> run_scheme_analytic(Custom(), graph)
    Traceback (most recent call last):
        ...
    repro.simulator.analytic.AnalyticUnsupported: no analytic model for scheme class Custom; run it with backend="engine"
    """
    from repro.core.scheme_average import AverageConstantScheme
    from repro.core.scheme_level import LevelAdviceScheme
    from repro.core.scheme_main import ShortAdviceScheme
    from repro.core.scheme_trivial import TrivialRankScheme

    cls = type(scheme)
    if cls is TrivialRankScheme:
        advice, result = _analytic_trivial(scheme, graph, root)
    elif cls is AverageConstantScheme:
        advice, result = _analytic_average(scheme, graph, root)
    elif cls is LevelAdviceScheme:
        advice, result = _analytic_main(scheme, graph, root, is_level=True)
    elif cls is ShortAdviceScheme:
        advice, result = _analytic_main(scheme, graph, root, is_level=False)
    else:
        raise AnalyticUnsupported(
            f"no analytic model for scheme class {cls.__name__}; "
            'run it with backend="engine"'
        )
    if max_rounds is not None and result.metrics.rounds > max_rounds:
        raise AnalyticUnsupported(
            f"the run needs {result.metrics.rounds} rounds but max_rounds="
            f"{max_rounds}; truncated runs must use the engine"
        )
    return advice, result

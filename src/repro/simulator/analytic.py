"""Trace-driven analytic execution backend.

The :class:`~repro.simulator.engine.SyncEngine` runs every node program
round by round and materialises every message as a Python payload.  For
the paper's four advising schemes that is pure overhead once the decoder
has been validated: the communication pattern of each decoder is a
deterministic function of the Borůvka trace and the advice packing, so
per-round message counts, bit totals and halting rounds can be computed
*directly* from the oracle-side structures — no node programs, no
payload objects, no inboxes.

This module computes exactly the :class:`~repro.simulator.metrics.RunMetrics`
the engine would have produced (rounds, total/per-round message counts,
bit totals, maximum message size, undelivered count) together with the
per-node outputs, for

* :class:`~repro.core.scheme_trivial.TrivialRankScheme` — zero rounds,
  zero messages;
* :class:`~repro.core.scheme_average.AverageConstantScheme` — one round,
  one 2-bit parent claim per *down* record of the trace;
* :class:`~repro.core.scheme_main.ShortAdviceScheme` and
  :class:`~repro.core.scheme_level.LevelAdviceScheme` — the full phase
  window schedule: per-fragment convergecasts (heights), broadcasts
  (depths and unconsumed-bit prefix sums over the DFS preorder),
  attachments, and the final collection wave.

Equivalence with the engine is not assumed — it is enforced
round-for-round by ``tests/test_analytic_backend.py`` on every scheme
and graph family.  The backend refuses unknown scheme classes (raising
:class:`AnalyticUnsupported`) instead of guessing, and it never models
truncated runs: if a declared ``max_rounds`` budget would be exceeded
the caller must fall back to the engine.

Message sizes replicate :func:`~repro.simulator.message.estimate_bits`
for the exact payload shapes the decoders send; the helper formulas are
pinned against ``estimate_bits`` itself in the test-suite.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.weighted_graph import PortNumberedGraph
from repro.mst.boruvka import boruvka_trace
from repro.mst.kruskal import kruskal_mst
from repro.mst.rooted_tree import ROOT_OUTPUT, build_rooted_tree
from repro.simulator.engine import RunResult
from repro.simulator.metrics import RunMetrics

__all__ = ["ANALYTIC_VERSION", "AnalyticUnsupported", "run_scheme_analytic"]

#: bumped whenever the analytic model changes; mixed into runner cache
#: keys so rows computed by an older model are never served as fresh
ANALYTIC_VERSION = 1


class AnalyticUnsupported(ValueError):
    """Raised when a scheme (or run budget) has no analytic model."""


# --------------------------------------------------------------------- #
# payload size formulas (mirroring simulator.message.estimate_bits)
# --------------------------------------------------------------------- #


def _int_elem(value: int) -> int:
    """Wire size of one ``int`` element inside a tuple payload."""
    return 3 + max(1, int(value).bit_length())


_BOOL_ELEM = 3  # one bool element inside a tuple payload
_CLAIM_BITS = 2  # the Theorem-2 parent claim: the bare int ``1``


def _conv_bits(phase: int, subtree_size: int, stream_len: int) -> int:
    """``(MSG_CONV, phase, subtree_size, stream)``."""
    return _int_elem(1) + _int_elem(phase) + _int_elem(subtree_size) + 2 + stream_len


def _bcast_bits(
    phase: int, j: int, record_bits: int, consumed: int, offset: int, dfs_index: int
) -> int:
    """``(MSG_BCAST, phase, j, record, consumed_total, my_offset, my_dfs_index)``."""
    return (
        _int_elem(2)
        + _int_elem(phase)
        + _int_elem(j)
        + (2 + record_bits)
        + _int_elem(consumed)
        + _int_elem(offset)
        + _int_elem(dfs_index)
    )


def _attach_bits(phase: int, is_up: bool) -> int:
    """``(MSG_ATTACH_CHILD, phase)`` when up, ``(MSG_ATTACH_PARENT, phase)`` when down."""
    return _int_elem(4 if is_up else 3) + _int_elem(phase)


def _level_bits(phase: int) -> int:
    """``(MSG_LEVEL, phase, level)`` — level is 0 or 1, same wire size either way."""
    return _int_elem(7) + _int_elem(phase) + _int_elem(0)


def _collect_bits(ttl: int) -> int:
    """``(MSG_COLLECT, ttl)``."""
    return _int_elem(5) + _int_elem(ttl)


def _reply_bits(stream_len: int) -> int:
    """``(MSG_REPLY, stream)``."""
    return _int_elem(6) + 2 + stream_len


# --------------------------------------------------------------------- #
# the per-round message ledger
# --------------------------------------------------------------------- #


class _Ledger:
    """Accumulates deliveries per round without materialising messages."""

    def __init__(self) -> None:
        self.per_round: Dict[int, int] = {}
        self.total_messages = 0
        self.total_bits = 0
        self.max_bits = 0

    def deliver(self, round_number: int, bits: int, count: int = 1) -> None:
        self.per_round[round_number] = self.per_round.get(round_number, 0) + count
        self.total_messages += count
        self.total_bits += bits * count
        if bits > self.max_bits:
            self.max_bits = bits

    def deliver_bulk(self, rounds: np.ndarray, bits: np.ndarray) -> None:
        """Charge one delivery per ``(rounds[k], bits[k])`` pair at once."""
        if rounds.size == 0:
            return
        self.total_messages += int(rounds.size)
        self.total_bits += int(bits.sum())
        top = int(bits.max())
        if top > self.max_bits:
            self.max_bits = top
        counts = np.bincount(rounds)
        per_round = self.per_round
        for r in np.flatnonzero(counts).tolist():
            per_round[r] = per_round.get(r, 0) + int(counts[r])

    def metrics(self, n: int, rounds: int) -> RunMetrics:
        if self.per_round and max(self.per_round) > rounds:  # pragma: no cover
            raise RuntimeError("analytic model delivered a message after the last round")
        return RunMetrics(
            n=n,
            rounds=rounds,
            total_messages=self.total_messages,
            total_message_bits=self.total_bits,
            max_message_bits=self.max_bits,
            max_edge_bits_per_round=self.max_bits,
            messages_per_round=[self.per_round.get(r, 0) for r in range(1, rounds + 1)],
            undelivered_messages=0,
        )


# --------------------------------------------------------------------- #
# fragment geometry
# --------------------------------------------------------------------- #


def _gamma_len(value: int) -> int:
    """Length in bits of the Elias-γ code of ``value >= 1``."""
    return 2 * value.bit_length() - 1


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorised ``max(1, int(v).bit_length())`` for non-negative ints.

    ``frexp`` returns the exponent ``e`` with ``v = m * 2**e`` and
    ``0.5 <= m < 1``, which for ``v >= 1`` *is* the bit length; exact for
    every integer below ``2**53``, far beyond any count in a trace.
    """
    return np.maximum(1, np.frexp(values.astype(np.float64))[1])


def _int_elems(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_int_elem`."""
    return 3 + _bit_length(values)


def _range_max(values: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per query ``k``, the maximum of ``values[lo[k] : hi[k]]`` (``hi > lo``).

    A classic sparse table: ``O(n log n)`` to build, every query answered
    by two overlapping power-of-two windows.  All the interval queries of
    the analytic model (subtree heights, truncated collection waves) go
    through here instead of per-node Python recurrences.
    """
    lens = hi - lo
    max_len = int(lens.max())
    levels = max_len.bit_length() - 1  # floor(log2(max_len))
    tables = [values]
    for level in range(1, levels + 1):
        half = 1 << (level - 1)
        prev = tables[-1]
        tables.append(np.maximum(prev[:-half], prev[half:]))
    out = np.empty(lo.size, dtype=values.dtype)
    query_level = np.frexp(lens.astype(np.float64))[1] - 1  # floor(log2(len))
    for level in range(levels + 1):
        mask = query_level == level
        if not mask.any():
            continue
        width = 1 << level
        table = tables[level]
        out[mask] = np.maximum(table[lo[mask]], table[hi[mask] - width])
    return out


class _PartitionGeometry:
    """Bulk geometry of *every* fragment subtree of one partition.

    All arrays are indexed by *position* in the concatenated fragment
    preorders (:meth:`FragmentPartition.preorder_arrays`): position ``j``
    holds node ``nodes[j]``, belongs to fragment ``frag[j]``, sits at
    ``kpos[j]`` within its fragment's DFS preorder, at fragment-relative
    depth ``depth[j]``; its fragment subtree occupies positions
    ``[j, end[j])`` (fragments are connected MST subtrees, so subtrees
    are contiguous preorder intervals), giving ``size[j] = end[j] - j``
    and ``height[j]`` via one range-max.  The geometry depends only on
    the partition, so it is computed once and cached on it — every
    scheme run over the same trace reuses it.
    """

    def __init__(self, partition) -> None:
        tree = partition.tree
        nodes, starts = partition.preorder_arrays()
        self.nodes = nodes
        self.starts = starts
        num_fragments = partition.num_fragments
        counts = starts[1:] - starts[:-1]
        self.counts = counts
        frag = np.repeat(np.arange(num_fragments, dtype=np.int64), counts)
        self.frag = frag
        positions = np.arange(nodes.size, dtype=np.int64)
        self.kpos = positions - starts[frag]
        tree_depth = np.asarray(tree.depth, dtype=np.int64)
        root_depth = tree_depth[nodes[starts[:-1]]]
        self.depth = tree_depth[nodes] - root_depth[frag]
        # subtree intervals: members of the fragment-subtree of node u are
        # exactly the fragment members inside u's whole-tree Euler
        # interval; within the lexsorted (fragment, preorder-pos) order a
        # search on the combined key finds the interval end
        pos_in_tree = tree.preorder_index()[nodes]
        stride = tree.n + 1
        key = frag * stride + pos_in_tree
        self.end = np.searchsorted(key, frag * stride + tree.subtree_span()[nodes])
        self.size = self.end - positions
        self.height = _range_max(self.depth, positions, self.end) - self.depth

    @staticmethod
    def of(partition) -> "_PartitionGeometry":
        cached = partition._cache.get("analytic_geometry")
        if cached is None:
            cached = _PartitionGeometry(partition)
            partition._cache["analytic_geometry"] = cached
        return cached


# --------------------------------------------------------------------- #
# per-scheme analytic models
# --------------------------------------------------------------------- #


def _expected_outputs(tree) -> Dict[int, Any]:
    # cached on the (immutable) tree: every scheme run over the same
    # instance produces the same outputs dict, and the grouped executor
    # runs four schemes per trace
    cached = getattr(tree, "_expected_outputs_cache", None)
    if cached is None:
        cached = dict(enumerate(tree.parent_port))
        cached[tree.root] = ROOT_OUTPUT
        object.__setattr__(tree, "_expected_outputs_cache", cached)
    return cached


def _result(outputs: Dict[int, Any], metrics: RunMetrics) -> RunResult:
    return RunResult(
        outputs=outputs,
        metrics=metrics,
        completed=True,
        missing_outputs=0,
        stop_reason="completed",
    )


def _analytic_trivial(scheme, graph: PortNumberedGraph, root: int, advice=None):
    tree = build_rooted_tree(graph, kruskal_mst(graph), root=root)
    if advice is None:
        advice = scheme.compute_advice(graph, root=root, tree=tree)
    # every node halts during init: zero rounds, zero messages
    return advice, _result(_expected_outputs(tree), _Ledger().metrics(graph.n, 0))


def _analytic_average(scheme, graph: PortNumberedGraph, root: int, advice=None):
    trace = boruvka_trace(graph, root=root)
    if advice is None:
        advice = scheme.compute_advice(graph, root=root, trace=trace)
    ledger = _Ledger()
    # one parent claim per *down* record, all delivered in round 1; every
    # node (even a claimless one) waits that one round for late claims
    downs = sum(
        int(np.count_nonzero(~phase.arrays["is_up"])) for phase in trace.phases
    )
    if downs:
        ledger.deliver(1, _CLAIM_BITS, count=downs)
    return advice, _result(_expected_outputs(trace.tree), ledger.metrics(graph.n, 1))


def _analytic_main(scheme, graph: PortNumberedGraph, root: int, is_level: bool, advice=None):
    from repro.core.scheme_main import num_boruvka_phases, phase_window_rounds

    n = graph.n
    trace = boruvka_trace(graph, root=root)
    if advice is None:
        advice = scheme.compute_advice(graph, root=root, trace=trace)
    outputs = _expected_outputs(trace.tree)
    if n == 1:
        # the lone degree-0 node halts during init: no rounds at all
        return advice, _result(outputs, _Ledger().metrics(n, 0))

    phases = num_boruvka_phases(n)
    layout = scheme.last_layout  # per real phase, bits packed per node
    conv_start = 2 if is_level else 1
    tree_depth = np.asarray(trace.tree.depth, dtype=np.int64)
    consumed = np.zeros(n, dtype=np.int64)
    data_total = np.zeros(n, dtype=np.int64)
    layout_arrays: List[Tuple[np.ndarray, np.ndarray]] = []
    for phase_layout in layout:
        keys = np.fromiter(phase_layout.keys(), dtype=np.int64, count=len(phase_layout))
        takes = np.fromiter(phase_layout.values(), dtype=np.int64, count=len(phase_layout))
        layout_arrays.append((keys, takes))
        data_total[keys] += takes  # packer keys are unique per phase

    ledger = _Ledger()
    offset = 0
    for i in range(1, phases + 1):
        window = phase_window_rounds(i) + (2 if is_level else 0)
        partition = trace.partition_before_phase(i)
        geo = _PartitionGeometry.of(partition)

        if is_level:
            # every node announces its level on every port in the first
            # round of the window; delivered (and charged) one round later
            ledger.deliver(offset + 2, _level_bits(i), count=2 * graph.m)

        sel_arrays = trace.phases[i - 1].arrays if i <= len(trace.phases) else None

        # per-position unconsumed bits and their prefix sums along the
        # concatenated fragment preorders; subtree sums become interval
        # differences because subtrees are contiguous preorder intervals
        unconsumed = data_total[geo.nodes] - consumed[geo.nodes]
        csum = np.concatenate(([0], np.cumsum(unconsumed)))

        # ---- convergecast: one CONV per non-root of every multi-node
        # fragment whose send round fits the window
        send_round = conv_start + geo.height
        conv_mask = (geo.kpos > 0) & (send_round <= window)
        if conv_mask.any():
            positions = np.flatnonzero(conv_mask)
            subtree_weight = csum[geo.end[positions]] - csum[positions]
            # the scalar helper evaluated at (size=1, stream=0), with the
            # two size-dependent terms swapped in vectorized
            bits = (
                (_conv_bits(i, 1, 0) - _int_elem(1))
                + _int_elems(geo.size[positions])
                + subtree_weight
            )
            ledger.deliver_bulk(offset + send_round[positions] + 1, bits)

        # ---- attachments of singleton fragments, broadcast + attachment
        # of the active multi-node fragments — all selections of the phase
        # handled as column arrays
        threshold = 1 << i
        #: per active fragment, its broadcast size minus the two per-node
        #: fields (offset prefix, DFS index) that vary along the fragment
        frag_base = np.zeros(partition.num_fragments, dtype=np.int64)
        active = np.zeros(partition.num_fragments, dtype=bool)
        if sel_arrays is not None and sel_arrays["fragment"].size:
            sel_frag = sel_arrays["fragment"]
            sel_size = geo.counts[sel_frag]
            # _attach_bits vectorised: _int_elem(4)=6 when up, _int_elem(3)=5
            attach = np.where(sel_arrays["is_up"], 6, 5) + _int_elem(i)
            decode = sel_size < threshold  # passive fragments decode nothing
            singles = decode & (sel_size == 1)
            if singles.any():
                # singletons: no convergecast, no broadcast; attach directly
                rounds = np.full(
                    int(np.count_nonzero(singles)),
                    offset + conv_start + 1,
                    dtype=np.int64,
                )
                ledger.deliver_bulk(rounds, attach[singles])
            multis = decode & (sel_size > 1)
            if multis.any():
                fm = sel_frag[multis]
                dfs = sel_arrays["choosing_dfs_index"][multis]
                gamma_dfs = 2 * _bit_length(dfs) - 1
                if is_level:
                    a_len = 2 + gamma_dfs
                    record_bits = _BOOL_ELEM + _int_elems(
                        sel_arrays["level_of_target_fragment"][multis]
                    )
                else:
                    rank = sel_arrays["rank_at_choosing"][multis]
                    a_len = 1 + (2 * _bit_length(rank) - 1) + gamma_dfs
                    record_bits = _BOOL_ELEM + _int_elems(rank)
                # _bcast_bits(i, dfs, record, a_len, 0, 0) - 2 * _int_elem(0)
                frag_base[fm] = (
                    _int_elem(2)
                    + _int_elem(i)
                    + _int_elems(dfs)
                    + 2
                    + record_bits
                    + _int_elems(a_len)
                )
                active[fm] = True
                # the fragment completes its convergecast at conv_start +
                # height(r_F); the attachment crosses one round after the
                # broadcast reaches the choosing node
                root_pos = geo.starts[fm]
                complete_f = conv_start + geo.height[root_pos]
                choosing_depth = (
                    tree_depth[sel_arrays["choosing_node"][multis]]
                    - tree_depth[geo.nodes[root_pos]]
                )
                ledger.deliver_bulk(
                    offset + complete_f + choosing_depth + 1, attach[multis]
                )
        if active.any():
            positions = np.flatnonzero(active[geo.frag] & (geo.kpos > 0))
            frag_of_pos = geo.frag[positions]
            complete = conv_start + geo.height[geo.starts[:-1]]  # per fragment
            prefix_weight = csum[positions] - csum[geo.starts[frag_of_pos]]
            bits = (
                frag_base[frag_of_pos]
                + _int_elems(prefix_weight)
                + _int_elems(geo.kpos[positions] + 1)
            )
            ledger.deliver_bulk(
                offset + complete[frag_of_pos] + geo.depth[positions], bits
            )

        # the broadcasts of this window consumed exactly the bits the
        # oracle packed for phase i (the packing invariant)
        if i <= len(layout_arrays):
            keys, takes = layout_arrays[i - 1]
            consumed[keys] += takes
        offset += window

    # ------------------------- final collection ------------------------ #
    final_start = offset + 1
    partition = trace.partition_before_phase(phases + 1)
    geo = _PartitionGeometry.of(partition)
    last_halt = final_start
    # per fragment, the width of the final field at its root; fragments
    # where the root alone holds every bit (width 1 or singleton) halt at
    # final_start without any collection traffic
    frag_width = _bit_length(graph._degrees[geo.nodes[geo.starts[:-1]]])
    collecting = (frag_width > 1) & (geo.counts > 1)
    if collecting.any():
        # wave heights: the collection wave is truncated at depth
        # width - 1, so clip deeper nodes out of the range-max (their
        # depth can never propagate up into the wave region)
        wave_limit = (frag_width - 1)[geo.frag]
        clipped = np.where(geo.depth <= wave_limit, geo.depth, -1)
        all_positions = np.arange(geo.nodes.size, dtype=np.int64)
        wave_height = _range_max(clipped, all_positions, geo.end) - geo.depth
        in_wave = (
            collecting[geo.frag] & (geo.kpos > 0) & (geo.depth <= wave_limit)
        )
        if in_wave.any():
            positions = np.flatnonzero(in_wave)
            depth = geo.depth[positions]
            width = frag_width[geo.frag[positions]]
            # COLLECT from the parent (depth <= width - 2 always forwards)
            collect_bits = (
                _collect_bits(0) - _int_elem(0) + _int_elems(width - 1 - depth)
            )
            ledger.deliver_bulk(final_start + depth, collect_bits)
            # REPLY back up, carrying the final bits of the subtree (the
            # holders are the first ``width`` preorder positions)
            reply_round = final_start + depth + 2 * wave_height[positions]
            holders = np.maximum(
                0,
                np.minimum(width, geo.kpos[positions] + geo.size[positions])
                - geo.kpos[positions],
            )
            reply_bits = _reply_bits(0) + holders  # the stream length is per node
            ledger.deliver_bulk(reply_round + 1, reply_bits)
            last_halt = max(last_halt, int(reply_round.max()))
        root_halts = final_start + 2 * wave_height[geo.starts[:-1]][collecting]
        if root_halts.size:
            last_halt = max(last_halt, int(root_halts.max()))

    return advice, _result(outputs, ledger.metrics(n, last_halt))


# --------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------- #


def run_scheme_analytic(
    scheme,
    graph: PortNumberedGraph,
    root: int = 0,
    max_rounds: Optional[int] = None,
    advice=None,
) -> Tuple[Any, RunResult]:
    """Compute (advice, run result) analytically, without the engine.

    Supports exactly the four built-in schemes — a subclass with a
    different decoder would silently diverge from the model, so anything
    else raises :class:`AnalyticUnsupported` (run it on the engine
    instead).  The model never truncates: if the computed run would
    exceed ``max_rounds``, :class:`AnalyticUnsupported` is raised and the
    caller should fall back to the engine for exact truncated metrics.

    ``advice`` may carry a precomputed assignment; it must come from
    ``scheme.compute_advice`` on this exact ``scheme`` object for this
    ``(graph, root)`` — the Theorem-3 model replays the packing layout
    the oracle left on the scheme instance.

    >>> from repro.core.scheme_main import ShortAdviceScheme
    >>> from repro.graphs.generators import random_connected_graph
    >>> from repro.simulator.engine import run_sync
    >>> graph = random_connected_graph(24, 0.1, seed=2)
    >>> scheme = ShortAdviceScheme()
    >>> advice, result = run_scheme_analytic(scheme, graph, root=0)
    >>> engine = run_sync(graph, scheme.program_factory(),
    ...                   advice=scheme.compute_advice(graph, root=0).as_payloads())
    >>> result.metrics == engine.metrics  # value-identical, round for round
    True
    >>> class Custom(ShortAdviceScheme):
    ...     pass
    >>> run_scheme_analytic(Custom(), graph)
    Traceback (most recent call last):
        ...
    repro.simulator.analytic.AnalyticUnsupported: no analytic model for scheme class Custom; run it with backend="engine"
    """
    from repro.core.scheme_average import AverageConstantScheme
    from repro.core.scheme_level import LevelAdviceScheme
    from repro.core.scheme_main import ShortAdviceScheme
    from repro.core.scheme_trivial import TrivialRankScheme

    cls = type(scheme)
    if cls is TrivialRankScheme:
        advice, result = _analytic_trivial(scheme, graph, root, advice=advice)
    elif cls is AverageConstantScheme:
        advice, result = _analytic_average(scheme, graph, root, advice=advice)
    elif cls is LevelAdviceScheme:
        advice, result = _analytic_main(scheme, graph, root, is_level=True, advice=advice)
    elif cls is ShortAdviceScheme:
        advice, result = _analytic_main(scheme, graph, root, is_level=False, advice=advice)
    else:
        raise AnalyticUnsupported(
            f"no analytic model for scheme class {cls.__name__}; "
            'run it with backend="engine"'
        )
    if max_rounds is not None and result.metrics.rounds > max_rounds:
        raise AnalyticUnsupported(
            f"the run needs {result.metrics.rounds} rounds but max_rounds="
            f"{max_rounds}; truncated runs must use the engine"
        )
    return advice, result

"""Synchronous message-passing simulator (LOCAL / CONGEST models).

The simulator implements the computation model of Section 1 of the
paper: computation proceeds in synchronous rounds; in every round each
node (1) sends one message per incident edge, (2) receives the messages
sent by its neighbours over those edges, and (3) computes.  Complexity
is measured in rounds.  The LOCAL model does not bound message sizes;
the CONGEST model restricts them to ``O(log n)`` bits per edge per
round.  Rather than enforcing a hard bound, the engine *measures* every
message (see :mod:`repro.simulator.message`) so that benchmarks can
report the maximum per-edge-per-round message size and check the
CONGEST claim of the paper empirically.

Node programs are written against :class:`~repro.simulator.node.NodeContext`
(the MPI-style idiom of the HPC guides: explicit messages, no shared
state, the engine owns all delivery).  A node program only ever sees

* its :class:`~repro.graphs.weighted_graph.LocalView` (identifier,
  degree, weight behind every port),
* the advice string assigned by an oracle (possibly empty), and
* the messages received on its ports.

It never sees the graph, node indices, or ``n``.
"""

from repro.simulator.message import Message, estimate_bits
from repro.simulator.node import NodeContext
from repro.simulator.algorithm import NodeProgram, FunctionalProgram
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network
from repro.simulator.trace import MessageEvent, RoundRecord, Tracer
from repro.simulator.engine import AlgorithmError, RunResult, SyncEngine, run_sync
from repro.simulator.analytic import (
    ANALYTIC_VERSION,
    AnalyticUnsupported,
    run_scheme_analytic,
)

__all__ = [
    "ANALYTIC_VERSION",
    "AnalyticUnsupported",
    "run_scheme_analytic",
    "Message",
    "estimate_bits",
    "NodeContext",
    "NodeProgram",
    "FunctionalProgram",
    "RunMetrics",
    "Network",
    "MessageEvent",
    "RoundRecord",
    "Tracer",
    "AlgorithmError",
    "RunResult",
    "SyncEngine",
    "run_sync",
]

"""Execution traces: a round-by-round record of a simulated run.

A :class:`Tracer` can be handed to :class:`~repro.simulator.engine.SyncEngine`
(or :func:`~repro.simulator.engine.run_sync`) to record, for every round,
which messages were delivered and which nodes halted or produced outputs.
Traces serve three purposes:

* debugging decoders (the Theorem-3 state machine in particular),
* teaching / visualisation (the examples can print a phase-by-phase
  story of a run), and
* white-box tests that assert *when* something happened, not only the
  final outputs (e.g. "no fragment communicates after its phase window").

Recording is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["MessageEvent", "RoundRecord", "Tracer"]


@dataclass(frozen=True)
class MessageEvent:
    """One delivered message."""

    round: int
    sender: int
    sender_port: int
    receiver: int
    receiver_port: int
    bits: int
    payload_repr: str


@dataclass
class RoundRecord:
    """Everything that happened in one round."""

    round: int
    messages: List[MessageEvent] = field(default_factory=list)
    halted: List[int] = field(default_factory=list)
    outputs: Dict[int, Any] = field(default_factory=dict)

    @property
    def message_count(self) -> int:
        """Number of messages delivered this round."""
        return len(self.messages)

    @property
    def total_bits(self) -> int:
        """Total estimated bits delivered this round."""
        return sum(m.bits for m in self.messages)


class Tracer:
    """Collects :class:`RoundRecord` objects during a run.

    Parameters
    ----------
    record_payloads:
        When ``False`` (default) only message sizes are kept; when
        ``True`` a ``repr`` of every payload is stored as well (useful
        for debugging, expensive for large runs).
    max_rounds:
        Stop recording after this many rounds (the run itself is not
        affected); ``None`` records everything.
    """

    def __init__(self, record_payloads: bool = False, max_rounds: Optional[int] = None) -> None:
        self.record_payloads = record_payloads
        self.max_rounds = max_rounds
        self.rounds: List[RoundRecord] = []

    # ------------------------------------------------------------------ #
    # hooks called by the engine
    # ------------------------------------------------------------------ #

    def begin_round(self, round_number: int) -> None:
        """Open the record of a new round."""
        if self._recording(round_number):
            self.rounds.append(RoundRecord(round=round_number))

    def record_message(
        self,
        round_number: int,
        sender: int,
        sender_port: int,
        receiver: int,
        receiver_port: int,
        bits: int,
        payload: Any,
    ) -> None:
        """Record one delivered message."""
        if not self._recording(round_number) or not self.rounds:
            return
        self.rounds[-1].messages.append(
            MessageEvent(
                round=round_number,
                sender=sender,
                sender_port=sender_port,
                receiver=receiver,
                receiver_port=receiver_port,
                bits=bits,
                payload_repr=repr(payload) if self.record_payloads else "",
            )
        )

    def record_halt(self, round_number: int, node: int, output: Any) -> None:
        """Record that ``node`` halted this round with ``output``."""
        if not self._recording(round_number) or not self.rounds:
            return
        self.rounds[-1].halted.append(node)
        self.rounds[-1].outputs[node] = output

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def num_rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.rounds)

    def messages_per_round(self) -> List[int]:
        """Message count per recorded round."""
        return [r.message_count for r in self.rounds]

    def bits_per_round(self) -> List[int]:
        """Total delivered bits per recorded round."""
        return [r.total_bits for r in self.rounds]

    def quiet_rounds(self) -> List[int]:
        """Rounds in which no message was delivered."""
        return [r.round for r in self.rounds if r.message_count == 0]

    def halt_round_of(self, node: int) -> Optional[int]:
        """The round in which ``node`` halted, or ``None`` if not recorded."""
        for record in self.rounds:
            if node in record.halted:
                return record.round
        return None

    def messages_between(self, a: int, b: int) -> List[MessageEvent]:
        """All recorded messages exchanged between nodes ``a`` and ``b``."""
        out = []
        for record in self.rounds:
            for event in record.messages:
                if {event.sender, event.receiver} == {a, b}:
                    out.append(event)
        return out

    def summary(self) -> Dict[str, Any]:
        """Aggregate view used by examples and tests."""
        return {
            "rounds": self.num_rounds(),
            "total_messages": sum(self.messages_per_round()),
            "total_bits": sum(self.bits_per_round()),
            "quiet_rounds": len(self.quiet_rounds()),
            "busiest_round": (
                max(self.rounds, key=lambda r: r.message_count).round if self.rounds else 0
            ),
        }

    # ------------------------------------------------------------------ #

    def _recording(self, round_number: int) -> bool:
        return self.max_rounds is None or round_number <= self.max_rounds

"""Fault-tolerant sweep service: lease queue, retrying workers, daemon.

The execution layer that turns the runner/store stack into a long-lived
service (ROADMAP item 1).  The paper's CONGEST model is deliberately
fault-free; the machines that *reproduce* it are not — so everything
here is built around at-least-once delivery made safe by idempotency:

* :mod:`repro.service.queue` — a durable SQLite lease queue of task
  groups (dedup by content hash, TTL leases, heartbeats, automatic
  requeue of expired leases) plus content-addressed job records;
* :mod:`repro.service.retry` — bounded attempts, exponential backoff
  with seeded jitter, per-task wall-clock timeouts, and the quarantine
  rule that keeps one poison task from wedging a queue;
* :mod:`repro.service.worker` — the worker loop behind ``repro
  worker``: lease, execute in a killable subprocess, heartbeat, commit
  to the shared result store, complete or fail;
* :mod:`repro.service.daemon` — the stdlib-HTTP daemon behind ``repro
  serve``: spec submission with task-hash job dedup, progress
  streaming, artifact serving, and graceful SIGTERM drain.

Because every result lands in the content-addressed result store keyed
by task hash, running a task twice (a crashed worker's work re-leased
by another) writes the identical row twice — so serial runs, ``--jobs
N`` pools and a chaos-ridden service sweep all produce byte-identical
artifacts.
"""

from repro.service.queue import LeaseQueue, QueueExecutor
from repro.service.retry import RetryPolicy

__all__ = ["LeaseQueue", "QueueExecutor", "RetryPolicy"]

"""Service metrics: a SQLite-backed registry rendered as Prometheus text.

The daemon and every worker are separate processes, so an in-memory
counter would only ever see one process's slice of the story.  Instead
the registry lives *inside* ``queue.sqlite``: two extra tables
(``counters`` and ``workers``, created by the queue schema) that the
queue bumps **in the same transaction as the transition they count** —
a counter can never disagree with the state change it describes, and a
SIGKILL between the two is impossible by construction.

Three metric families come out of ``GET /metrics`` (rendered by
:func:`render_metrics`, Prometheus text exposition format 0.0.4,
stdlib-only):

* **gauges** computed live from the queue tables at scrape time — queue
  depth by ``(state, priority)``, job counts by state, lease ages,
  per-running-job progress ratios, and worker liveness from the
  ``workers`` heartbeat table;
* **counters** read from the ``counters`` table — leases, expired-lease
  takeovers, heartbeats, completes, failures, requeues, quarantines,
  job submissions/outcomes, gc reclaims;
* one **histogram** — ``repro_item_seconds``, the wall-clock execution
  time of completed/failed items, observed by workers at report time.

Everything here takes a :class:`~repro.service.queue.LeaseQueue` (or a
raw connection for the low-level helpers); nothing imports the queue
module, so ``queue.py`` can import the counter names without a cycle.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ITEM_SECONDS_BUCKETS",
    "WORKER_LIVENESS_WINDOW",
    "bump",
    "observe_item_seconds",
    "counter_value",
    "render_metrics",
]

#: upper bounds (seconds) of the item execution-time histogram buckets;
#: +Inf is implicit.  Spans sub-100ms smoke groups to the 300s tail a
#: pathological instance build can reach before the worker's SIGKILL.
ITEM_SECONDS_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: seconds since last heartbeat under which a worker counts as live in
#: ``repro_workers_live`` (3 x the default worker heartbeat interval,
#: with slack for a busy box)
WORKER_LIVENESS_WINDOW = 60.0

#: counter metric name -> HELP text; the exposition order
COUNTER_HELP = {
    "repro_queue_items_enqueued_total": "New items inserted into the queue (dedup links not counted).",
    "repro_queue_leases_total": "Successful lease claims; equals total execution attempts.",
    "repro_queue_lease_expired_total": "Leases taken over after their previous owner's TTL expired.",
    "repro_queue_heartbeats_total": "Lease extensions accepted from live owners.",
    "repro_queue_completes_total": "Items reported done (results already committed to the store).",
    "repro_queue_failures_total": "Failures reported by live workers (crash-looped leases excluded).",
    "repro_queue_requeues_total": "Failed items returned to pending with backoff.",
    "repro_queue_quarantines_total": "Items pulled from rotation after exhausting their attempts.",
    "repro_queue_quarantine_requeues_total": "Quarantined items explicitly returned to rotation.",
    "repro_jobs_submitted_total": "New job records created (duplicate submissions not counted).",
    "repro_jobs_done_total": "Jobs that reached the done state.",
    "repro_jobs_failed_total": "Jobs that reached the failed state.",
    "repro_gc_jobs_removed_total": "Terminal jobs pruned by queue retention.",
    "repro_gc_items_removed_total": "Orphaned terminal items pruned by queue retention.",
}

#: the histogram's storage keys in the counters table
_HIST_NAME = "repro_item_seconds"
_HIST_SUM = f"{_HIST_NAME}_sum"
_HIST_COUNT = f"{_HIST_NAME}_count"


def _bucket_key(le: float) -> str:
    return f"{_HIST_NAME}_bucket:{le:g}"


def bump(conn: sqlite3.Connection, name: str, amount: float = 1.0) -> None:
    """Add ``amount`` to counter ``name`` inside the caller's transaction."""
    conn.execute(
        "INSERT INTO counters (name, value) VALUES (?, ?)"
        " ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
        (name, amount),
    )


def set_counter(conn: sqlite3.Connection, name: str, value: float) -> None:
    """Set counter ``name`` to ``value`` (used for internal lane state)."""
    conn.execute(
        "INSERT INTO counters (name, value) VALUES (?, ?)"
        " ON CONFLICT(name) DO UPDATE SET value = excluded.value",
        (name, value),
    )


def counter_value(conn: sqlite3.Connection, name: str) -> float:
    """Current value of counter ``name`` (0.0 when never bumped)."""
    row = conn.execute("SELECT value FROM counters WHERE name = ?", (name,)).fetchone()
    return float(row[0]) if row is not None else 0.0


def observe_item_seconds(conn: sqlite3.Connection, seconds: float) -> None:
    """Record one item execution duration into the histogram.

    Buckets are stored *non-cumulative* (one row per bucket, bumped
    once) and cumulated at render time, so an observation is two row
    upserts plus the sum/count pair — cheap enough to ride in the
    complete/fail transaction.
    """
    for le in ITEM_SECONDS_BUCKETS:
        if seconds <= le:
            bump(conn, _bucket_key(le))
            break
    else:
        bump(conn, _bucket_key(float("inf")))
    bump(conn, _HIST_SUM, seconds)
    bump(conn, _HIST_COUNT)


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``.

    >>> _format_value(3.0), _format_value(0.25)
    ('3', '0.25')
    """
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(counters: Dict[str, float]) -> List[str]:
    """The cumulated ``repro_item_seconds`` exposition block."""
    lines = [
        f"# HELP {_HIST_NAME} Wall-clock seconds per executed queue item.",
        f"# TYPE {_HIST_NAME} histogram",
    ]
    running = 0.0
    for le in ITEM_SECONDS_BUCKETS:
        running += counters.get(_bucket_key(le), 0.0)
        lines.append(f'{_HIST_NAME}_bucket{{le="{le:g}"}} {_format_value(running)}')
    running += counters.get(_bucket_key(float("inf")), 0.0)
    lines.append(f'{_HIST_NAME}_bucket{{le="+Inf"}} {_format_value(running)}')
    lines.append(f"{_HIST_SUM} {_format_value(counters.get(_HIST_SUM, 0.0))}")
    lines.append(f"{_HIST_COUNT} {_format_value(counters.get(_HIST_COUNT, 0.0))}")
    return lines


def render_metrics(queue: Any, now: Optional[float] = None) -> str:
    """Render the full ``/metrics`` page for one queue directory.

    ``queue`` is a :class:`~repro.service.queue.LeaseQueue`; gauges are
    computed from its tables at call time, counters and the histogram
    read back from the ``counters`` table.  ``now`` defaults to the
    queue's clock so lease/worker ages are testable with a fake clock.
    """
    conn = queue._conn()  # same-package access: the registry IS queue state
    if now is None:
        now = queue.clock()
    lines: List[str] = []

    # --- queue depth by (state, priority), zero-filled so scrapes are stable
    depth: Dict[Tuple[str, str], int] = {}
    for state, priority, count in conn.execute(
        "SELECT state, priority, COUNT(*) FROM items GROUP BY state, priority"
    ):
        depth[(state, priority)] = count
    lines.append("# HELP repro_queue_items Queue items by state and priority lane.")
    lines.append("# TYPE repro_queue_items gauge")
    for state in ("pending", "leased", "done", "quarantined"):
        for priority in ("high", "normal"):
            value = depth.get((state, priority), 0)
            lines.append(
                f'repro_queue_items{{state="{state}",priority="{priority}"}} {value}'
            )

    # --- jobs by state
    jobs: Dict[str, int] = dict(
        conn.execute("SELECT state, COUNT(*) FROM jobs GROUP BY state")
    )
    lines.append("# HELP repro_queue_jobs Job records by state.")
    lines.append("# TYPE repro_queue_jobs gauge")
    for state in ("running", "done", "failed"):
        lines.append(f'repro_queue_jobs{{state="{state}"}} {jobs.get(state, 0)}')

    # --- lease ages (how long current owners have been holding)
    ages = [
        now - leased_at
        for (leased_at,) in conn.execute(
            "SELECT leased_at FROM items WHERE state = 'leased' AND leased_at IS NOT NULL"
        )
    ]
    lines.append(
        "# HELP repro_queue_oldest_lease_age_seconds"
        " Age of the oldest currently-held lease (0 when none are held)."
    )
    lines.append("# TYPE repro_queue_oldest_lease_age_seconds gauge")
    lines.append(
        f"repro_queue_oldest_lease_age_seconds {_format_value(max(ages) if ages else 0.0)}"
    )

    # --- per-running-job progress ratio (done items / total items)
    lines.append(
        "# HELP repro_job_progress_ratio Completed fraction of each running job's items."
    )
    lines.append("# TYPE repro_job_progress_ratio gauge")
    for job_id, total, done in conn.execute(
        "SELECT job_items.job_id, COUNT(*),"
        " SUM(CASE WHEN items.state = 'done' THEN 1 ELSE 0 END)"
        " FROM job_items JOIN items ON items.dedup_key = job_items.dedup_key"
        " JOIN jobs ON jobs.job_id = job_items.job_id"
        " WHERE jobs.state = 'running'"
        " GROUP BY job_items.job_id ORDER BY job_items.job_id"
    ):
        ratio = (done or 0) / total if total else 0.0
        lines.append(f'repro_job_progress_ratio{{job="{job_id}"}} {_format_value(ratio)}')

    # --- worker liveness from the heartbeat table
    workers = list(
        conn.execute("SELECT owner, last_seen, items_done FROM workers ORDER BY owner")
    )
    live = sum(1 for _, last_seen, _ in workers if now - last_seen <= WORKER_LIVENESS_WINDOW)
    lines.append(
        "# HELP repro_workers_live Workers heartbeating within the liveness window"
        f" ({_format_value(WORKER_LIVENESS_WINDOW)}s)."
    )
    lines.append("# TYPE repro_workers_live gauge")
    lines.append(f"repro_workers_live {live}")
    lines.append(
        "# HELP repro_worker_last_seen_age_seconds Seconds since each known worker"
        " last touched the queue."
    )
    lines.append("# TYPE repro_worker_last_seen_age_seconds gauge")
    for owner, last_seen, _ in workers:
        lines.append(
            f'repro_worker_last_seen_age_seconds{{owner="{owner}"}}'
            f" {_format_value(max(0.0, now - last_seen))}"
        )
    lines.append(
        "# HELP repro_worker_items_processed_total Items each worker completed or failed."
    )
    lines.append("# TYPE repro_worker_items_processed_total counter")
    for owner, _, items_done in workers:
        lines.append(
            f'repro_worker_items_processed_total{{owner="{owner}"}}'
            f" {_format_value(items_done)}"
        )

    # --- monotonic counters (zero-filled so absence is indistinguishable
    #     from zero, the way Prometheus clients expect)
    counters = {
        name: float(value)
        for name, value in conn.execute("SELECT name, value FROM counters")
    }
    for name, help_text in COUNTER_HELP.items():
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(counters.get(name, 0.0))}")

    lines.extend(_histogram_lines(counters))
    return "\n".join(lines) + "\n"

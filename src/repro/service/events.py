"""Structured service event log: one append-only ``events.jsonl``.

Every queue transition — lease, heartbeat, complete, fail, requeue,
quarantine, job submission/state change, drain, gc — is appended as one
JSON line to ``events.jsonl`` next to ``queue.sqlite``, so a crashed or
SIGKILLed run can be reconstructed post-mortem with nothing but a text
file.  The log is an *operator* artifact: the queue's SQLite tables stay
the source of truth for scheduling; the log is the history those tables
overwrite.

Records are plain dicts with a fixed head::

    {"ts": <float unix seconds>, "kind": "<event kind>", ...fields}

``ts`` comes from the queue's injectable clock (so tests are fully
deterministic) and is non-decreasing per writer; with several worker
processes appending concurrently, *file order* is the authoritative
order — each line is written with one ``O_APPEND`` write well under the
pipe-buffer atomicity bound, so lines never interleave mid-record.
Events are appended after their transaction commits: a process killed in
the sub-millisecond window between commit and append loses that one
line, which is why :func:`replay` folds states rather than counting —
a later ``lease``/``complete`` record repairs the history.

``repro serve events --queue-dir DIR [--since TS] [--follow]`` tails the
log from the command line; :func:`replay` turns any event iterable back
into per-item and per-job states (the post-mortem "what happened here").
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, Optional

__all__ = [
    "EVENT_KINDS",
    "EventLog",
    "read_events",
    "replay",
    "follow_events",
]

#: every kind the service emits, in rough lifecycle order
EVENT_KINDS = (
    "job-submit",  # new job record created (fields: job, priority)
    "job-resume",  # daemon re-adopted a parked running job
    "job-state",  # job reached done/failed (fields: job, state, error)
    "enqueue",  # one *new* item entered the queue (fields: key, job, priority)
    "lease",  # item claimed (fields: key, owner, attempts, priority, expired)
    "heartbeat",  # lease extended (fields: key, owner, expires)
    "complete",  # item done (fields: key, owner, seconds)
    "fail",  # worker reported a failure (fields: key, owner, error, seconds)
    "requeue",  # failed item returned to pending (fields: key, not_before)
    "quarantine",  # item pulled from rotation (fields: key, attempts, error)
    "quarantine-requeue",  # operator returned quarantined item to pending
    "drain",  # service began draining (fields: outstanding)
    "gc",  # retention pass (fields: jobs, items, quarantine)
)


class EventLog:
    """Append-only JSONL writer bound to one log file and one clock.

    Opens the file per append: the log survives forks for free (worker
    children inherit no shared file position) and a crashed writer can
    never hold the file hostage.

    >>> import tempfile
    >>> log = EventLog(Path(tempfile.mkdtemp()) / "events.jsonl", clock=lambda: 12.5)
    >>> log.append("lease", key="abc", owner="w1", attempts=1)
    {'ts': 12.5, 'kind': 'lease', 'key': 'abc', 'owner': 'w1', 'attempts': 1}
    >>> [event["kind"] for event in read_events(log.path)]
    ['lease']
    """

    def __init__(self, path: Path, clock: Callable[[], float] = time.time) -> None:
        self.path = Path(path)
        self.clock = clock

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Write one event line; returns the record that was written.

        ``None``-valued fields are dropped so records stay compact and
        the log never encodes "field absent" two different ways.
        """
        record: Dict[str, Any] = {"ts": round(self.clock(), 6), "kind": kind}
        record.update({key: value for key, value in fields.items() if value is not None})
        line = json.dumps(record, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record


def read_events(
    path: Path,
    since: Optional[float] = None,
    kinds: Optional[Iterable[str]] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events from ``path`` in file order, oldest first.

    ``since`` drops events with ``ts`` strictly before it; ``kinds``
    restricts to the given event kinds.  Torn or garbage lines (a writer
    SIGKILLed mid-append) are skipped, not fatal — the log must stay
    readable after exactly the crashes it exists to explain.
    """
    wanted = set(kinds) if kinds is not None else None
    path = Path(path)
    if not path.is_file():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn write; the next line is intact
            if not isinstance(event, dict) or "kind" not in event:
                continue
            if since is not None and event.get("ts", 0.0) < since:
                continue
            if wanted is not None and event["kind"] not in wanted:
                continue
            yield event


#: event kind -> item state it leaves the item in (replay's fold table)
_ITEM_STATE_AFTER = {
    "enqueue": "pending",
    "lease": "leased",
    "complete": "done",
    "requeue": "pending",
    "quarantine": "quarantined",
    "quarantine-requeue": "pending",
}


def replay(events: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Fold an event stream into final per-item and per-job states.

    Returns ``{"items": {key: {"state", "attempts", "owner"}},
    "jobs": {job_id: {"state", "priority"}}}`` — the state the queue
    tables should show if every appended transition committed.  This is
    the post-mortem tool: after a chaos run, ``replay`` over
    ``events.jsonl`` must agree with ``queue.sqlite`` on every terminal
    state (pinned by ``tests/test_service.py``).

    >>> final = replay([
    ...     {"ts": 1, "kind": "enqueue", "key": "k", "job": "j", "priority": "normal"},
    ...     {"ts": 2, "kind": "lease", "key": "k", "owner": "w", "attempts": 1},
    ...     {"ts": 3, "kind": "complete", "key": "k", "owner": "w"},
    ... ])
    >>> final["items"]["k"]["state"], final["items"]["k"]["attempts"]
    ('done', 1)
    """
    items: Dict[str, Dict[str, Any]] = {}
    jobs: Dict[str, Dict[str, Any]] = {}
    for event in events:
        kind = event["kind"]
        key = event.get("key")
        if kind in _ITEM_STATE_AFTER and key is not None:
            item = items.setdefault(key, {"state": None, "attempts": 0, "owner": None})
            item["state"] = _ITEM_STATE_AFTER[kind]
            if kind == "lease":
                item["attempts"] = event.get("attempts", item["attempts"])
                item["owner"] = event.get("owner")
            elif kind == "quarantine-requeue":
                item["attempts"] = 0
                item["owner"] = None
            else:
                item["owner"] = None
        elif kind == "job-submit":
            jobs[event["job"]] = {
                "state": "running",
                "priority": event.get("priority", "normal"),
            }
        elif kind == "job-state":
            job = jobs.setdefault(event["job"], {"state": None, "priority": "normal"})
            job["state"] = event["state"]
        elif kind == "gc":
            for job_id in event.get("jobs", []):
                jobs.pop(job_id, None)
            for item_key in event.get("items", []):
                items.pop(item_key, None)
    return {"items": items, "jobs": jobs}


def follow_events(
    path: Path,
    since: Optional[float] = None,
    kinds: Optional[Iterable[str]] = None,
    poll_interval: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """``tail -f`` for the event log: yield forever as lines arrive.

    Existing events (filtered like :func:`read_events`) come first, then
    the generator polls for appended lines.  ``stop`` is checked between
    polls so tests (and the CLI's signal handling) can end the tail.
    """
    wanted = set(kinds) if kinds is not None else None
    path = Path(path)
    position = 0
    buffer = ""
    while True:
        if path.is_file():
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict) or "kind" not in event:
                    continue
                if since is not None and event.get("ts", 0.0) < since:
                    continue
                if wanted is not None and event["kind"] not in wanted:
                    continue
                yield event
        if stop is not None and stop():
            return
        time.sleep(poll_interval)

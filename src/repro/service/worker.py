"""The worker loop: lease a task group, execute it killably, report back.

``repro worker --queue-dir DIR`` attaches one of these to a queue.  Each
leased item is executed in a **forked subprocess** so the worker proper
can enforce a wall-clock timeout with ``SIGKILL`` instead of hoping a
wedged simulation honours an exception, and so an execution crash (a
segfault, an OOM kill) takes down the child, not the lease bookkeeping.
While the child runs, the parent heartbeats the lease; a worker that is
itself killed simply stops heartbeating and the queue re-leases its item
after the TTL.

The child commits result rows straight to the shared content-addressed
store *before* the parent marks the item done, so ``done`` in the queue
always implies rows in the store — the ordering the
:class:`~repro.service.queue.QueueExecutor` relies on.

Chaos hook: ``REPRO_SERVICE_TEST_DELAY`` (seconds, float) makes each
child sleep before executing, giving crash-injection tests a window in
which a worker provably holds a lease.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import sys
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.plan import InstanceContext
from repro.runner.store import SQLiteResultStore
from repro.runner.tasks import task_from_wire
from repro.service.queue import LeaseQueue, LeasedItem
from repro.service.retry import RetryPolicy

__all__ = ["default_owner", "run_worker"]

#: env var: float seconds each execution child sleeps before working
TEST_DELAY_ENV = "REPRO_SERVICE_TEST_DELAY"


def default_owner() -> str:
    """Lease-owner identity of this process: host + pid is unique enough
    for a queue directory that lives on one filesystem."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _execute_payload_child(queue_dir: str, payload: Dict[str, Any], error_pipe: Any) -> None:
    """Child-process body: deserialise, execute, commit, exit 0.

    Any failure ships its traceback up the pipe and exits nonzero so the
    parent can attach a real error message to ``fail()`` instead of just
    an exit code.
    """
    try:
        delay = float(os.environ.get(TEST_DELAY_ENV, "0") or "0")
        if delay > 0:
            time.sleep(delay)
        tasks = [task_from_wire(wire) for wire in payload["tasks"]]
        hashes = payload["hashes"]
        if len(hashes) != len(tasks):
            raise ValueError(
                f"malformed payload: {len(hashes)} hashes for {len(tasks)} tasks"
            )
        context = InstanceContext()
        stored: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = []
        for task, task_hash in zip(tasks, hashes):
            row = context.execute(task)
            stored.append((task_hash, task.key_dict() or {}, row))
        SQLiteResultStore(Path(queue_dir)).put_many(stored)
    except BaseException:
        try:
            error_pipe.send(traceback.format_exc(limit=8))
        except (OSError, ValueError):
            pass
        error_pipe.close()
        os._exit(1)
    error_pipe.close()
    os._exit(0)


def _execute_item(
    queue: LeaseQueue,
    item: LeasedItem,
    owner: str,
    policy: RetryPolicy,
    lease_ttl: float,
    heartbeat_interval: float,
) -> Optional[str]:
    """Run one leased item to completion; returns an error string or ``None``.

    The parent's only jobs while the child runs: heartbeat the lease and
    watch the clock.  ``fork`` context deliberately — the child inherits
    the warm interpreter (and any monkeypatches a test installed).
    """
    tasks = item.payload.get("tasks") or []
    timeout = policy.item_timeout(len(tasks))
    context = multiprocessing.get_context("fork")
    receiver, sender = context.Pipe(duplex=False)
    child = context.Process(
        target=_execute_payload_child,
        args=(str(queue.directory), item.payload, sender),
    )
    child.start()
    sender.close()
    deadline = time.monotonic() + timeout
    while child.is_alive():
        child.join(timeout=min(heartbeat_interval, 0.2))
        if not child.is_alive():
            break
        if time.monotonic() >= deadline:
            child.kill()
            child.join()
            return (
                f"timed out after {timeout:.1f}s "
                f"({len(tasks)} task(s) x {policy.task_timeout:.0f}s budget)"
            )
        queue.heartbeat(item.dedup_key, owner, lease_ttl)
    if child.exitcode == 0:
        return None
    detail = ""
    if receiver.poll(0):
        try:
            detail = receiver.recv()
        except (EOFError, OSError):
            detail = ""
    last_line = detail.strip().splitlines()[-1] if detail.strip() else ""
    suffix = f": {last_line}" if last_line else " (killed or crashed)"
    return f"execution child exited with code {child.exitcode}{suffix}"


def run_worker(
    queue_dir: Path,
    policy: Optional[RetryPolicy] = None,
    lease_ttl: float = 30.0,
    poll_interval: float = 0.5,
    heartbeat_interval: Optional[float] = None,
    max_items: Optional[int] = None,
    idle_exit: Optional[float] = None,
    install_signal_handlers: bool = False,
) -> int:
    """Drain a queue directory; returns the number of items processed.

    Runs until stopped: ``max_items`` bounds the work (handy in tests),
    ``idle_exit`` exits after that many seconds without leasable work,
    and with ``install_signal_handlers`` SIGTERM/SIGINT request a
    graceful drain — the in-flight item finishes, gets completed or
    failed honestly, and the loop exits.  A SIGKILL needs no handling at
    all: the lease TTL is the recovery path.
    """
    policy = policy or RetryPolicy()
    queue = LeaseQueue(Path(queue_dir))
    owner = default_owner()
    queue.worker_seen(owner)  # visible in /metrics even before first lease
    heartbeat = heartbeat_interval or max(0.1, lease_ttl / 3.0)
    stop = {"requested": False}
    if install_signal_handlers:

        def _request_stop(signum: int, frame: Any) -> None:
            stop["requested"] = True
            print(
                f"worker {owner}: drain requested (signal {signum}); "
                f"finishing current item",
                file=sys.stderr,
                flush=True,
            )

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    processed = 0
    idle_since: Optional[float] = None
    while not stop["requested"]:
        if max_items is not None and processed >= max_items:
            break
        item = queue.lease(owner, ttl=lease_ttl, max_attempts=policy.max_attempts)
        if item is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_exit is not None and now - idle_since >= idle_exit:
                break
            time.sleep(poll_interval)
            continue
        idle_since = None
        started = time.monotonic()
        error = _execute_item(queue, item, owner, policy, lease_ttl, heartbeat)
        duration = time.monotonic() - started
        if error is None:
            queue.complete(item.dedup_key, owner, duration=duration)
        else:
            state = queue.fail(item.dedup_key, owner, error, policy, duration=duration)
            print(
                f"worker {owner}: item {item.dedup_key[:12]} attempt "
                f"{item.attempts}/{policy.max_attempts} failed -> "
                f"{state or 'lease lost'}: {error}",
                file=sys.stderr,
                flush=True,
            )
        processed += 1
    return processed
